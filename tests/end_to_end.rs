//! End-to-end integration tests spanning every TeNDaX crate: the full
//! demo scenario of the paper, crash recovery mid-collaboration, and
//! cross-document lineage through the public facade.

use std::path::PathBuf;

use tendax_core::{
    char_provenance, Assignee, FolderRule, Options, Permission, Platform, Principal, RankBy,
    SearchQuery, TaskSpec, TaskState, Tendax,
};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tendax-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

/// The full EDBT demo storyline in one test: collaborative editing +
/// layout + access rights + undo, workflow, dynamic folders, lineage,
/// mining, search.
#[test]
fn word_processing_lan_party_end_to_end() {
    let tx = Tendax::in_memory().unwrap();
    let alice = tx.create_user("alice").unwrap();
    let bob = tx.create_user("bob").unwrap();
    tx.create_user("carol").unwrap();
    let reviewers = tx.textdb().create_role("reviewers").unwrap();
    tx.textdb().assign_role(bob, reviewers).unwrap();

    let paper = tx.create_document("paper", alice).unwrap();
    tx.create_document("notes", bob).unwrap();

    // --- Collaborative editing on three platforms -----------------------
    let sa = tx.connect("alice", Platform::WindowsXp).unwrap();
    let sb = tx.connect("bob", Platform::Linux).unwrap();
    let sc = tx.connect("carol", Platform::MacOsX).unwrap();
    let mut da = sa.open("paper").unwrap();
    let mut db = sb.open("paper").unwrap();
    let mut dc = sc.open("paper").unwrap();

    da.type_text(0, "TeNDaX stores text natively. ").unwrap();
    db.sync();
    db.type_text(db.len(), "Editing is transactional. ")
        .unwrap();
    dc.sync();
    dc.type_text(dc.len(), "Metadata comes for free.").unwrap();
    da.sync();
    db.sync();
    assert_eq!(da.text(), db.text());
    assert_eq!(
        da.text(),
        "TeNDaX stores text natively. Editing is transactional. Metadata comes for free."
    );

    // Three authors contributed.
    assert_eq!(da.handle().attribution().len(), 3);

    // --- Layout + undo ----------------------------------------------------
    let heading = tx.textdb().define_style("heading", "bold", alice).unwrap();
    da.apply_style(0, 6, heading).unwrap();
    assert_eq!(da.handle().style_at(0), Some(heading));
    da.undo().unwrap();
    assert_eq!(da.handle().style_at(0), Some(tendax_core::StyleId::NONE));

    // Global undo from carol removes her own newest edit.
    dc.sync();
    dc.global_undo().unwrap();
    da.sync();
    assert_eq!(
        da.text(),
        "TeNDaX stores text natively. Editing is transactional. "
    );

    // --- Access rights ------------------------------------------------------
    tx.textdb()
        .set_access(
            paper,
            alice,
            Principal::Role(reviewers),
            Permission::Write,
            true,
        )
        .unwrap();
    // Carol is not a reviewer: write denied.
    assert!(dc.type_text(0, "x").is_err());
    // Bob is: write allowed.
    db.sync();
    db.type_text(0, "[rev] ").unwrap();

    // --- Workflow -------------------------------------------------------------
    let engine = tx.process();
    let review = engine
        .define_task(
            paper,
            alice,
            TaskSpec::new("review", Assignee::Role(reviewers)),
        )
        .unwrap();
    assert_eq!(engine.inbox(bob).unwrap().len(), 1);
    engine.complete(review, bob, "looks good").unwrap();
    assert_eq!(
        engine.tasks_in_state(paper, TaskState::Done).unwrap().len(),
        1
    );

    // --- Dynamic folder: docs bob read recently --------------------------------
    let f = tx
        .folders()
        .create_folder(
            "bob-recent",
            bob,
            FolderRule::ReadBy {
                user: bob.0,
                since: 0,
            },
        )
        .unwrap();
    let contents = tx.folders().evaluate(f).unwrap();
    assert!(contents.contains(&paper));

    // --- Lineage across documents ----------------------------------------------
    da.sync();
    let clip = da.copy(6, 10).unwrap();
    let mut dn = sb.open("notes").unwrap();
    dn.paste(0, &clip).unwrap();
    let g = tx.lineage().unwrap();
    assert!(g.descendants(paper).iter().any(|n| n.label() == "notes"));

    // --- Search: content + ranking ----------------------------------------------
    let search = tx.search().unwrap();
    let hits = search.search(&SearchQuery::terms("transactional")).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].name, "paper");
    let cited = search
        .search(&SearchQuery::terms("").rank_by(RankBy::MostCited))
        .unwrap();
    assert_eq!(cited[0].name, "paper");

    // --- Visual mining -------------------------------------------------------------
    let space = tx.document_space(2).unwrap();
    assert_eq!(space.points.len(), 2);
    assert!(space.render_ascii(30, 10).contains("Visual Mining"));
}

/// Crash in the middle of a collaboration: reopening the WAL restores
/// every committed keystroke, tombstone, style, task and folder.
#[test]
fn crash_recovery_restores_full_state() {
    let path = tmp("crash.wal");
    let doc_name = "durable";
    {
        let tx = Tendax::open(&path, Options::default()).unwrap();
        let alice = tx.create_user("alice").unwrap();
        let bob = tx.create_user("bob").unwrap();
        let doc = tx.create_document(doc_name, alice).unwrap();
        let sa = tx.connect("alice", Platform::WindowsXp).unwrap();
        let mut da = sa.open(doc_name).unwrap();
        da.type_text(0, "committed before the crash").unwrap();
        da.delete(0, 10).unwrap();
        let style = tx.textdb().define_style("em", "italic", alice).unwrap();
        da.apply_style(0, 3, style).unwrap();
        tx.process()
            .define_task(doc, alice, TaskSpec::new("survive", Assignee::User(bob)))
            .unwrap();
        tx.folders()
            .create_folder("mine", alice, FolderRule::CreatedBy { user: alice.0 })
            .unwrap();
        // No clean shutdown: the instance is simply dropped.
    }
    let tx = Tendax::open(&path, Options::default()).unwrap();
    let alice = tx.textdb().user_by_name("alice").unwrap();
    let bob = tx.textdb().user_by_name("bob").unwrap();
    let doc = tx.textdb().document_by_name(doc_name).unwrap();
    let h = tx.textdb().open(doc, alice).unwrap();
    assert_eq!(h.text(), "before the crash");
    let style = tx.textdb().style_by_name("em").unwrap();
    assert_eq!(h.style_at(0), Some(style));
    assert_eq!(tx.process().inbox(bob).unwrap().len(), 1);
    assert_eq!(tx.folders().folders().unwrap().len(), 1);
    // Undo still works across the restart (oplog is durable).
    let mut h = tx.textdb().open(doc, alice).unwrap();
    h.undo().unwrap(); // undo the style
    h.undo().unwrap(); // undo the delete
    assert_eq!(h.text(), "committed before the crash");
}

/// Checkpoint compaction mid-life does not lose state.
#[test]
fn checkpoint_then_continue_editing() {
    let path = tmp("checkpoint.wal");
    let tx = Tendax::open(&path, Options::default()).unwrap();
    let alice = tx.create_user("alice").unwrap();
    tx.create_document("doc", alice).unwrap();
    let s = tx.connect("alice", Platform::Linux).unwrap();
    let mut d = s.open("doc").unwrap();
    for i in 0..20 {
        d.type_text(d.len().min(i), "x").unwrap();
    }
    tx.textdb().database().checkpoint().unwrap();
    d.type_text(0, "after-checkpoint ").unwrap();
    drop(d);
    drop(s);
    drop(tx);

    let tx = Tendax::open(&path, Options::default()).unwrap();
    let alice = tx.textdb().user_by_name("alice").unwrap();
    let doc = tx.textdb().document_by_name("doc").unwrap();
    let h = tx.textdb().open(doc, alice).unwrap();
    assert_eq!(h.len(), 37);
    assert!(h.text().starts_with("after-checkpoint "));
}

/// Character-level provenance across three documents through the facade.
#[test]
fn provenance_chain_through_facade() {
    let tx = Tendax::in_memory().unwrap();
    let u = tx.create_user("u").unwrap();
    tx.create_document("a", u).unwrap();
    tx.create_document("b", u).unwrap();
    tx.create_document("c", u).unwrap();
    let s = tx.connect("u", Platform::MacOsX).unwrap();
    let mut da = s.open("a").unwrap();
    da.type_text(0, "genesis").unwrap();
    let mut db = s.open("b").unwrap();
    db.paste(0, &da.copy(0, 7).unwrap()).unwrap();
    let mut dc = s.open("c").unwrap();
    dc.paste(0, &db.copy(0, 7).unwrap()).unwrap();

    let c = tx.textdb().document_by_name("c").unwrap();
    let h = tx.textdb().open(c, u).unwrap();
    let id = h.char_at(0).unwrap();
    let hops = char_provenance(tx.textdb(), c, id).unwrap();
    let names: Vec<&str> = hops.iter().map(|h| h.doc_name.as_str()).collect();
    assert_eq!(names, vec!["c", "b", "a"]);
}
