//! Editor-level user flows through the facade: the sequences a GUI
//! front-end would drive, end to end.

use tendax_core::{Platform, Tendax};

#[test]
fn typing_session_with_cursor_awareness_and_rendering() {
    let tx = Tendax::in_memory().unwrap();
    let alice = tx.create_user("alice").unwrap();
    tx.create_user("bob").unwrap();
    tx.create_document("letter", alice).unwrap();

    let sa = tx.connect("alice", Platform::WindowsXp).unwrap();
    let sb = tx.connect("bob", Platform::MacOsX).unwrap();
    let mut da = sa.open("letter").unwrap();
    let mut db = sb.open("letter").unwrap();

    // Alice types a heading and body; applies structure and style.
    da.type_text(0, "Dear team\nAll good things below.")
        .unwrap();
    let (sid, _) = da
        .with_handle("structure", |h| {
            let id = h.set_structure(0, 9, "heading1")?;
            Ok((
                id,
                tendax_core::EditReceipt {
                    op: tendax_core::OpId::NONE,
                    commit_ts: 0,
                    effects: vec![],
                },
            ))
        })
        .unwrap();
    assert!(!sid.is_none());
    let bold = tx.textdb().define_style("bold", "w=b", alice).unwrap();
    da.apply_style(0, 4, bold).unwrap();

    // Bob catches up and sees the same rendered markup.
    db.sync();
    let rendered = db.handle().render_markup().unwrap();
    assert!(rendered.starts_with("«heading1»[s:bold]Dear[/s]"));

    // Both cursors are visible to each other through awareness.
    da.set_cursor(9);
    db.set_cursor(0);
    let editors = tx.server().editors_on(da.doc());
    assert_eq!(editors.len(), 2);
    assert!(editors.iter().any(|p| p.cursor == Some(9)));

    // Bob types at the very front: Alice's cursor must drift with it.
    db.type_text(0, "RE: ").unwrap();
    da.sync();
    assert_eq!(da.cursor(), 13);

    // Save a version, keep editing, restore.
    let _v = da
        .with_handle("version", |h| {
            let id = h.save_version("sent")?;
            Ok((
                id,
                tendax_core::EditReceipt {
                    op: tendax_core::OpId::NONE,
                    commit_ts: 0,
                    effects: vec![],
                },
            ))
        })
        .unwrap();
    da.delete(0, 4).unwrap();
    assert!(!da.text().starts_with("RE: "));
    let content = da.handle().version_content("sent").unwrap();
    assert!(content.starts_with("RE: "));

    // The history feed shows the whole story, newest first.
    let feed = da.handle().history_feed(20).unwrap();
    assert!(feed.contains("delete"));
    assert!(feed.contains("style"));
    assert!(feed.contains("structure"));
}

#[test]
fn cross_document_move_through_editors_updates_lineage() {
    let tx = Tendax::in_memory().unwrap();
    let alice = tx.create_user("alice").unwrap();
    tx.create_document("scratch", alice).unwrap();
    tx.create_document("final", alice).unwrap();
    let s = tx.connect("alice", Platform::Linux).unwrap();
    let mut scratch = s.open("scratch").unwrap();
    let mut final_doc = s.open("final").unwrap();
    scratch.type_text(0, "draft paragraph to promote").unwrap();

    scratch.move_text(0, 15, &mut final_doc, 0).unwrap();
    assert_eq!(final_doc.text(), "draft paragraph");
    assert_eq!(scratch.text(), " to promote");

    // The move shows up as lineage: final draws from scratch.
    let g = tx.lineage().unwrap();
    let scratch_id = tx.textdb().document_by_name("scratch").unwrap();
    assert!(g
        .descendants(scratch_id)
        .iter()
        .any(|n| n.label() == "final"));
    // And the moved text's provenance chain points home.
    let id = final_doc.handle().char_at(0).unwrap();
    let hops = tendax_core::char_provenance(tx.textdb(), final_doc.doc(), id).unwrap();
    assert_eq!(hops.last().unwrap().doc_name, "scratch");
}

#[test]
fn purge_then_continue_collaborating() {
    let tx = Tendax::in_memory().unwrap();
    let alice = tx.create_user("alice").unwrap();
    tx.create_user("bob").unwrap();
    tx.create_document("doc", alice).unwrap();
    let sa = tx.connect("alice", Platform::WindowsXp).unwrap();
    let sb = tx.connect("bob", Platform::Linux).unwrap();
    let mut da = sa.open("doc").unwrap();
    let mut db = sb.open("doc").unwrap();

    da.type_text(0, "some text that will churn").unwrap();
    da.delete(5, 5).unwrap();
    db.sync();

    // Admin purges old tombstones mid-session.
    let doc = da.doc();
    tx.textdb()
        .purge_tombstones(doc, tx.textdb().now())
        .unwrap();

    // Both editors keep working (their sessions retry through staleness).
    da.type_text(0, "A").unwrap();
    db.type_text(db.len(), "B").unwrap();
    da.sync();
    db.sync();
    assert_eq!(da.text(), db.text());
    assert!(da.text().starts_with('A'));
    assert!(da.text().ends_with('B'));
}
