//! Integration tests for the metadata services working together with the
//! workflow engine and the editing stack through the public facade.

use tendax_core::{
    activity_timeline, collaboration_graph, Assignee, FolderRule, Permission, Platform, Principal,
    SearchQuery, TaskSpec, Tendax,
};

#[test]
fn has_open_tasks_folder_tracks_workflow() {
    let tx = Tendax::in_memory().unwrap();
    let alice = tx.create_user("alice").unwrap();
    let bob = tx.create_user("bob").unwrap();
    let d1 = tx.create_document("with-task", alice).unwrap();
    let _d2 = tx.create_document("without-task", alice).unwrap();

    let task = tx
        .process()
        .define_task(d1, alice, TaskSpec::new("review", Assignee::User(bob)))
        .unwrap();
    let f = tx
        .folders()
        .create_folder("needs-work", alice, FolderRule::HasOpenTasks)
        .unwrap();
    let mut watch = tx.folders().watch(f).unwrap();
    assert_eq!(watch.contents(), &[d1]);

    // Completing the task empties the folder "within seconds".
    tx.process().complete(task, bob, "done").unwrap();
    let changes = watch.refresh().unwrap();
    assert_eq!(changes.len(), 1);
    assert!(watch.contents().is_empty());
}

#[test]
fn templates_through_the_facade() {
    let tx = Tendax::in_memory().unwrap();
    let alice = tx.create_user("alice").unwrap();
    tx.textdb()
        .define_template(
            "meeting-minutes",
            alice,
            "Minutes\n\nAttendees:\n\nDecisions:",
            &[
                ("heading1", 0, 7),
                ("heading2", 9, 10),
                ("heading2", 21, 10),
            ],
        )
        .unwrap();
    let doc = tx
        .textdb()
        .create_document_from_template("2026-07-06", alice, "meeting-minutes")
        .unwrap();
    let h = tx.textdb().open(doc, alice).unwrap();
    assert!(h.text().starts_with("Minutes"));
    assert_eq!(h.structures().unwrap().len(), 3);
    // Templated documents participate in search immediately.
    let hits = tx
        .search()
        .unwrap()
        .search(&SearchQuery::terms("attendees"))
        .unwrap();
    assert_eq!(hits.len(), 1);
}

#[test]
fn range_protection_between_real_editors() {
    let tx = Tendax::in_memory().unwrap();
    let alice = tx.create_user("alice").unwrap();
    tx.create_user("bob").unwrap();
    tx.create_document("contract", alice).unwrap();

    let sa = tx.connect("alice", Platform::WindowsXp).unwrap();
    let sb = tx.connect("bob", Platform::Linux).unwrap();
    let mut da = sa.open("contract").unwrap();
    da.type_text(0, "FINAL CLAUSE. negotiable part").unwrap();

    // Alice locks the final clause for everyone else.
    let (_, _) = da
        .with_handle("protect", |h| {
            h.protect_range(0, 13, Principal::All, Permission::Write)?;
            Ok((
                (),
                tendax_core::EditReceipt {
                    op: tendax_core::OpId::NONE,
                    commit_ts: 0,
                    effects: vec![],
                },
            ))
        })
        .unwrap();

    let mut db = sb.open("contract").unwrap();
    // Bob cannot touch the locked span…
    assert!(db.delete(0, 5).is_err());
    // …but can edit the negotiable part.
    db.type_text(29, " (v2)").unwrap();
    da.sync();
    assert!(da.text().ends_with("(v2)"));
}

#[test]
fn mining_dimensions_over_a_real_corpus() {
    let tx = Tendax::in_memory().unwrap();
    let alice = tx.create_user("alice").unwrap();
    let bob = tx.create_user("bob").unwrap();
    let doc = tx.create_document("shared", alice).unwrap();
    let mut ha = tx.textdb().open(doc, alice).unwrap();
    ha.insert_text(0, "alice wrote this ").unwrap();
    let mut hb = tx.textdb().open(doc, bob).unwrap();
    hb.insert_text(0, "bob too ").unwrap();

    let graph = collaboration_graph(tx.textdb()).unwrap();
    assert_eq!(graph.len(), 1);
    assert_eq!((graph[0].0, graph[0].1), (alice, bob));

    let timeline = activity_timeline(tx.textdb(), doc, 5).unwrap();
    assert_eq!(timeline.iter().sum::<usize>(), 2);
}
