//! `tendax-suite` — workspace umbrella for the TeNDaX reproduction.
//!
//! This crate exists so the repository root can host integration tests
//! (`tests/`) and runnable examples (`examples/`) that span all TeNDaX
//! crates. The real public API lives in [`tendax_core`].

pub use tendax_collab as collab;
pub use tendax_core as core;
pub use tendax_meta as meta;
pub use tendax_process as process;
pub use tendax_storage as storage;
pub use tendax_text as text;
