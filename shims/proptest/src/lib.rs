//! Offline shim for `proptest`: a miniature property-testing engine.
//!
//! Implements the API surface this workspace uses — `proptest!`,
//! `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`, `Just`, `any`,
//! integer/float ranges, regex-subset string strategies, tuples,
//! `collection::vec`, `option::of`, `prop_map`, and `prop_recursive` —
//! with random generation but no shrinking. Failures report the failing
//! inputs and the case seed so a run can be reproduced by fixing
//! `PROPTEST_CASES`/seed arithmetic (cases are deterministic per test).

use std::fmt;
use std::marker::PhantomData;
use std::rc::Rc;

// ------------------------------------------------------------------ RNG

/// Deterministic test RNG (xoshiro256** seeded via splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) < n.wrapping_neg() % n {
                continue;
            }
            return (m >> 64) as u64;
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ------------------------------------------------------------- Strategy

/// A generator of values of one type.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }

    /// Build recursive values: `branch` receives a strategy for the
    /// sub-value and returns the composite strategy. `depth` bounds the
    /// recursion depth; the remaining size hints are accepted for API
    /// compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch_size: u32,
        branch: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let base = self.boxed();
        Recursive {
            base,
            depth,
            branch: Rc::new(move |inner| branch(inner).boxed()),
        }
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    depth: u32,
    branch: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            depth: self.depth,
            branch: self.branch.clone(),
        }
    }
}

impl<T: fmt::Debug + 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(u64::from(self.depth) + 1) as u32;
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.branch)(strat);
        }
        strat.generate(rng)
    }
}

/// Weighted union of strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights summed")
    }
}

// ----------------------------------------------------------- primitives

/// A type with a default generation strategy; see [`any`].
pub trait Arbitrary: fmt::Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for any value of `T` (edge-biased for integers).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias toward boundary values, like real proptest's
                // binary-search-shrunk distributions tend to surface.
                match rng.below(8) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only (NaN breaks round-trip equality laws that
        // the real crate's default `any::<f64>()` also avoids by default).
        match rng.below(8) {
            0 => 0.0,
            1 => -0.0,
            2 => 1.0,
            3 => -1.0,
            4 => f64::MAX,
            5 => f64::MIN_POSITIVE,
            _ => loop {
                let v = f64::from_bits(rng.next_u64());
                if v.is_finite() {
                    return v;
                }
            },
        }
    }
}

macro_rules! range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.below(span) as $wide) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(rng.below(span + 1) as $wide) as $t
            }
        }
    )*};
}
range_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// --------------------------------------------------- string strategies

/// `&str` patterns act as regex-subset string strategies, supporting
/// literals, `.`, character classes (`[a-c x]`, ranges and literals),
/// and the quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (star/plus capped
/// at 8 repetitions).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    AnyChar,
    Class(Vec<(char, char)>),
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::AnyChar,
            '[' => {
                let mut set = Vec::new();
                loop {
                    let c = chars.next().unwrap_or_else(|| {
                        panic!("unterminated character class in pattern `{pattern}`")
                    });
                    if c == ']' {
                        break;
                    }
                    let lo = if c == '\\' {
                        chars.next().expect("escape in class")
                    } else {
                        c
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = match chars.next() {
                            Some(']') => {
                                // Trailing `-` is a literal.
                                set.push((lo, lo));
                                set.push(('-', '-'));
                                break;
                            }
                            Some(h) => h,
                            None => panic!("unterminated range in pattern `{pattern}`"),
                        };
                        set.push((lo, hi));
                    } else {
                        set.push((lo, lo));
                    }
                }
                Atom::Class(set)
            }
            '\\' => Atom::Literal(chars.next().expect("dangling escape")),
            c => Atom::Literal(c),
        };
        // Quantifier?
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("quantifier min"),
                        n.trim().parse::<usize>().expect("quantifier max"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            out.push(sample_atom(&atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        // `.`: mostly printable ASCII, occasionally an arbitrary scalar
        // (exercises multi-byte encodings without drowning in them).
        Atom::AnyChar => {
            if rng.below(10) == 0 {
                loop {
                    if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                        if c != '\u{0}' {
                            return c;
                        }
                    }
                }
            } else {
                char::from_u32(0x20 + rng.below(0x5F) as u32).expect("printable ascii")
            }
        }
        Atom::Class(set) => {
            let total: u64 = set
                .iter()
                .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in set {
                let span = (*hi as u64) - (*lo as u64) + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32).expect("class char");
                }
                pick -= span;
            }
            unreachable!("class spans summed")
        }
    }
}

// ---------------------------------------------------------- containers

pub mod collection {
    use super::*;

    /// Bounds for collection sizes; converts from ranges and constants.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        /// Inclusive.
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Vectors of values from `elem`, sized within `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::*;

    /// `Some` three times out of four, like the real crate's default.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// -------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($(($($S:ident $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

// -------------------------------------------------------------- runner

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A rejected test case (from `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

#[doc(hidden)]
pub fn __base_seed(test_name: &str) -> u64 {
    // Stable per test; overridable for reproduction.
    let env = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok());
    if let Some(s) = env {
        return s;
    }
    // FNV-1a over the test name.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[doc(hidden)]
pub fn __report_failure(test: &str, case: u32, seed: u64, inputs: &str, detail: &str) -> ! {
    panic!(
        "proptest `{test}` failed at case {case} (seed {seed}).\n\
         inputs:\n{inputs}\n{detail}\n\
         (re-run with PROPTEST_SEED={seed} to reproduce this sequence)"
    );
}

/// The proptest entry macro: wraps property functions into `#[test]`s.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::__base_seed(stringify!($name));
            for case in 0..config.cases {
                let seed = base.wrapping_add(u64::from(case));
                let mut rng = $crate::TestRng::seed_from_u64(seed);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let inputs = {
                    let mut s = String::new();
                    $(s.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg
                    ));)*
                    s
                };
                let outcome: ::std::thread::Result<
                    ::std::result::Result<(), $crate::TestCaseError>
                > = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    },
                ));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => $crate::__report_failure(
                        stringify!($name), case, seed, &inputs, &format!("assertion: {e}"),
                    ),
                    Err(panic) => {
                        let detail: &str = panic
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| panic.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        $crate::__report_failure(
                            stringify!($name), case, seed, &inputs, &format!("panic: {detail}"),
                        )
                    }
                }
            }
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_ne!($left, $right, "assertion failed: left != right")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  both: {:?}",
                        format!($($fmt)+),
                        __l
                    )));
                }
            }
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!($left, $right, "assertion failed: left == right")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
}

/// The union-strategy macro: `prop_oneof![s1, s2]` or weighted
/// `prop_oneof![3 => s1, 1 => s2]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

pub mod prelude {
    /// The real crate exposes itself through its prelude as `proptest`;
    /// mirror that so `proptest::collection::vec(...)` resolves inside
    /// `use proptest::prelude::*;` files even without an extern line.
    pub use crate as proptest;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_maps_generate() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = (0..10u64).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = prop_oneof![3 => Just(1u8), 1 => Just(2u8)];
        let ones = (0..1000).filter(|_| s.generate(&mut rng) == 1).count();
        assert!((650..900).contains(&ones), "got {ones}");
    }

    #[test]
    fn pattern_strings_match_shape() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = "[a-c]{1,3}".generate(&mut rng);
            assert!((1..=3).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = ".{0,40}".generate(&mut rng);
            assert!(t.chars().count() <= 40);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(depth(&s.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro machinery itself works end to end.
        #[test]
        fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
            prop_assert_eq!(a + b, b + a);
            prop_assert!(a + b >= a, "non-negative addend");
        }
    }

    #[test]
    fn vec_and_option_strategies() {
        let mut rng = TestRng::seed_from_u64(5);
        let vs = crate::collection::vec(0u8..10, 2..5);
        for _ in 0..100 {
            let v = vs.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let os = crate::option::of(Just(7u8));
        let somes = (0..1000)
            .filter(|_| os.generate(&mut rng).is_some())
            .count();
        assert!((650..850).contains(&somes));
    }
}
