//! Offline shim for `bytes`: the little-endian put/get subset the WAL
//! codec uses, backed by plain `Vec<u8>`/slices.

use std::ops::Deref;

/// An immutable byte buffer (here: an owned `Vec`, dereferencing to a
/// slice so indexing and `&b[..n]` work like the real crate).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side trait: append fixed-width little-endian integers and raw
/// slices. Implemented for [`BytesMut`] and `Vec<u8>`.
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

/// Read-side trait: consume fixed-width little-endian integers from the
/// front of a buffer. Implemented for `&[u8]`.
///
/// Like the real crate, the getters panic when the buffer is too short —
/// callers are expected to check `remaining()` first.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
    fn get_i64_le(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
    fn get_f64_le(&mut self) -> f64 {
        let v = f64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_i64_le(-42);
        b.put_f64_le(0.5);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        let mut s: &[u8] = &frozen;
        assert_eq!(s.get_u8(), 7);
        assert_eq!(s.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(s.get_u64_le(), 42);
        assert_eq!(s.get_i64_le(), -42);
        assert_eq!(s.get_f64_le(), 0.5);
        assert_eq!(s, b"xyz");
        s.advance(3);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn bytes_indexes_like_a_slice() {
        let b: Bytes = vec![1, 2, 3, 4].into();
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
    }
}
