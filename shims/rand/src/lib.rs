//! Offline shim for `rand`: the `Rng`/`SeedableRng`/`SmallRng` subset
//! this workspace uses, built on xoshiro256** seeded via splitmix64.
//!
//! Deterministic for a given seed, statistically decent, and entirely
//! dependency-free. Not cryptographic.

/// Core RNG trait (subset of `rand::RngCore` + `rand::Rng`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Sample a value of a type with a natural uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        sample_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A type samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! std_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        sample_f64(rng)
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision.
fn sample_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, n)` via Lemire's multiply-shift with rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let (hi, lo) = {
            let m = (x as u128) * (n as u128);
            ((m >> 64) as u64, m as u64)
        };
        // Rejection zone keeps the distribution exactly uniform.
        if lo < n.wrapping_neg() % n {
            continue;
        }
        return hi;
    }
}

macro_rules! int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_below(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(uniform_below(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}
int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + sample_f64(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_width_ranges_cover_extremes_without_panic() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let _: u64 = rng.gen_range(0..=u64::MAX);
            let _: usize = rng.gen_range(0..usize::MAX);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn uniform_below_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b}");
        }
    }
}
