//! Offline shim for `criterion`: a minimal wall-clock benchmark harness.
//!
//! Supports the subset this workspace's `harness = false` benches use:
//! `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`throughput`/`bench_function`/`bench_with_input`/`finish`,
//! `BenchmarkId`, `Bencher::{iter, iter_batched}`, `BatchSize`, and
//! `Throughput`. No statistics beyond mean-of-samples, no HTML reports.
//!
//! When invoked with `--test` (as `cargo test` does for bench targets)
//! every benchmark body runs exactly once, as a smoke test. Positional
//! command-line arguments act as substring filters on the full
//! `group/benchmark` id, mirroring `cargo bench -- <filter>`.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state, one per bench binary.
pub struct Criterion {
    quick: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut quick = false;
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                quick = true;
            } else if !arg.starts_with('-') {
                filters.push(arg);
            }
            // Other flags (--bench, --nocapture, ...) are accepted and ignored.
        }
        Criterion { quick, filters }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f))
    }
}

/// Units processed per iteration, for per-second reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the shim treats all variants the
/// same (setup is simply untimed).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut bencher = Bencher {
            quick: self.criterion.quick,
            sample_size: self.sample_size,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        report(&full, &bencher, self.throughput);
    }
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{id:<60} (no measurement)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let mut line = format!("{id:<60} {} /iter ({} iters)", fmt_ns(per_iter), b.iters);
    if per_iter > 0.0 {
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 * 1e9 / per_iter;
                line.push_str(&format!("  {rate:.0} elem/s"));
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 * 1e9 / per_iter;
                line.push_str(&format!("  {:.1} MiB/s", rate / (1024.0 * 1024.0)));
            }
            None => {}
        }
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Passed to benchmark closures; `iter`/`iter_batched` record timing.
pub struct Bencher {
    quick: bool,
    sample_size: usize,
    iters: u64,
    elapsed: Duration,
}

/// Per-benchmark wall-clock budget in full mode; iteration stops at the
/// budget or at `sample_size * 100` iterations, whichever comes first
/// (always completing at least `sample_size` iterations).
const TIME_BUDGET: Duration = Duration::from_millis(40);

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up, untimed
        if self.quick {
            let start = Instant::now();
            black_box(routine());
            self.record(1, start.elapsed());
            return;
        }
        let max_iters = (self.sample_size as u64) * 100;
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        while iters < max_iters && (iters < self.sample_size as u64 || total < TIME_BUDGET) {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
            iters += 1;
        }
        self.record(iters, total);
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up, untimed
        if self.quick {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.record(1, start.elapsed());
            return;
        }
        let max_iters = (self.sample_size as u64) * 100;
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        while iters < max_iters && (iters < self.sample_size as u64 || total < TIME_BUDGET) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.record(iters, total);
    }

    fn record(&mut self, iters: u64, elapsed: Duration) {
        self.iters = iters;
        self.elapsed = elapsed;
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion {
            quick: false,
            filters: Vec::new(),
        };
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(5);
        let mut count = 0u64;
        group.bench_function("counter", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        group.finish();
        assert!(count >= 5, "at least sample_size iterations, got {count}");
    }

    #[test]
    fn filters_skip_nonmatching_benches() {
        let mut c = Criterion {
            quick: true,
            filters: vec!["match_me".into()],
        };
        let mut group = c.benchmark_group("grp");
        let mut ran_skipped = false;
        let mut ran_matched = false;
        group.bench_function("other", |b| {
            ran_skipped = true;
            b.iter(|| ())
        });
        group.bench_function("match_me", |b| {
            ran_matched = true;
            b.iter(|| ())
        });
        group.finish();
        assert!(!ran_skipped);
        assert!(ran_matched);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).id, "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion {
            quick: true,
            filters: Vec::new(),
        };
        let mut group = c.benchmark_group("grp");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
