//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! Implements the subset of the parking_lot API this workspace uses:
//! non-poisoning `Mutex`/`RwLock` (poison is recovered transparently, as
//! parking_lot has no poisoning) and a `Condvar` that pairs with the
//! shim's `MutexGuard`. Guards deref like the real crate's.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning facade over `std`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    /// Always `Some` outside of [`Condvar`] waits (the wait swaps the std
    /// guard out and back in around the blocking call).
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard held")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard held")
    }
}

/// A reader-writer lock (non-poisoning facade over `std`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(sync::TryLockError::Poisoned(p)) => f
                .debug_struct("RwLock")
                .field("data", &&*p.into_inner())
                .finish(),
            Err(sync::TryLockError::WouldBlock) => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable pairing with this shim's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Result of a timed wait; mirrors parking_lot's API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, r) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

/// Run `f` on the inner std guard, moving it out and back in.
fn take_guard<'a, T: ?Sized>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    let inner = guard.inner.take().expect("guard held");
    guard.inner = Some(f(inner));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
