//! Offline shim for `crossbeam`, implementing the `channel` subset this
//! workspace uses on top of `std::sync::mpsc`.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_try_recv() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_timeout_times_out_then_receives() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(100)),
                Ok(9)
            );
        }

        #[test]
        fn dropped_receiver_fails_send() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
