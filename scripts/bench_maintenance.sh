#!/usr/bin/env bash
# Run the sustained-ingest maintenance benchmark (experiment A6) and
# append its one-line JSON summary to bench_results/maintenance.json
# (one line per run, newest last), so regressions show up as a diffable
# series.
# Usage: scripts/bench_maintenance.sh [--test]   (--test: small quick run)
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p bench_results
out="$PWD/bench_results/maintenance.json"

echo "==> cargo bench -p tendax-bench --bench maintenance"
# cargo runs the bench with the package dir as CWD; pass an absolute path.
cargo bench -p tendax-bench --bench maintenance -- --json "$out" "$@"

echo "==> appended to bench_results/maintenance.json:"
tail -n 1 "$out"
