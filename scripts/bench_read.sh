#!/usr/bin/env bash
# Run the read-path benchmark and append its one-line JSON summary to
# bench_results/read_path.json (one line per run, newest last), so
# regressions show up as a diffable series.
# Usage: scripts/bench_read.sh [--test]   (--test: small quick run)
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p bench_results
out="$PWD/bench_results/read_path.json"

echo "==> cargo bench -p tendax-bench --bench read_path"
# cargo runs the bench with the package dir as CWD; pass an absolute path.
cargo bench -p tendax-bench --bench read_path -- --json "$out" "$@"

echo "==> appended to bench_results/read_path.json:"
tail -n 1 "$out"
