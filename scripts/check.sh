#!/usr/bin/env bash
# Pre-PR gate: everything a change must pass before review.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> crash-injection suite (checkpoint/maintenance + WAL recovery)"
cargo test -q -p tendax-storage --test maintenance --test recovery_faults

echo "==> crash-simulation suite (SimVfs, seeds 0..32)"
cargo test -q -p tendax-storage --test sim_crash

echo "==> WAL shard-layout reopen compatibility (re-shard on checkpoint)"
cargo test -q -p tendax-storage --test reshard

echo "==> sharded-WAL matrix leg (default layout forced to 4 shards)"
TENDAX_WAL_SHARDS=4 cargo test -q -p tendax-storage \
    --test sim_crash --test commit_pipeline --test merge_commit \
    --test maintenance --test recovery_faults --test reshard

echo "==> cold-tier smoke (demotion + reopen + point lookup)"
cargo test -q -p tendax-storage --test cold_storage

echo "==> cold-tier matrix leg (default options forced cold-enabled)"
TENDAX_COLD=1 cargo test -q -p tendax-storage \
    --test sim_crash --test commit_pipeline --test merge_commit \
    --test maintenance --test recovery_faults --test read_path

echo "==> commit-pipeline invariants (gap-freedom, FCW, WAL prefix replay)"
cargo test -q -p tendax-storage --test commit_pipeline

echo "==> commutative merge-commit suite (descriptor merge vs abort matrix)"
cargo test -q -p tendax-storage --test merge_commit

echo "==> transport loopback smoke (wire codec + TCP e2e convergence)"
cargo test -q -p tendax-net --test codec --test loopback

echo "==> connection-capacity + forwarder-pool suite"
cargo test -q -p tendax-net --test capacity

echo "==> lan-party determinism suite (schedule digest + byte identity)"
cargo test -q -p tendax-bench --test lan_party_determinism

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> bench_compare.py --self-test"
python3 scripts/bench_compare.py --self-test

echo "==> lan-party smoke (small-N, all three drivers)"
cargo bench -p tendax-bench --bench lan_party -- --test

echo "==> all checks passed"
