#!/usr/bin/env bash
# Crash-simulation seed sweep: run the sim_crash suite once per seed so
# a red CI log names the exact failing schedule.
#
# Usage: scripts/ci_seed_sweep.sh [START] [COUNT]
#   START  first seed (default 0)
#   COUNT  number of seeds (default 32)
#
# Reproducing a failure locally is one command — every assertion in the
# suite embeds its seed, and the suite honors the same variable:
#
#   TENDAX_SIM_SEED=<n> cargo test -p tendax-storage --test sim_crash
#
# (A plain `cargo test --test sim_crash` sweeps seeds 0..32 in-process;
# this script exists so CI can shard, extend the range nightly, and
# report per-seed pass/fail lines.)
set -euo pipefail
cd "$(dirname "$0")/.."

start="${1:-0}"
count="${2:-32}"

echo "==> building sim_crash test binary"
cargo test -q -p tendax-storage --test sim_crash --no-run

failed=()
for ((seed = start; seed < start + count; seed++)); do
    if TENDAX_SIM_SEED="$seed" cargo test -q -p tendax-storage --test sim_crash >/tmp/sim_seed_$$.log 2>&1; then
        echo "seed $seed: ok"
    else
        echo "seed $seed: FAILED"
        echo "--- output (rerun: TENDAX_SIM_SEED=$seed cargo test -p tendax-storage --test sim_crash) ---"
        cat /tmp/sim_seed_$$.log
        failed+=("$seed")
    fi
done
rm -f /tmp/sim_seed_$$.log

if ((${#failed[@]})); then
    echo "==> ${#failed[@]}/$count seeds failed: ${failed[*]}"
    echo "==> rerun one with: TENDAX_SIM_SEED=<n> cargo test -p tendax-storage --test sim_crash"
    exit 1
fi
echo "==> all $count seeds passed (seeds $start..$((start + count - 1)))"
