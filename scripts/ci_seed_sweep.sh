#!/usr/bin/env bash
# Crash-simulation seed sweep: run the sim_crash suite once per seed so
# a red CI log names the exact failing schedule.
#
# Usage: scripts/ci_seed_sweep.sh [START] [COUNT]
#   START  first seed (default 0)
#   COUNT  number of seeds (default 32)
#
# Every seed runs twice: once with the default single-file WAL and once
# with TENDAX_WAL_SHARDS=4, so the sharded layout gets the same crash
# coverage wherever a test opens a database with default options.
#
# Reproducing a failure locally is one command — every assertion in the
# suite embeds its seed, and the suite honors the same variable:
#
#   TENDAX_SIM_SEED=<n> cargo test -p tendax-storage --test sim_crash
#
# (A plain `cargo test --test sim_crash` sweeps seeds 0..32 in-process;
# this script exists so CI can shard, extend the range nightly, and
# report per-seed pass/fail lines.)
set -euo pipefail
cd "$(dirname "$0")/.."

start="${1:-0}"
count="${2:-32}"

echo "==> building sim_crash test binary"
cargo test -q -p tendax-storage --test sim_crash --no-run

failed=()
for shards in 1 4; do
    for ((seed = start; seed < start + count; seed++)); do
        if TENDAX_SIM_SEED="$seed" TENDAX_WAL_SHARDS="$shards" \
            cargo test -q -p tendax-storage --test sim_crash >/tmp/sim_seed_$$.log 2>&1; then
            echo "seed $seed (wal_shards=$shards): ok"
        else
            echo "seed $seed (wal_shards=$shards): FAILED"
            echo "--- output (rerun: TENDAX_SIM_SEED=$seed TENDAX_WAL_SHARDS=$shards cargo test -p tendax-storage --test sim_crash) ---"
            cat /tmp/sim_seed_$$.log
            failed+=("$seed/s$shards")
        fi
    done
done
rm -f /tmp/sim_seed_$$.log

if ((${#failed[@]})); then
    echo "==> ${#failed[@]}/$((2 * count)) seed legs failed: ${failed[*]}"
    echo "==> rerun one with: TENDAX_SIM_SEED=<n> TENDAX_WAL_SHARDS=<1|4> cargo test -p tendax-storage --test sim_crash"
    exit 1
fi
echo "==> all $count seeds passed in both WAL layouts (seeds $start..$((start + count - 1)))"
