#!/usr/bin/env bash
# Crash-simulation seed sweep: run the sim_crash suite once per seed so
# a red CI log names the exact failing schedule.
#
# Usage: scripts/ci_seed_sweep.sh [START] [COUNT]
#   START  first seed (default 0)
#   COUNT  number of seeds (default 32)
#
# Every seed runs across the layout matrix: single-file WAL vs
# TENDAX_WAL_SHARDS=4, each with the tiered cold storage off and on
# (TENDAX_COLD=1 flips Options::default() to a cold-enabled engine), so
# both storage tiers get identical crash coverage wherever a test opens
# a database with default options. Set TENDAX_COLD_SWEEP="0" or "1" to
# run a single cold leg (CI uses this to split the matrix across jobs).
#
# Reproducing a failure locally is one command — every assertion in the
# suite embeds its seed, and the suite honors the same variable:
#
#   TENDAX_SIM_SEED=<n> cargo test -p tendax-storage --test sim_crash
#
# (A plain `cargo test --test sim_crash` sweeps seeds 0..32 in-process;
# this script exists so CI can shard, extend the range nightly, and
# report per-seed pass/fail lines.)
set -euo pipefail
cd "$(dirname "$0")/.."

start="${1:-0}"
count="${2:-32}"

echo "==> building sim_crash test binary"
cargo test -q -p tendax-storage --test sim_crash --no-run

cold_legs="${TENDAX_COLD_SWEEP:-0 1}"

failed=()
legs=0
for cold in $cold_legs; do
    for shards in 1 4; do
        for ((seed = start; seed < start + count; seed++)); do
            legs=$((legs + 1))
            if TENDAX_SIM_SEED="$seed" TENDAX_WAL_SHARDS="$shards" TENDAX_COLD="$cold" \
                cargo test -q -p tendax-storage --test sim_crash >/tmp/sim_seed_$$.log 2>&1; then
                echo "seed $seed (wal_shards=$shards cold=$cold): ok"
            else
                echo "seed $seed (wal_shards=$shards cold=$cold): FAILED"
                echo "--- output (rerun: TENDAX_SIM_SEED=$seed TENDAX_WAL_SHARDS=$shards TENDAX_COLD=$cold cargo test -p tendax-storage --test sim_crash) ---"
                cat /tmp/sim_seed_$$.log
                failed+=("$seed/s$shards/c$cold")
            fi
        done
    done
done
rm -f /tmp/sim_seed_$$.log

if ((${#failed[@]})); then
    echo "==> ${#failed[@]}/$legs seed legs failed: ${failed[*]}"
    echo "==> rerun one with: TENDAX_SIM_SEED=<n> TENDAX_WAL_SHARDS=<1|4> TENDAX_COLD=<0|1> cargo test -p tendax-storage --test sim_crash"
    exit 1
fi
echo "==> all $legs seed legs passed (seeds $start..$((start + count - 1)), WAL layouts 1+4, cold legs: $cold_legs)"
