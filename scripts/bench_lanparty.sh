#!/usr/bin/env bash
# Run the "LAN party at scale" macro-benchmark (experiment A10) and
# append its JSON summary lines — one per driver mode (inproc,
# tcp_pooled, tcp_persub) — to bench_results/lan_party.json (newest
# last), so regressions show up as a diffable series.
# Usage: scripts/bench_lanparty.sh [--test] [--seed N]
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p bench_results
out="$PWD/bench_results/lan_party.json"

echo "==> cargo bench -p tendax-bench --bench lan_party"
# cargo runs the bench with the package dir as CWD; pass an absolute path.
cargo bench -p tendax-bench --bench lan_party -- --json "$out" "$@"

echo "==> appended to bench_results/lan_party.json:"
tail -n 3 "$out"
