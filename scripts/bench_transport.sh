#!/usr/bin/env bash
# Run the TCP transport benchmark (experiment N1) and append its
# one-line JSON summary to bench_results/transport_echo.json (one line
# per run, newest last), so wire-throughput regressions show up as a
# diffable series.
# Usage: scripts/bench_transport.sh [--test]   (--test: small quick run)
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p bench_results
out="$PWD/bench_results/transport_echo.json"

echo "==> cargo bench -p tendax-bench --bench transport_echo"
# cargo runs the bench with the package dir as CWD; pass an absolute path.
cargo bench -p tendax-bench --bench transport_echo -- --json "$out" "$@"

echo "==> appended to bench_results/transport_echo.json:"
tail -n 1 "$out"
