#!/usr/bin/env python3
"""Diff a fresh bench result against the recorded baseline series.

Usage:
    scripts/bench_compare.py NEW.json [BASELINE.json]

NEW.json is a bench output file in the repo's JSONL convention (one
flat JSON object per line, newest last); the newest line is compared.
BASELINE.json defaults to the file of the same name under
bench_results/ — its newest line is the baseline.

Throughput metrics are compared higher-is-better and the script exits
nonzero if any regresses by more than the threshold (default 20%,
override with --threshold PCT). Metrics are selected by convention:
keys ending in `_per_s`, or — for files with no such keys, like
read_path.json whose floats are all rows/s — every float-valued key
without a unit suffix (`_us`, `_ms`, `_bytes`). Config scalars
(integers, booleans) are never compared.

This is an advisory gate: bench numbers move with the machine, so CI
runs it as a non-blocking job. A red result means "look at this PR's
perf", not "the build is broken".
"""

import argparse
import json
import os
import sys
from pathlib import Path

UNIT_SUFFIXES = ("_us", "_ms", "_bytes")


def step_summary(markdown: str) -> None:
    """Append a markdown block to the GitHub Actions step summary, when
    running under Actions ($GITHUB_STEP_SUMMARY set). No-op locally."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    try:
        with open(path, "a") as f:
            f.write(markdown + "\n")
    except OSError:
        pass  # advisory output only; never fail the comparison over it


def seed_baseline(new: Path, baseline: Path) -> None:
    """First run for this bench key: record the newest line as the
    baseline so the series exists for the next comparison. A missing
    baseline used to short-circuit to "nothing to compare" forever —
    the gate never armed for newly added benches."""
    baseline.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(last_line(new), separators=(",", ":"))
    with baseline.open("a") as f:
        f.write(line + "\n")
    print(f"bench_compare: no baseline at {baseline}; seeded it from {new}")
    step_summary(
        f"### bench_compare: {new.name}\n\n"
        f"No baseline existed — seeded `{baseline.name}` from this run.\n"
    )


def last_line(path: Path) -> dict:
    lines = [ln for ln in path.read_text().splitlines() if ln.strip()]
    if not lines:
        sys.exit(f"bench_compare: {path} is empty")
    try:
        obj = json.loads(lines[-1])
    except json.JSONDecodeError as e:
        sys.exit(f"bench_compare: {path} last line is not JSON: {e}")
    if not isinstance(obj, dict):
        sys.exit(f"bench_compare: {path} last line is not an object")
    return obj


def throughput_keys(obj: dict) -> list[str]:
    per_s = [k for k, v in obj.items() if k.endswith("_per_s") and isinstance(v, (int, float))]
    if per_s:
        return per_s
    # Fallback for result files that record bare rates: floats without a
    # unit suffix are throughput; config scalars are ints/bools.
    return [
        k
        for k, v in obj.items()
        if isinstance(v, float) and not k.endswith(UNIT_SUFFIXES)
    ]


def self_test() -> int:
    """Exercise the seeding and comparison paths against temp files."""
    import subprocess
    import tempfile

    script = Path(__file__).resolve()
    with tempfile.TemporaryDirectory(prefix="bench-compare-selftest-") as td:
        tmp = Path(td)
        new = tmp / "fake_bench.json"
        baseline = tmp / "baseline.json"
        new.write_text('{"quick":true,"fake_ops_per_s":1000.0}\n')
        # Shield the subprocesses from a real CI summary file — the
        # fake numbers must not leak into the job's summary.
        env = {k: v for k, v in os.environ.items() if k != "GITHUB_STEP_SUMMARY"}

        # 1. Missing baseline: must seed it and pass.
        r = subprocess.run([sys.executable, script, new, baseline], env=env)
        assert r.returncode == 0, "missing baseline must seed, not fail"
        assert baseline.exists(), "baseline was not seeded"
        assert json.loads(baseline.read_text())["fake_ops_per_s"] == 1000.0

        # 2. Seeded baseline, result within threshold: pass.
        new.write_text('{"quick":true,"fake_ops_per_s":950.0}\n')
        r = subprocess.run([sys.executable, script, new, baseline], env=env)
        assert r.returncode == 0, "5% dip must pass the 20% threshold"

        # 3. Past the threshold: fail, and the step summary (when the
        # env var points somewhere) must carry the markdown table.
        new.write_text('{"quick":true,"fake_ops_per_s":100.0}\n')
        summary = tmp / "summary.md"
        env_md = dict(env, GITHUB_STEP_SUMMARY=str(summary))
        r = subprocess.run([sys.executable, script, new, baseline], env=env_md)
        assert r.returncode == 1, "90% drop must be flagged as a regression"
        md = summary.read_text()
        assert "| `fake_ops_per_s` |" in md, f"summary table missing: {md!r}"
        assert "regressed" in md, "summary verdict missing"

        # 4. Empty baseline file behaves like a missing one.
        empty = tmp / "empty.json"
        empty.write_text("\n")
        r = subprocess.run([sys.executable, script, new, empty], env=env)
        assert r.returncode == 0, "empty baseline must seed, not crash"
        assert json.loads(empty.read_text())["fake_ops_per_s"] == 100.0
    print("bench_compare: self-test ok")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("new", type=Path, nargs="?", help="fresh bench JSONL file")
    ap.add_argument(
        "baseline",
        type=Path,
        nargs="?",
        help="baseline JSONL (default: bench_results/<same name>)",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        help="regression threshold in percent (default 20)",
    )
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in sanity checks and exit",
    )
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.new is None:
        ap.error("NEW.json is required unless --self-test")

    baseline_path = args.baseline
    if baseline_path is None:
        repo = Path(__file__).resolve().parent.parent
        baseline_path = repo / "bench_results" / args.new.name
    if not baseline_path.exists() or not baseline_path.read_text().strip():
        seed_baseline(args.new, baseline_path)
        return 0

    new = last_line(args.new)
    base = last_line(baseline_path)
    keys = [k for k in throughput_keys(base) if k in new]
    if not keys:
        print(f"bench_compare: no throughput metrics shared with {baseline_path.name}")
        return 0

    regressions = []
    width = max(len(k) for k in keys)
    md_rows = []
    print(f"{'metric':<{width}}  {'baseline':>12}  {'new':>12}  change")
    for k in keys:
        old_v, new_v = float(base[k]), float(new[k])
        if old_v <= 0:
            continue
        change = (new_v - old_v) / old_v * 100.0
        marker = ""
        if change < -args.threshold:
            regressions.append((k, change))
            marker = "  << REGRESSION"
        print(f"{k:<{width}}  {old_v:>12.1f}  {new_v:>12.1f}  {change:+6.1f}%{marker}")
        flag = " ⚠️" if marker else ""
        md_rows.append(f"| `{k}` | {old_v:,.1f} | {new_v:,.1f} | {change:+.1f}%{flag} |")

    verdict = (
        f"**{len(regressions)} metric(s) regressed more than {args.threshold:.0f}%**"
        if regressions
        else f"no regression beyond {args.threshold:.0f}%"
    )
    step_summary(
        f"### bench_compare: {args.new.name}\n\n"
        "| metric | baseline | new | change |\n"
        "|---|---:|---:|---:|\n" + "\n".join(md_rows) + f"\n\n{verdict} vs `{baseline_path.name}`\n"
    )

    if regressions:
        print(
            f"\nbench_compare: {len(regressions)} metric(s) regressed more than "
            f"{args.threshold:.0f}% vs {baseline_path}"
        )
        return 1
    print(f"\nbench_compare: no regression beyond {args.threshold:.0f}% vs {baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
