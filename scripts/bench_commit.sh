#!/usr/bin/env bash
# Run the commit-scaling benchmark (experiment A7) and append its
# one-line JSON summary to bench_results/commit_scaling.json (one line
# per run, newest last), so scaling regressions show up as a diffable
# series.
# Usage: scripts/bench_commit.sh [--test]   (--test: small quick run)
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p bench_results
out="$PWD/bench_results/commit_scaling.json"

echo "==> cargo bench -p tendax-bench --bench commit_scaling"
# cargo runs the bench with the package dir as CWD; pass an absolute path.
cargo bench -p tendax-bench --bench commit_scaling -- --json "$out" "$@"

echo "==> appended to bench_results/commit_scaling.json:"
tail -n 1 "$out"
