#!/usr/bin/env bash
# Run the hot-document contention benchmark (experiment A9) and append
# its one-line JSON summary to bench_results/hot_doc_contention.json
# (one line per run, newest last), so merge-vs-abort regressions show
# up as a diffable series.
# Usage: scripts/bench_hotdoc.sh [--test]   (--test: small quick run)
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p bench_results
out="$PWD/bench_results/hot_doc_contention.json"

echo "==> cargo bench -p tendax-bench --bench hot_doc_contention"
# cargo runs the bench with the package dir as CWD; pass an absolute path.
cargo bench -p tendax-bench --bench hot_doc_contention -- --json "$out" "$@"

echo "==> appended to bench_results/hot_doc_contention.json:"
tail -n 1 "$out"
