//! Typed values and data types stored in engine rows.
//!
//! The engine is schema-first: every column declares a [`DataType`] and the
//! engine rejects ill-typed writes at statement time, mirroring how the
//! TeNDaX prototype relied on its host DBMS's type system.

use std::cmp::Ordering;
use std::fmt;

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit unsigned identifier (row ids, character ids, user ids, …).
    Id,
    /// UTF-8 string.
    Text,
    /// Boolean flag.
    Bool,
    /// Opaque byte blob (embedded objects: pictures, serialized tables, …).
    Bytes,
    /// Microseconds since the epoch of the engine clock.
    Timestamp,
    /// 64-bit float (mining feature values, rank scores).
    Float,
}

/// A single typed value.
///
/// `Null` is a value of every type; columns declared `NOT NULL` reject it.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Id(u64),
    Text(String),
    Bool(bool),
    Bytes(Vec<u8>),
    Timestamp(i64),
    Float(f64),
}

impl Value {
    /// The dynamic type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Id(_) => Some(DataType::Id),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Bytes(_) => Some(DataType::Bytes),
            Value::Timestamp(_) => Some(DataType::Timestamp),
            Value::Float(_) => Some(DataType::Float),
        }
    }

    /// Whether this value may be stored in a column of `ty`.
    pub fn conforms_to(&self, ty: DataType) -> bool {
        match self.data_type() {
            None => true, // Null conforms; NOT NULL is checked separately.
            Some(actual) => actual == ty,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an `i64`, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a `u64`, if this is an `Id`.
    pub fn as_id(&self) -> Option<u64> {
        match self {
            Value::Id(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a `&str`, if this is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_timestamp(&self) -> Option<i64> {
        match self {
            Value::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Total order used by indexes and range scans.
    ///
    /// `Null` sorts before everything; values of different types sort by a
    /// fixed type rank so that heterogeneous comparisons are total rather
    /// than panicking. Floats use IEEE total ordering.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Id(_) => 3,
                Value::Timestamp(_) => 4,
                Value::Float(_) => 5,
                Value::Text(_) => 6,
                Value::Bytes(_) => 7,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Id(a), Value::Id(b)) => a.cmp(b),
            (Value::Timestamp(a), Value::Timestamp(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Bytes(a), Value::Bytes(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            Value::Int(v) => {
                2u8.hash(state);
                v.hash(state);
            }
            Value::Id(v) => {
                3u8.hash(state);
                v.hash(state);
            }
            Value::Timestamp(v) => {
                4u8.hash(state);
                v.hash(state);
            }
            Value::Float(v) => {
                5u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Text(v) => {
                6u8.hash(state);
                v.hash(state);
            }
            Value::Bytes(v) => {
                7u8.hash(state);
                v.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Id(v) => write!(f, "#{v}"),
            Value::Text(v) => write!(f, "{v:?}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Bytes(v) => write!(f, "<{} bytes>", v.len()),
            Value::Timestamp(v) => write!(f, "@{v}"),
            Value::Float(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Id(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance() {
        assert!(Value::Int(3).conforms_to(DataType::Int));
        assert!(!Value::Int(3).conforms_to(DataType::Text));
        assert!(Value::Null.conforms_to(DataType::Text));
        assert!(Value::Null.conforms_to(DataType::Bytes));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(-7).as_int(), Some(-7));
        assert_eq!(Value::Id(9).as_id(), Some(9));
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Timestamp(5).as_timestamp(), Some(5));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Int(1).as_text(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn ordering_within_type() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Text("a".into()) < Value::Text("b".into()));
        assert!(Value::Timestamp(10) < Value::Timestamp(11));
        assert!(Value::Float(f64::NEG_INFINITY) < Value::Float(0.0));
    }

    #[test]
    fn null_sorts_first_and_cross_type_is_total() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Bool(true) < Value::Int(i64::MIN));
        assert!(Value::Int(i64::MAX) < Value::Id(0));
        // Antisymmetry spot-check.
        let a = Value::Text("x".into());
        let b = Value::Id(1);
        assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
    }

    #[test]
    fn float_nan_is_ordered() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3u64), Value::Id(3));
        assert_eq!(Value::from("s"), Value::Text("s".into()));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(2i64)), Value::Int(2));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Id(4).to_string(), "#4");
        assert_eq!(Value::Bytes(vec![1, 2]).to_string(), "<2 bytes>");
    }
}
