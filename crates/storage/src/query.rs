//! Typed predicates and a small access-path planner.
//!
//! The engine does not parse SQL; clients build [`Predicate`] trees with a
//! fluent API. [`plan_access`] inspects the conjunctive normal form of a
//! predicate and picks an index access path (point or prefix lookup) when
//! one applies, falling back to a full scan otherwise. TeNDaX metadata
//! queries (dynamic folders, search, lineage) all route through this layer.

use crate::error::Result;
use crate::row::Row;
use crate::schema::TableDef;
use crate::value::Value;

/// A boolean predicate over one row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (scan everything).
    True,
    /// Column equals value.
    Eq(String, Value),
    /// Column does not equal value (null-safe: null ≠ anything is true).
    Ne(String, Value),
    /// Column strictly less than value.
    Lt(String, Value),
    /// Column ≤ value.
    Le(String, Value),
    /// Column strictly greater than value.
    Gt(String, Value),
    /// Column ≥ value.
    Ge(String, Value),
    /// Column between lo and hi, inclusive.
    Between(String, Value, Value),
    /// Column is one of the listed values.
    In(String, Vec<Value>),
    /// Column is NULL.
    IsNull(String),
    /// Text column contains the given substring.
    Contains(String, String),
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `a AND b` convenience.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut v), Predicate::And(w)) => {
                v.extend(w);
                Predicate::And(v)
            }
            (Predicate::And(mut v), p) => {
                v.push(p);
                Predicate::And(v)
            }
            (p, Predicate::And(mut v)) => {
                v.insert(0, p);
                Predicate::And(v)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// `a OR b` convenience.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(vec![self, other])
    }

    /// Evaluate against a row under `def`'s column naming.
    ///
    /// Unknown columns surface as errors (they indicate a bug in the
    /// caller's query, not a data condition).
    pub fn eval(&self, def: &TableDef, row: &Row) -> Result<bool> {
        Ok(match self {
            Predicate::True => true,
            Predicate::Eq(c, v) => {
                let x = col(def, row, c)?;
                !x.is_null() && x == v
            }
            Predicate::Ne(c, v) => {
                let x = col(def, row, c)?;
                x.is_null() || x != v
            }
            Predicate::Lt(c, v) => cmp_col(def, row, c, v)?.is_some_and(|o| o.is_lt()),
            Predicate::Le(c, v) => cmp_col(def, row, c, v)?.is_some_and(|o| o.is_le()),
            Predicate::Gt(c, v) => cmp_col(def, row, c, v)?.is_some_and(|o| o.is_gt()),
            Predicate::Ge(c, v) => cmp_col(def, row, c, v)?.is_some_and(|o| o.is_ge()),
            Predicate::Between(c, lo, hi) => {
                let x = col(def, row, c)?;
                !x.is_null() && x >= lo && x <= hi
            }
            Predicate::In(c, vs) => {
                let x = col(def, row, c)?;
                !x.is_null() && vs.contains(x)
            }
            Predicate::IsNull(c) => col(def, row, c)?.is_null(),
            Predicate::Contains(c, needle) => col(def, row, c)?
                .as_text()
                .is_some_and(|t| t.contains(needle)),
            Predicate::And(ps) => {
                for p in ps {
                    if !p.eval(def, row)? {
                        return Ok(false);
                    }
                }
                true
            }
            Predicate::Or(ps) => {
                for p in ps {
                    if p.eval(def, row)? {
                        return Ok(true);
                    }
                }
                false
            }
            Predicate::Not(p) => !p.eval(def, row)?,
        })
    }

    /// The top-level conjuncts of this predicate.
    fn conjuncts(&self) -> Vec<&Predicate> {
        match self {
            Predicate::And(ps) => ps.iter().flat_map(|p| p.conjuncts()).collect(),
            p => vec![p],
        }
    }
}

fn col<'r>(def: &TableDef, row: &'r Row, name: &str) -> Result<&'r Value> {
    let pos = def.require_column(name)?;
    Ok(row.get(pos).unwrap_or(&Value::Null))
}

fn cmp_col(def: &TableDef, row: &Row, name: &str, v: &Value) -> Result<Option<std::cmp::Ordering>> {
    let x = col(def, row, name)?;
    if x.is_null() || v.is_null() {
        return Ok(None); // SQL-ish: comparisons with NULL are unknown
    }
    Ok(Some(x.total_cmp(v)))
}

/// The access path chosen for a query.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Scan every visible row.
    FullScan,
    /// Point/prefix lookup on the index at position `index_pos`, with the
    /// given key prefix (values for the leading index columns).
    IndexPrefix {
        index_pos: usize,
        prefix: Vec<Value>,
    },
}

/// Choose an access path for `pred` over `def`.
///
/// Strategy: collect `col = literal` conjuncts, then pick the index whose
/// leading columns are maximally covered by them. Range conjuncts fall back
/// to a full scan (the storage layer's dedicated `index_range` API covers
/// ordered scans where callers know the index they want).
pub fn plan_access(def: &TableDef, pred: &Predicate) -> AccessPath {
    let eqs: Vec<(usize, &Value)> = pred
        .conjuncts()
        .iter()
        .filter_map(|p| match p {
            Predicate::Eq(c, v) => def.column_position(c).map(|pos| (pos, v)),
            _ => None,
        })
        .collect();
    if eqs.is_empty() {
        return AccessPath::FullScan;
    }
    let mut best: Option<(usize, Vec<Value>)> = None;
    for (ipos, idx) in def.indexes.iter().enumerate() {
        let mut prefix = Vec::new();
        for &cpos in &idx.columns {
            match eqs.iter().find(|(p, _)| *p == cpos) {
                Some((_, v)) => prefix.push((*v).clone()),
                None => break,
            }
        }
        if !prefix.is_empty() && best.as_ref().is_none_or(|(_, bp)| prefix.len() > bp.len()) {
            best = Some((ipos, prefix));
        }
    }
    match best {
        Some((index_pos, prefix)) => AccessPath::IndexPrefix { index_pos, prefix },
        None => AccessPath::FullScan,
    }
}

/// Human-readable plan description (EXPLAIN analogue, used in tests and by
/// the bench harness to prove which path a workload exercises).
pub fn explain(def: &TableDef, pred: &Predicate) -> String {
    match plan_access(def, pred) {
        AccessPath::FullScan => format!("FullScan({})", def.name),
        AccessPath::IndexPrefix { index_pos, prefix } => {
            let idx = &def.indexes[index_pos];
            format!(
                "IndexPrefix({}.{}, prefix_len={})",
                def.name,
                idx.name,
                prefix.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn def() -> TableDef {
        TableDef::new("chars")
            .column("doc", DataType::Id)
            .column("author", DataType::Id)
            .column("text", DataType::Text)
            .nullable_column("note", DataType::Text)
            .index("by_doc_author", &["doc", "author"])
            .index("by_author", &["author"])
    }

    fn row(doc: u64, author: u64, text: &str) -> Row {
        Row::new(vec![
            Value::Id(doc),
            Value::Id(author),
            Value::Text(text.into()),
            Value::Null,
        ])
    }

    #[test]
    fn eval_comparisons() {
        let d = def();
        let r = row(1, 2, "hello world");
        assert!(Predicate::Eq("doc".into(), Value::Id(1))
            .eval(&d, &r)
            .unwrap());
        assert!(!Predicate::Eq("doc".into(), Value::Id(9))
            .eval(&d, &r)
            .unwrap());
        assert!(Predicate::Ne("doc".into(), Value::Id(9))
            .eval(&d, &r)
            .unwrap());
        assert!(Predicate::Gt("author".into(), Value::Id(1))
            .eval(&d, &r)
            .unwrap());
        assert!(Predicate::Le("author".into(), Value::Id(2))
            .eval(&d, &r)
            .unwrap());
        assert!(
            Predicate::Between("author".into(), Value::Id(2), Value::Id(5))
                .eval(&d, &r)
                .unwrap()
        );
        assert!(
            Predicate::In("doc".into(), vec![Value::Id(3), Value::Id(1)])
                .eval(&d, &r)
                .unwrap()
        );
        assert!(Predicate::Contains("text".into(), "lo wo".into())
            .eval(&d, &r)
            .unwrap());
        assert!(Predicate::IsNull("note".into()).eval(&d, &r).unwrap());
    }

    #[test]
    fn eval_null_semantics() {
        let d = def();
        let r = row(1, 2, "x");
        // note is NULL: Eq is false, Ne is true, ranges are unknown=false.
        assert!(!Predicate::Eq("note".into(), Value::Text("x".into()))
            .eval(&d, &r)
            .unwrap());
        assert!(Predicate::Ne("note".into(), Value::Text("x".into()))
            .eval(&d, &r)
            .unwrap());
        assert!(!Predicate::Lt("note".into(), Value::Text("x".into()))
            .eval(&d, &r)
            .unwrap());
        assert!(!Predicate::Contains("note".into(), "x".into())
            .eval(&d, &r)
            .unwrap());
    }

    #[test]
    fn eval_boolean_combinators() {
        let d = def();
        let r = row(1, 2, "x");
        let p = Predicate::Eq("doc".into(), Value::Id(1))
            .and(Predicate::Eq("author".into(), Value::Id(2)));
        assert!(p.eval(&d, &r).unwrap());
        let q = Predicate::Eq("doc".into(), Value::Id(9))
            .or(Predicate::Eq("author".into(), Value::Id(2)));
        assert!(q.eval(&d, &r).unwrap());
        assert!(!Predicate::Not(Box::new(q)).eval(&d, &r).unwrap());
        // True is identity for and().
        assert_eq!(
            Predicate::True.and(Predicate::IsNull("note".into())),
            Predicate::IsNull("note".into())
        );
    }

    #[test]
    fn eval_unknown_column_errors() {
        let d = def();
        let r = row(1, 2, "x");
        assert!(Predicate::Eq("bogus".into(), Value::Id(1))
            .eval(&d, &r)
            .is_err());
    }

    #[test]
    fn planner_picks_longest_index_prefix() {
        let d = def();
        let p = Predicate::Eq("author".into(), Value::Id(2))
            .and(Predicate::Eq("doc".into(), Value::Id(1)));
        match plan_access(&d, &p) {
            AccessPath::IndexPrefix { index_pos, prefix } => {
                assert_eq!(index_pos, 0); // by_doc_author covers both
                assert_eq!(prefix, vec![Value::Id(1), Value::Id(2)]);
            }
            other => panic!("expected index path, got {other:?}"),
        }
    }

    #[test]
    fn planner_uses_partial_prefix() {
        let d = def();
        let p = Predicate::Eq("doc".into(), Value::Id(1))
            .and(Predicate::Contains("text".into(), "x".into()));
        match plan_access(&d, &p) {
            AccessPath::IndexPrefix { index_pos, prefix } => {
                assert_eq!(index_pos, 0);
                assert_eq!(prefix.len(), 1);
            }
            other => panic!("expected index path, got {other:?}"),
        }
    }

    #[test]
    fn planner_falls_back_to_scan() {
        let d = def();
        assert_eq!(plan_access(&d, &Predicate::True), AccessPath::FullScan);
        let p = Predicate::Contains("text".into(), "x".into());
        assert_eq!(plan_access(&d, &p), AccessPath::FullScan);
        // Eq on a non-leading index column can't seed a prefix.
        let p = Predicate::Eq("text".into(), Value::Text("x".into()));
        assert_eq!(plan_access(&d, &p), AccessPath::FullScan);
    }

    #[test]
    fn explain_output() {
        let d = def();
        assert_eq!(explain(&d, &Predicate::True), "FullScan(chars)");
        let p = Predicate::Eq("doc".into(), Value::Id(1));
        assert_eq!(
            explain(&d, &p),
            "IndexPrefix(chars.by_doc_author, prefix_len=1)"
        );
    }
}
