//! Aggregation over scans: COUNT/SUM/MIN/MAX/AVG and GROUP BY.
//!
//! TeNDaX's metadata services are aggregation-shaped ("most cited",
//! attribution counts, activity histograms); this module provides the
//! engine-level primitives so those queries don't have to materialize
//! and post-process full row sets by hand.

use std::collections::BTreeMap;

use crate::error::Result;
use crate::query::Predicate;
use crate::schema::TableId;
use crate::txn::Transaction;
use crate::value::Value;

/// An aggregate function over a column (or over rows, for `Count`).
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregate {
    /// Number of matching rows.
    Count,
    /// Sum of a numeric column (`Int`, `Float`, or `Timestamp`).
    Sum(String),
    /// Minimum value of a column (any ordered type; nulls skipped).
    Min(String),
    /// Maximum value of a column.
    Max(String),
    /// Arithmetic mean of a numeric column, as `Float`.
    Avg(String),
}

/// Accumulator for one aggregate computation.
#[derive(Debug, Default)]
struct Acc {
    count: u64,
    sum: f64,
    sum_is_float: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl Acc {
    fn feed(&mut self, v: Option<&Value>) {
        self.count += 1;
        let Some(v) = v else { return };
        if v.is_null() {
            return;
        }
        match v {
            Value::Int(x) => self.sum += *x as f64,
            Value::Timestamp(x) => self.sum += *x as f64,
            Value::Float(x) => {
                self.sum += *x;
                self.sum_is_float = true;
            }
            _ => {}
        }
        if self.min.as_ref().is_none_or(|m| v < m) {
            self.min = Some(v.clone());
        }
        if self.max.as_ref().is_none_or(|m| v > m) {
            self.max = Some(v.clone());
        }
    }

    fn non_null(&self) -> u64 {
        // `count` counts rows; min presence implies at least one value.
        if self.min.is_some() {
            self.count
        } else {
            0
        }
    }

    fn finish(&self, agg: &Aggregate) -> Value {
        match agg {
            Aggregate::Count => Value::Int(self.count as i64),
            Aggregate::Sum(_) => {
                if self.sum_is_float {
                    Value::Float(self.sum)
                } else {
                    Value::Int(self.sum as i64)
                }
            }
            Aggregate::Min(_) => self.min.clone().unwrap_or(Value::Null),
            Aggregate::Max(_) => self.max.clone().unwrap_or(Value::Null),
            Aggregate::Avg(_) => {
                if self.non_null() == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
        }
    }
}

impl Aggregate {
    fn column(&self) -> Option<&str> {
        match self {
            Aggregate::Count => None,
            Aggregate::Sum(c) | Aggregate::Min(c) | Aggregate::Max(c) | Aggregate::Avg(c) => {
                Some(c)
            }
        }
    }
}

impl Transaction {
    /// Compute one aggregate over the rows matching `pred`.
    pub fn aggregate(&self, table: TableId, pred: &Predicate, agg: &Aggregate) -> Result<Value> {
        let def = self.table_def_of(table)?;
        let col_pos = match agg.column() {
            Some(c) => Some(def.require_column(c)?),
            None => None,
        };
        let mut acc = Acc::default();
        for (_, row) in self.scan(table, pred)? {
            acc.feed(col_pos.and_then(|p| row.get(p)));
        }
        Ok(acc.finish(agg))
    }

    /// Compute an aggregate per distinct value of `group_col`, sorted by
    /// group key. Null group keys form their own group.
    pub fn group_by(
        &self,
        table: TableId,
        pred: &Predicate,
        group_col: &str,
        agg: &Aggregate,
    ) -> Result<Vec<(Value, Value)>> {
        let def = self.table_def_of(table)?;
        let group_pos = def.require_column(group_col)?;
        let col_pos = match agg.column() {
            Some(c) => Some(def.require_column(c)?),
            None => None,
        };
        let mut groups: BTreeMap<Value, Acc> = BTreeMap::new();
        for (_, row) in self.scan(table, pred)? {
            let key = row.get(group_pos).cloned().unwrap_or(Value::Null);
            groups
                .entry(key)
                .or_default()
                .feed(col_pos.and_then(|p| row.get(p)));
        }
        Ok(groups
            .into_iter()
            .map(|(k, acc)| (k, acc.finish(agg)))
            .collect())
    }

    fn table_def_of(&self, table: TableId) -> Result<crate::schema::TableDef> {
        self.database_ref().table_def(table)
    }
}

// A small crate-internal accessor so aggregate code can reach the
// database handle held by the transaction.
impl Transaction {
    pub(crate) fn database_ref(&self) -> &crate::db::Database {
        self.db_handle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::error::StorageError;
    use crate::row::Row;
    use crate::schema::TableDef;
    use crate::value::DataType;

    fn setup() -> (Database, TableId) {
        let db = Database::open_in_memory();
        let t = db
            .create_table(
                TableDef::new("sales")
                    .column("region", DataType::Text)
                    .nullable_column("amount", DataType::Int)
                    .index("by_region", &["region"]),
            )
            .unwrap();
        let mut txn = db.begin();
        for (region, amount) in [
            ("east", Some(10)),
            ("east", Some(30)),
            ("west", Some(5)),
            ("west", None),
            ("north", Some(-2)),
        ] {
            txn.insert(
                t,
                Row::new(vec![
                    Value::Text(region.into()),
                    amount.map(Value::Int).unwrap_or(Value::Null),
                ]),
            )
            .unwrap();
        }
        txn.commit().unwrap();
        (db, t)
    }

    #[test]
    fn scalar_aggregates() {
        let (db, t) = setup();
        let txn = db.begin();
        assert_eq!(
            txn.aggregate(t, &Predicate::True, &Aggregate::Count)
                .unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            txn.aggregate(t, &Predicate::True, &Aggregate::Sum("amount".into()))
                .unwrap(),
            Value::Int(43)
        );
        assert_eq!(
            txn.aggregate(t, &Predicate::True, &Aggregate::Min("amount".into()))
                .unwrap(),
            Value::Int(-2)
        );
        assert_eq!(
            txn.aggregate(t, &Predicate::True, &Aggregate::Max("amount".into()))
                .unwrap(),
            Value::Int(30)
        );
    }

    #[test]
    fn aggregates_respect_predicates() {
        let (db, t) = setup();
        let txn = db.begin();
        let east = Predicate::Eq("region".into(), Value::Text("east".into()));
        assert_eq!(
            txn.aggregate(t, &east, &Aggregate::Sum("amount".into()))
                .unwrap(),
            Value::Int(40)
        );
        assert_eq!(
            txn.aggregate(t, &east, &Aggregate::Count).unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn group_by_counts_and_sums() {
        let (db, t) = setup();
        let txn = db.begin();
        let counts = txn
            .group_by(t, &Predicate::True, "region", &Aggregate::Count)
            .unwrap();
        assert_eq!(
            counts,
            vec![
                (Value::Text("east".into()), Value::Int(2)),
                (Value::Text("north".into()), Value::Int(1)),
                (Value::Text("west".into()), Value::Int(2)),
            ]
        );
        let sums = txn
            .group_by(
                t,
                &Predicate::True,
                "region",
                &Aggregate::Sum("amount".into()),
            )
            .unwrap();
        assert_eq!(sums[0], (Value::Text("east".into()), Value::Int(40)));
        assert_eq!(sums[2], (Value::Text("west".into()), Value::Int(5)));
    }

    #[test]
    fn avg_handles_nulls_and_empty() {
        let (db, t) = setup();
        let txn = db.begin();
        let avg = txn
            .aggregate(t, &Predicate::True, &Aggregate::Avg("amount".into()))
            .unwrap();
        // Sum 43 over 5 rows (row-count denominator; nulls contribute 0).
        assert_eq!(avg, Value::Float(43.0 / 5.0));
        let none = Predicate::Eq("region".into(), Value::Text("nowhere".into()));
        assert_eq!(
            txn.aggregate(t, &none, &Aggregate::Avg("amount".into()))
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            txn.aggregate(t, &none, &Aggregate::Min("amount".into()))
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn unknown_column_errors() {
        let (db, t) = setup();
        let txn = db.begin();
        assert!(matches!(
            txn.aggregate(t, &Predicate::True, &Aggregate::Sum("bogus".into())),
            Err(StorageError::UnknownColumn { .. })
        ));
        assert!(txn
            .group_by(t, &Predicate::True, "bogus", &Aggregate::Count)
            .is_err());
    }

    #[test]
    fn aggregates_see_own_writes() {
        let (db, t) = setup();
        let mut txn = db.begin();
        txn.insert(
            t,
            Row::new(vec![Value::Text("east".into()), Value::Int(100)]),
        )
        .unwrap();
        assert_eq!(
            txn.aggregate(
                t,
                &Predicate::Eq("region".into(), Value::Text("east".into())),
                &Aggregate::Sum("amount".into())
            )
            .unwrap(),
            Value::Int(140)
        );
    }
}
