//! Background maintenance: auto-vacuum and auto-checkpoint.
//!
//! TeNDaX turns every keystroke into a committed transaction, so a
//! long-lived document server accumulates superseded row versions and
//! WAL volume without bound. This module runs both reclamation paths on
//! a dedicated thread so neither ever sits on an editing session's
//! commit path:
//!
//! * **vacuum** prunes versions below the snapshot horizon once the
//!   pruneable-version estimate (or the number of commits since the last
//!   vacuum) crosses a threshold;
//! * **checkpoint** rewrites the WAL to a snapshot once its growth since
//!   the previous checkpoint crosses a byte or record budget. The
//!   checkpoint itself is the copy/swap design in [`crate::db`]: the
//!   commit pipeline is quiesced (exclusive commit latch) only while
//!   Arc-cloning row handles, and the file rewrite runs off-latch.
//!
//! The subsystem is opt-in ([`crate::Options::maintenance`]); with it
//! disabled the engine behaves exactly as before — no thread is
//! spawned, no counter is touched.
//!
//! The thread holds only a [`Weak`] reference to the database, upgraded
//! once per tick: maintenance never keeps a database alive, and when the
//! last user handle drops the thread notices on its next tick (or is
//! joined eagerly by `DbInner::drop`).

use std::sync::{Arc, Weak};
use std::thread::{self, JoinHandle, ThreadId};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::db::{Database, DbInner};

/// Tuning knobs for the background maintenance thread.
///
/// The defaults are sized for the paper's sustained multi-writer
/// editing workload: small enough that WAL growth and version-chain
/// length stay bounded, large enough that maintenance work is amortized
/// over many thousands of commits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintenanceOptions {
    /// How often the thread wakes to evaluate the triggers below.
    pub interval: Duration,
    /// Run vacuum when the estimated number of pruneable versions
    /// (stored versions minus distinct rows, summed over all tables)
    /// reaches this count.
    pub vacuum_pruneable: usize,
    /// Also run vacuum after this many commits since the last one, even
    /// if the pruneable estimate stays low (bounds horizon staleness).
    pub vacuum_commit_interval: u64,
    /// Checkpoint when the WAL has grown by this many bytes since the
    /// last checkpoint (or since open).
    pub checkpoint_wal_bytes: u64,
    /// Checkpoint when the WAL has grown by this many records since the
    /// last checkpoint (or since open).
    pub checkpoint_wal_records: u64,
}

impl Default for MaintenanceOptions {
    fn default() -> Self {
        MaintenanceOptions {
            interval: Duration::from_millis(200),
            vacuum_pruneable: 10_000,
            vacuum_commit_interval: 50_000,
            checkpoint_wal_bytes: 32 << 20,
            checkpoint_wal_records: 200_000,
        }
    }
}

/// Stop signal shared between the database handle and the thread.
#[derive(Default)]
struct Ctl {
    stop: Mutex<bool>,
    cv: Condvar,
}

impl Ctl {
    /// Sleep for `timeout` or until stopped; returns `true` to stop.
    fn wait_stop(&self, timeout: Duration) -> bool {
        let mut stop = self.stop.lock();
        if !*stop {
            self.cv.wait_for(&mut stop, timeout);
        }
        *stop
    }

    fn signal_stop(&self) {
        *self.stop.lock() = true;
        self.cv.notify_all();
    }
}

/// Handle to a running maintenance thread, owned by `DbInner`.
#[derive(Debug)]
pub(crate) struct MaintenanceTask {
    ctl: Arc<Ctl>,
    join: Option<JoinHandle<()>>,
    thread_id: ThreadId,
}

impl std::fmt::Debug for Ctl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctl")
            .field("stop", &*self.stop.lock())
            .finish()
    }
}

impl MaintenanceTask {
    pub(crate) fn spawn(db: Weak<DbInner>, opts: MaintenanceOptions) -> MaintenanceTask {
        let ctl = Arc::new(Ctl::default());
        let thread_ctl = ctl.clone();
        let join = thread::Builder::new()
            .name("tendax-maintenance".into())
            .spawn(move || run(db, opts, thread_ctl))
            .expect("spawn maintenance thread");
        let thread_id = join.thread().id();
        MaintenanceTask {
            ctl,
            join: Some(join),
            thread_id,
        }
    }

    /// Signal the thread to stop and wait for it — unless we *are* the
    /// thread (the tick's temporary `Database` handle may be the last
    /// one alive, so `DbInner::drop` can run on the maintenance thread
    /// itself; joining there would self-deadlock, so detach instead —
    /// the thread observes the dead `Weak` and exits on its own).
    pub(crate) fn shutdown(mut self) {
        self.ctl.signal_stop();
        if let Some(join) = self.join.take() {
            if thread::current().id() != self.thread_id {
                let _ = join.join();
            }
        }
    }
}

/// Per-thread trigger state carried across ticks.
struct TickState {
    last_vacuum_commits: u64,
    /// `(bytes, records)` the WAL reported right after the last
    /// checkpoint (or at thread start): growth is measured from here.
    ckpt_base: (u64, u64),
}

fn run(db: Weak<DbInner>, opts: MaintenanceOptions, ctl: Arc<Ctl>) {
    let mut state = TickState {
        // Start at zero, not the current commit count: a backlog that
        // predates the thread (e.g. accumulated before maintenance was
        // enabled, or recovered from the WAL) still gets vacuumed.
        last_vacuum_commits: 0,
        ckpt_base: match db.upgrade() {
            Some(inner) => Database::from_inner(inner).wal_size(),
            None => return,
        },
    };
    loop {
        if ctl.wait_stop(opts.interval) {
            return;
        }
        // Upgrade per tick: if every user handle is gone, exit. The
        // strong handle lives only for the duration of the tick.
        let Some(inner) = db.upgrade() else { return };
        let db = Database::from_inner(inner);
        tick(&db, &opts, &mut state);
    }
}

fn tick(db: &Database, opts: &MaintenanceOptions, state: &mut TickState) {
    let commits = db.stats().commits;
    let since_vacuum = commits.saturating_sub(state.last_vacuum_commits);
    // The pruneable arm fires on its own (the estimate only drops when
    // vacuum reclaims something — or a pinning snapshot ends, in which
    // case re-running is exactly right); the commit-count arm
    // additionally requires progress since the last vacuum so an idle
    // database isn't rescanned every tick.
    // The cold-budget arm fires whenever the RAM-resident version count
    // exceeds the configured memtable budget (cold tier enabled only):
    // vacuum then *demotes* the prefix below the horizon into a cold
    // run instead of discarding it.
    if db.pruneable_estimate() >= opts.vacuum_pruneable
        || (since_vacuum > 0 && since_vacuum >= opts.vacuum_commit_interval)
        || db.cold_over_budget()
    {
        db.vacuum();
        db.note_auto_vacuum();
        state.last_vacuum_commits = commits;
    }
    // Fold accumulated cold runs together once enough exist; bloom
    // filters keep reads cheap in between, so this is purely amortized.
    let _ = db.cold_compact_if_needed();

    let (bytes, records) = db.wal_size();
    let grew_bytes = bytes.saturating_sub(state.ckpt_base.0);
    let grew_records = records.saturating_sub(state.ckpt_base.1);
    if grew_bytes >= opts.checkpoint_wal_bytes || grew_records >= opts.checkpoint_wal_records {
        // A checkpoint failure poisons the WAL and every committer sees
        // WalUnavailable; nothing useful to do with the error here.
        if db.checkpoint().is_ok() {
            db.note_auto_checkpoint();
        }
        // Re-base even on failure so a poisoned log doesn't retrigger
        // every tick.
        state.ckpt_base = db.wal_size();
    }
}
