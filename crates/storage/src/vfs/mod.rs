//! Virtual file system: the narrow waist between the storage engine and
//! the disk.
//!
//! Everything durability-relevant the engine does — appending WAL
//! frames, flushing, fsyncing, the checkpoint's tmp-write/rename/dir-
//! sync dance, crash-tail truncation — goes through the [`Vfs`] trait
//! carried in [`crate::Options`]. Two backends exist:
//!
//! * [`OsVfs`] (the default): thin forwarding to `std::fs`, byte-for-
//!   byte identical to the engine's pre-VFS behaviour.
//! * [`sim::SimVfs`]: a deterministic in-memory disk that distinguishes
//!   volatile (buffered) from durable (synced) bytes, models directory-
//!   entry durability separately from file-data durability, and injects
//!   faults from a seeded RNG — the substrate for the crash-simulation
//!   suite (`tests/sim_crash.rs`).
//!
//! The trait deliberately exposes *durability points*, not a POSIX
//! surface: `flush` pushes application buffers to the OS, `sync_data` /
//! `sync_all` push OS buffers to the platter, and `sync_dir` makes
//! renames/creations/truncations of directory entries themselves
//! durable. A simulated crash erases exactly what those calls have not
//! yet pinned down.

pub mod sim;

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::Result;

pub use sim::SimVfs;

/// A writable file handle obtained from a [`Vfs`].
///
/// Reads happen through [`Vfs::read`] (the engine only ever reads whole
/// logs during replay); handles are append/write-side only.
pub trait VfsFile: Send + std::fmt::Debug {
    /// Append `buf` in full to the application-level buffer.
    fn write_all(&mut self, buf: &[u8]) -> Result<()>;

    /// Push application buffers down to the OS (survives process crash,
    /// not power loss).
    fn flush(&mut self) -> Result<()>;

    /// `fdatasync`: make the file's *data* durable. Callers flush first.
    fn sync_data(&mut self) -> Result<()>;

    /// `fsync`: data plus metadata (size). Required after `set_len`-like
    /// operations where the length change itself must persist.
    fn sync_all(&mut self) -> Result<()>;
}

/// The file-system surface the storage engine runs against.
///
/// Implementations must be thread-safe: the WAL writes from flush
/// leaders, checkpoints, and the maintenance thread concurrently.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Open `path` for appending, creating it if missing.
    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>>;

    /// Create `path` (truncating any existing contents) for writing —
    /// the checkpoint tmp-file path.
    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>>;

    /// Read the entire file. Missing files are the caller's concern:
    /// check [`Vfs::exists`] first (replay treats absent as empty).
    fn read(&self, path: &Path) -> Result<Vec<u8>>;

    /// Whether a directory entry for `path` currently exists.
    fn exists(&self, path: &Path) -> bool;

    /// Atomically rename `from` over `to`. Durable only after
    /// [`Vfs::sync_dir`] on the parent.
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;

    /// Shrink the file to `len` bytes and make the new length durable
    /// (`fsync`, not `fdatasync`: the shrink is a metadata change).
    /// A no-op if the file does not exist.
    fn truncate(&self, path: &Path, len: u64) -> Result<()>;

    /// Remove the directory entry for `path`. A no-op if the file does
    /// not exist. Durable only after [`Vfs::sync_dir`] on the parent —
    /// a crash before that can resurrect the entry.
    fn remove(&self, path: &Path) -> Result<()>;

    /// Fsync the directory containing `path`, making renames,
    /// creations, and truncations of entries within it durable.
    fn sync_dir(&self, path: &Path) -> Result<()>;

    /// Read `len` bytes starting at `offset`. The default materializes
    /// the whole file; backends with random access override it. Reading
    /// past the end is an error (cold-run footers address exact spans,
    /// so a short read means corruption, not convention).
    fn read_range(&self, path: &Path, offset: u64, len: usize) -> Result<Vec<u8>> {
        let data = self.read(path)?;
        let start = offset as usize;
        let end = start.checked_add(len).filter(|&e| e <= data.len());
        match end {
            Some(end) => Ok(data[start..end].to_vec()),
            None => Err(crate::error::StorageError::Io(format!(
                "read_range past end of {}: offset {offset} len {len} size {}",
                path.display(),
                data.len()
            ))),
        }
    }

    /// Current size of the file in bytes.
    fn file_len(&self, path: &Path) -> Result<u64> {
        Ok(self.read(path)?.len() as u64)
    }
}

/// The default backend: `std::fs`, exactly as the engine used it before
/// the VFS seam existed (buffered writer, `sync_data` for data-only
/// flushes, `sync_all` + parent-dir fsync for structural changes).
#[derive(Debug, Default, Clone, Copy)]
pub struct OsVfs;

/// The shared default instance (`Options::default()` clones this Arc
/// rather than allocating per database).
pub fn os_vfs() -> Arc<dyn Vfs> {
    static OS: std::sync::OnceLock<Arc<dyn Vfs>> = std::sync::OnceLock::new();
    OS.get_or_init(|| Arc::new(OsVfs)).clone()
}

#[derive(Debug)]
struct OsFile {
    writer: BufWriter<File>,
}

impl VfsFile for OsFile {
    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        self.writer.write_all(buf)?;
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }

    fn sync_data(&mut self) -> Result<()> {
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    fn sync_all(&mut self) -> Result<()> {
        self.writer.get_ref().sync_all()?;
        Ok(())
    }
}

impl Vfs for OsVfs {
    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(OsFile {
            writer: BufWriter::new(file),
        }))
    }

    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(OsFile {
            writer: BufWriter::new(file),
        }))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        Ok(std::fs::read(path)?)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        std::fs::rename(from, to)?;
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<()> {
        if !path.exists() {
            return Ok(());
        }
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        // `sync_all`, not `sync_data`: the repair is a pure metadata
        // (size) change, and fdatasync is allowed to skip metadata when
        // no data blocks were written. If the shrink is lost, the torn
        // tail resurfaces underneath fresh appends and replays as
        // mid-log corruption.
        file.sync_all()?;
        Ok(())
    }

    fn remove(&self, path: &Path) -> Result<()> {
        if !path.exists() {
            return Ok(());
        }
        std::fs::remove_file(path)?;
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> Result<()> {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        File::open(parent)?.sync_all()?;
        Ok(())
    }

    fn read_range(&self, path: &Path, offset: u64, len: usize) -> Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn file_len(&self, path: &Path) -> Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tendax-vfs-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn os_vfs_roundtrip() {
        let vfs = OsVfs;
        let path = tmp("roundtrip.bin");
        let mut f = vfs.open_append(&path).unwrap();
        f.write_all(b"hello ").unwrap();
        f.write_all(b"world").unwrap();
        f.flush().unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert!(vfs.exists(&path));
        assert_eq!(vfs.read(&path).unwrap(), b"hello world");
    }

    #[test]
    fn os_vfs_rename_and_truncate() {
        let vfs = OsVfs;
        let a = tmp("rename-a.bin");
        let b = tmp("rename-b.bin");
        let mut f = vfs.create(&a).unwrap();
        f.write_all(b"0123456789").unwrap();
        f.flush().unwrap();
        f.sync_all().unwrap();
        drop(f);
        vfs.rename(&a, &b).unwrap();
        vfs.sync_dir(&b).unwrap();
        assert!(!vfs.exists(&a));
        vfs.truncate(&b, 4).unwrap();
        assert_eq!(vfs.read(&b).unwrap(), b"0123");
        // Truncating a missing path is a no-op, not an error.
        vfs.truncate(&a, 0).unwrap();
    }

    #[test]
    fn create_truncates_existing_contents() {
        let vfs = OsVfs;
        let path = tmp("create.bin");
        std::fs::write(&path, b"old").unwrap();
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"n").unwrap();
        f.flush().unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"n");
    }
}
