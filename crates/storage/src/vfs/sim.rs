//! `SimVfs`: a deterministic, fault-injecting in-memory disk.
//!
//! The simulator models the three distinct durability domains a real
//! crash distinguishes — domains a truncate-the-file test cannot:
//!
//! 1. **File data.** Every inode carries two images: `data` (what a
//!    live process reads back — application writes land here) and
//!    `synced` (what survives power loss — advanced only by
//!    `sync_data`/`sync_all`). A crash reverts `data` to `synced`,
//!    plus an RNG-chosen prefix of the unsynced tail (the OS may have
//!    written back any amount of the page cache on its own), with the
//!    final kept bytes optionally torn (garbled partial sector).
//! 2. **Directory entries.** Each directory keeps a `live` and a
//!    `durable` name→inode map. Creations and renames update `live`;
//!    only [`Vfs::sync_dir`] copies `live` into `durable`. A crash
//!    reverts to `durable` — so a renamed checkpoint file can survive
//!    while its rename does not (old log resurrected), or the data of
//!    a freshly created file can be synced while its directory entry is
//!    lost entirely.
//! 3. **Faults.** A seeded RNG drives injected failures: a power cut
//!    after an armed op budget (the cut op may be a *short write* that
//!    persists a random prefix of the buffer), and fsyncs that return
//!    an error while *dropping* the unsynced bytes — the lying-fsync
//!    (fsyncgate) semantics that make retry-after-EIO unsound and
//!    justify the WAL's sticky poisoning.
//!
//! Determinism: all RNG draws happen under the simulator's single lock
//! in op order, so a given seed plus a given op schedule reproduces the
//! same crash image. Every injected error message carries the seed.
//!
//! Torn sectors are bounded to the final [`TORN_SECTOR_MAX`] bytes of
//! the surviving image. The engine's frame format (8-byte header + ≥1
//! payload byte) guarantees any frame spans more than that, so a torn
//! region always lies inside the *final* surviving frame: replay sees
//! it as the torn tail it is, never as mid-log corruption — which is
//! exactly the guarantee a single-sector-at-a-time disk gives a
//! same-sector tear.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::{rngs::SmallRng, Rng, SeedableRng};

use crate::error::{Result, StorageError};
use crate::vfs::{Vfs, VfsFile};

/// Upper bound on torn-tail garbling, in bytes. Must stay below the
/// minimum WAL frame size (9 bytes: two `u32` header words plus at
/// least one payload byte) so a tear never bleeds past the final
/// surviving frame — see the module docs.
const TORN_SECTOR_MAX: usize = 8;

/// One simulated inode.
#[derive(Debug, Default)]
struct Inode {
    /// The live image: what reads observe and writes extend.
    data: Vec<u8>,
    /// The durable image: what a crash reverts to (modulo the surviving
    /// unsynced prefix chosen at crash time).
    synced: Vec<u8>,
}

/// One simulated directory: volatile and durable entry maps.
#[derive(Debug, Default)]
struct Dir {
    live: BTreeMap<String, u64>,
    durable: BTreeMap<String, u64>,
}

#[derive(Debug, Default)]
struct Faults {
    /// Op index at which the power fails. The op with this exact index
    /// is the *partial* one (short write); everything after it errors
    /// outright until [`SimVfs::crash`] or [`SimVfs::restore_power`].
    power_fail_at: Option<u64>,
    /// The next this-many file syncs fail — returning an error *and*
    /// dropping the unsynced bytes (lying fsync).
    failing_syncs: u32,
}

#[derive(Debug)]
struct SimState {
    inodes: BTreeMap<u64, Inode>,
    dirs: BTreeMap<PathBuf, Dir>,
    next_ino: u64,
    rng: SmallRng,
    /// Mutating ops charged so far (writes, syncs, creates, renames,
    /// truncates, dir syncs). The unit of crash-point injection.
    ops: u64,
    faults: Faults,
    powered_off: bool,
    /// Crashes survived so far (diagnostics).
    crashes: u64,
}

/// A deterministic fault-injecting in-memory file system. Cloning
/// shares the same disk: tests keep one handle to crash and inspect
/// while the database owns another through `Options::vfs`.
#[derive(Debug, Clone)]
pub struct SimVfs {
    seed: u64,
    state: Arc<Mutex<SimState>>,
}

impl SimVfs {
    /// A fresh empty disk whose fault RNG is seeded with `seed`.
    pub fn new(seed: u64) -> SimVfs {
        SimVfs {
            seed,
            state: Arc::new(Mutex::new(SimState {
                inodes: BTreeMap::new(),
                dirs: BTreeMap::new(),
                next_ino: 1,
                rng: SmallRng::seed_from_u64(seed),
                ops: 0,
                faults: Faults::default(),
                powered_off: false,
                crashes: 0,
            })),
        }
    }

    /// The seed this disk's fault RNG was built from — print it in
    /// every failure message so the schedule reproduces.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Mutating ops charged so far. Run a workload once fault-free,
    /// read this, then sweep `power_fail_after` over `0..ops()`.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Arm a power cut `ops` mutating operations from now. The op that
    /// trips the budget becomes a short write (an RNG-chosen prefix of
    /// its buffer persists to the volatile image); every later op fails
    /// until [`SimVfs::crash`] or [`SimVfs::restore_power`].
    pub fn power_fail_after(&self, ops: u64) {
        let mut st = self.state.lock();
        st.faults.power_fail_at = Some(st.ops + ops);
    }

    /// Make the next `n` file syncs fail. A failing sync returns an
    /// error *and* discards the file's unsynced bytes — after EIO the
    /// page cache must be assumed gone, so retrying the fsync cannot
    /// make the data durable (the reasoning behind WAL poisoning).
    pub fn fail_next_syncs(&self, n: u32) {
        self.state.lock().faults.failing_syncs = n;
    }

    /// Whether an armed power cut has tripped.
    pub fn powered_off(&self) -> bool {
        self.state.lock().powered_off
    }

    /// Disarm faults and restore power without losing volatile state
    /// (the "it was just a blip" schedule — everything unsynced is
    /// still in the page cache).
    pub fn restore_power(&self) {
        let mut st = self.state.lock();
        st.faults = Faults::default();
        st.powered_off = false;
    }

    /// Crash the machine: every file reverts to its durable image plus
    /// an RNG-chosen (possibly torn) prefix of its unsynced tail, every
    /// directory reverts to its durable entry map, faults disarm, and
    /// power returns. Call with no live `Database` on this disk — open
    /// handles keep writing to pre-crash inodes otherwise.
    pub fn crash(&self) {
        let mut st = self.state.lock();
        let st = &mut *st;
        for inode in st.inodes.values_mut() {
            let synced_len = inode.synced.len();
            let survives_as_appended =
                inode.data.len() > synced_len && inode.data[..synced_len] == inode.synced[..];
            if survives_as_appended {
                // Append-only since the last sync: the OS may have
                // written back any prefix of the unsynced tail on its
                // own schedule.
                let unsynced = inode.data.len() - synced_len;
                let keep = st.rng.gen_range(0..=unsynced);
                inode.data.truncate(synced_len + keep);
                if keep > 0 && st.rng.gen_bool(0.5) {
                    // Torn final sector: garble up to TORN_SECTOR_MAX
                    // trailing bytes of the kept unsynced region.
                    let garble = st.rng.gen_range(1..=TORN_SECTOR_MAX.min(keep));
                    let len = inode.data.len();
                    for b in &mut inode.data[len - garble..] {
                        *b = 0xFF;
                    }
                }
            } else if inode.data != inode.synced {
                // Rewritten/truncated without a sync: only the durable
                // image survives.
                inode.data.clone_from(&inode.synced);
            }
            // Whatever survived the crash is on the platter now.
            inode.synced.clone_from(&inode.data);
        }
        for dir in st.dirs.values_mut() {
            dir.live = dir.durable.clone();
        }
        st.faults = Faults::default();
        st.powered_off = false;
        st.crashes += 1;
    }

    /// Crashes survived so far.
    pub fn crashes(&self) -> u64 {
        self.state.lock().crashes
    }

    /// The durable byte length of `path` (what a crash right now would
    /// preserve at minimum), or `None` if its entry is not durable.
    pub fn durable_len(&self, path: &Path) -> Option<usize> {
        let st = self.state.lock();
        let (dir, name) = split(path);
        let ino = *st.dirs.get(&dir)?.durable.get(&name)?;
        Some(st.inodes.get(&ino)?.synced.len())
    }

    fn power_err(&self) -> StorageError {
        StorageError::Io(format!(
            "simulated power failure (reproduce with TENDAX_SIM_SEED={})",
            self.seed
        ))
    }

    fn sync_err(&self) -> StorageError {
        StorageError::Io(format!(
            "simulated fsync failure, unsynced data dropped (reproduce with TENDAX_SIM_SEED={})",
            self.seed
        ))
    }
}

/// What [`charge`] decided about the op about to run.
enum OpFate {
    Run,
    /// This op trips the power budget: a write persists a partial
    /// prefix, everything else just fails.
    Tripped,
    /// Power is already out.
    Dead,
}

/// Charge one mutating op against the power budget.
fn charge(st: &mut SimState) -> OpFate {
    if st.powered_off {
        return OpFate::Dead;
    }
    let op = st.ops;
    st.ops += 1;
    match st.faults.power_fail_at {
        Some(at) if op >= at => {
            st.powered_off = true;
            OpFate::Tripped
        }
        _ => OpFate::Run,
    }
}

/// `(parent dir, file name)` of a sim path.
fn split(path: &Path) -> (PathBuf, String) {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    (parent, name)
}

/// A handle to a simulated inode. Holds the inode id, not the path:
/// like a POSIX fd it survives renames of the entry it was opened
/// through and keeps writing to the same inode.
#[derive(Debug)]
pub struct SimFile {
    vfs: SimVfs,
    ino: u64,
}

impl VfsFile for SimFile {
    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        let mut st = self.vfs.state.lock();
        match charge(&mut st) {
            OpFate::Run => {
                let ino = st.inodes.get_mut(&self.ino).expect("inode exists");
                ino.data.extend_from_slice(buf);
                Ok(())
            }
            OpFate::Tripped => {
                // Short write: a prefix of the buffer made it into the
                // page cache before the lights went out.
                let keep = st.rng.gen_range(0..=buf.len());
                let ino = st.inodes.get_mut(&self.ino).expect("inode exists");
                ino.data.extend_from_slice(&buf[..keep]);
                Err(self.vfs.power_err())
            }
            OpFate::Dead => Err(self.vfs.power_err()),
        }
    }

    fn flush(&mut self) -> Result<()> {
        // Application buffering is modelled inside `data` already (the
        // sim draws no distinction between app and OS buffers: both are
        // volatile), so flush is free — and charged to no budget.
        Ok(())
    }

    fn sync_data(&mut self) -> Result<()> {
        self.sync_all()
    }

    fn sync_all(&mut self) -> Result<()> {
        let mut st = self.vfs.state.lock();
        match charge(&mut st) {
            OpFate::Run => {
                if st.faults.failing_syncs > 0 {
                    st.faults.failing_syncs -= 1;
                    // Lying fsync: report failure AND drop the dirty
                    // pages — the data is unrecoverable, not retryable.
                    let ino = st.inodes.get_mut(&self.ino).expect("inode exists");
                    ino.data.clone_from(&ino.synced);
                    return Err(self.vfs.sync_err());
                }
                let ino = st.inodes.get_mut(&self.ino).expect("inode exists");
                ino.synced.clone_from(&ino.data);
                Ok(())
            }
            OpFate::Tripped | OpFate::Dead => Err(self.vfs.power_err()),
        }
    }
}

impl Vfs for SimVfs {
    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>> {
        let (dir, name) = split(path);
        let mut st = self.state.lock();
        if let Some(&ino) = st.dirs.get(&dir).and_then(|d| d.live.get(&name)) {
            // Opening an existing file moves no bytes: not charged.
            return Ok(Box::new(SimFile {
                vfs: self.clone(),
                ino,
            }));
        }
        // Creation writes a directory entry: charged, and volatile
        // until the parent is dir-synced.
        match charge(&mut st) {
            OpFate::Run => {}
            OpFate::Tripped | OpFate::Dead => return Err(self.power_err()),
        }
        let ino = st.next_ino;
        st.next_ino += 1;
        st.inodes.insert(ino, Inode::default());
        st.dirs.entry(dir).or_default().live.insert(name, ino);
        Ok(Box::new(SimFile {
            vfs: self.clone(),
            ino,
        }))
    }

    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>> {
        let (dir, name) = split(path);
        let mut st = self.state.lock();
        match charge(&mut st) {
            OpFate::Run => {}
            OpFate::Tripped | OpFate::Dead => return Err(self.power_err()),
        }
        let existing = st.dirs.get(&dir).and_then(|d| d.live.get(&name)).copied();
        let ino = match existing {
            Some(ino) => {
                // O_TRUNC: the live image empties; the durable image is
                // untouched until a sync (a crash can resurrect it).
                st.inodes.get_mut(&ino).expect("inode exists").data.clear();
                ino
            }
            None => {
                let ino = st.next_ino;
                st.next_ino += 1;
                st.inodes.insert(ino, Inode::default());
                st.dirs.entry(dir).or_default().live.insert(name, ino);
                ino
            }
        };
        Ok(Box::new(SimFile {
            vfs: self.clone(),
            ino,
        }))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        let (dir, name) = split(path);
        let st = self.state.lock();
        let ino = st
            .dirs
            .get(&dir)
            .and_then(|d| d.live.get(&name))
            .copied()
            .ok_or_else(|| StorageError::Io(format!("sim: no such file {}", path.display())))?;
        Ok(st.inodes.get(&ino).expect("inode exists").data.clone())
    }

    fn exists(&self, path: &Path) -> bool {
        let (dir, name) = split(path);
        let st = self.state.lock();
        st.dirs
            .get(&dir)
            .map(|d| d.live.contains_key(&name))
            .unwrap_or(false)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        let (fdir, fname) = split(from);
        let (tdir, tname) = split(to);
        let mut st = self.state.lock();
        match charge(&mut st) {
            OpFate::Run => {}
            OpFate::Tripped | OpFate::Dead => return Err(self.power_err()),
        }
        let ino = st
            .dirs
            .get_mut(&fdir)
            .and_then(|d| d.live.remove(&fname))
            .ok_or_else(|| StorageError::Io(format!("sim: no such file {}", from.display())))?;
        st.dirs.entry(tdir).or_default().live.insert(tname, ino);
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<()> {
        let (dir, name) = split(path);
        let mut st = self.state.lock();
        if st.dirs.get(&dir).and_then(|d| d.live.get(&name)).is_none() {
            return Ok(());
        }
        match charge(&mut st) {
            OpFate::Run => {}
            OpFate::Tripped | OpFate::Dead => return Err(self.power_err()),
        }
        if st.faults.failing_syncs > 0 {
            st.faults.failing_syncs -= 1;
            return Err(self.sync_err());
        }
        let ino = *st
            .dirs
            .get(&dir)
            .and_then(|d| d.live.get(&name))
            .expect("checked above");
        let inode = st.inodes.get_mut(&ino).expect("inode exists");
        inode.data.truncate(len as usize);
        // The OS-level truncate carries its own fsync (`sync_all` in
        // OsVfs::truncate), so the shrink is durable on success.
        inode.synced.clone_from(&inode.data);
        Ok(())
    }

    fn remove(&self, path: &Path) -> Result<()> {
        let (dir, name) = split(path);
        let mut st = self.state.lock();
        if st.dirs.get(&dir).and_then(|d| d.live.get(&name)).is_none() {
            return Ok(());
        }
        // Unlinking writes a directory entry: charged, and volatile
        // until the parent is dir-synced (a crash can resurrect the
        // entry, pointing at whatever image the inode kept).
        match charge(&mut st) {
            OpFate::Run => {}
            OpFate::Tripped | OpFate::Dead => return Err(self.power_err()),
        }
        st.dirs
            .get_mut(&dir)
            .expect("checked above")
            .live
            .remove(&name);
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> Result<()> {
        let (dir, _) = split(path);
        let mut st = self.state.lock();
        match charge(&mut st) {
            OpFate::Run => {}
            OpFate::Tripped | OpFate::Dead => return Err(self.power_err()),
        }
        if let Some(d) = st.dirs.get_mut(&dir) {
            d.durable = d.live.clone();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_synced(vfs: &SimVfs, path: &Path, bytes: &[u8]) {
        let mut f = vfs.open_append(path).unwrap();
        f.write_all(bytes).unwrap();
        f.sync_data().unwrap();
        drop(f);
        vfs.sync_dir(path).unwrap();
    }

    #[test]
    fn unsynced_bytes_can_vanish_on_crash_synced_bytes_cannot() {
        let vfs = SimVfs::new(7);
        let path = Path::new("/sim/a.wal");
        write_synced(&vfs, path, b"durable|");
        let mut f = vfs.open_append(path).unwrap();
        f.write_all(b"volatile").unwrap();
        drop(f);
        assert_eq!(vfs.read(path).unwrap(), b"durable|volatile");
        vfs.crash();
        let after = vfs.read(path).unwrap();
        assert!(
            after.starts_with(b"durable|"),
            "synced prefix lost: {after:?}"
        );
        assert!(after.len() <= b"durable|volatile".len());
    }

    #[test]
    fn crash_images_are_deterministic_per_seed() {
        let run = |seed| {
            let vfs = SimVfs::new(seed);
            let path = Path::new("/sim/a.wal");
            write_synced(&vfs, path, b"base");
            let mut f = vfs.open_append(path).unwrap();
            f.write_all(b"0123456789abcdef").unwrap();
            drop(f);
            vfs.crash();
            vfs.read(path).unwrap()
        };
        assert_eq!(run(42), run(42));
        // Different seeds draw different crash schedules at least
        // somewhere in a small scan (not for every pair, necessarily).
        assert!((0..16).any(|s| run(s) != run(s + 100)));
    }

    #[test]
    fn unsynced_creation_vanishes_on_crash() {
        let vfs = SimVfs::new(1);
        let path = Path::new("/sim/fresh.wal");
        let mut f = vfs.open_append(path).unwrap();
        f.write_all(b"data").unwrap();
        f.sync_data().unwrap(); // data durable, entry not
        drop(f);
        assert!(vfs.exists(path));
        vfs.crash();
        assert!(
            !vfs.exists(path),
            "directory entry survived without a dir sync"
        );
    }

    #[test]
    fn unsynced_rename_reverts_on_crash() {
        let vfs = SimVfs::new(2);
        let old = Path::new("/sim/log.wal");
        let tmp = Path::new("/sim/log.wal.tmp");
        write_synced(&vfs, old, b"old-log");
        write_synced(&vfs, tmp, b"new-log");
        vfs.rename(tmp, old).unwrap();
        assert_eq!(vfs.read(old).unwrap(), b"new-log");
        vfs.crash(); // rename was never dir-synced
        assert_eq!(vfs.read(old).unwrap(), b"old-log", "rename survived crash");
        assert_eq!(vfs.read(tmp).unwrap(), b"new-log", "tmp entry lost");
    }

    #[test]
    fn synced_rename_survives_crash() {
        let vfs = SimVfs::new(3);
        let old = Path::new("/sim/log.wal");
        let tmp = Path::new("/sim/log.wal.tmp");
        write_synced(&vfs, old, b"old-log");
        write_synced(&vfs, tmp, b"new-log");
        vfs.rename(tmp, old).unwrap();
        vfs.sync_dir(old).unwrap();
        vfs.crash();
        assert_eq!(vfs.read(old).unwrap(), b"new-log");
        assert!(!vfs.exists(tmp));
    }

    #[test]
    fn power_failure_trips_after_budget_and_crash_restores() {
        let vfs = SimVfs::new(4);
        let path = Path::new("/sim/a.wal");
        write_synced(&vfs, path, b"ok");
        vfs.power_fail_after(0);
        let mut f = vfs.open_append(path).unwrap();
        let err = f.write_all(b"doomed").unwrap_err();
        assert!(err.to_string().contains("TENDAX_SIM_SEED=4"), "{err}");
        assert!(vfs.powered_off());
        assert!(f.sync_data().is_err(), "ops after the cut must fail");
        drop(f);
        vfs.crash();
        assert!(!vfs.powered_off());
        let after = vfs.read(path).unwrap();
        assert!(after.starts_with(b"ok"));
        assert!(
            after.len() <= b"okdoomed".len(),
            "short write overran: {after:?}"
        );
        // Power is back: writes work again.
        let mut f = vfs.open_append(path).unwrap();
        f.write_all(b"!").unwrap();
    }

    #[test]
    fn failing_sync_drops_unsynced_bytes() {
        let vfs = SimVfs::new(5);
        let path = Path::new("/sim/a.wal");
        write_synced(&vfs, path, b"safe|");
        vfs.fail_next_syncs(1);
        let mut f = vfs.open_append(path).unwrap();
        f.write_all(b"gone").unwrap();
        let err = f.sync_data().unwrap_err();
        assert!(err.to_string().contains("fsync failure"), "{err}");
        // The dirty pages were discarded, not left for a retry.
        assert_eq!(vfs.read(path).unwrap(), b"safe|");
        // The next sync works again.
        f.write_all(b"kept").unwrap();
        f.sync_data().unwrap();
        assert_eq!(vfs.read(path).unwrap(), b"safe|kept");
    }

    #[test]
    fn torn_tail_is_bounded_and_only_in_unsynced_region() {
        for seed in 0..64 {
            let vfs = SimVfs::new(seed);
            let path = Path::new("/sim/a.wal");
            write_synced(&vfs, path, &[0xAA; 32]);
            let mut f = vfs.open_append(path).unwrap();
            f.write_all(&[0xBB; 64]).unwrap();
            drop(f);
            vfs.crash();
            let after = vfs.read(path).unwrap();
            assert!(after.len() >= 32 && after.len() <= 96, "seed {seed}");
            assert_eq!(
                &after[..32],
                &[0xAA; 32],
                "seed {seed}: durable region torn"
            );
            // Any garbling is confined to the final TORN_SECTOR_MAX
            // bytes of the kept image.
            let tail_start = after.len().saturating_sub(TORN_SECTOR_MAX).max(32);
            for (i, b) in after[32..tail_start].iter().enumerate() {
                assert_eq!(
                    *b, 0xBB,
                    "seed {seed}: byte {i} garbled before final sector"
                );
            }
        }
    }

    #[test]
    fn unsynced_remove_resurrects_on_crash_synced_remove_sticks() {
        let vfs = SimVfs::new(8);
        let path = Path::new("/sim/doomed.wal");
        write_synced(&vfs, path, b"bytes");
        vfs.remove(path).unwrap();
        assert!(!vfs.exists(path));
        vfs.crash(); // removal was never dir-synced
        assert!(vfs.exists(path), "unsynced unlink survived the crash");
        vfs.remove(path).unwrap();
        vfs.sync_dir(path).unwrap();
        vfs.crash();
        assert!(!vfs.exists(path));
        // Removing a missing path is a no-op, not an error.
        vfs.remove(Path::new("/sim/missing.wal")).unwrap();
    }

    #[test]
    fn truncate_is_durable_and_missing_file_is_noop() {
        let vfs = SimVfs::new(6);
        let path = Path::new("/sim/a.wal");
        write_synced(&vfs, path, b"0123456789");
        vfs.truncate(path, 4).unwrap();
        vfs.crash();
        assert_eq!(vfs.read(path).unwrap(), b"0123");
        vfs.truncate(Path::new("/sim/missing.wal"), 0).unwrap();
    }
}
