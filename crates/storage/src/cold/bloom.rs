//! Per-run bloom filters over `(table, row)` keys.
//!
//! A cold lookup probes every live run; the filter is what keeps that
//! from meaning "read a block from every run". Each run carries one
//! filter built over the distinct `(table, row)` prefixes it contains,
//! so a point read skips — without touching the file — every run that
//! never stored a version of the row. Classic double hashing
//! (Kirsch–Mitzenmacher): two independent 64-bit hashes generate the
//! `k` probe positions, `k` derived from the configured bits-per-key.

/// A serializable bloom filter. Immutable once built.
#[derive(Debug, Clone)]
pub(crate) struct Bloom {
    k: u32,
    nbits: u64,
    bits: Vec<u8>,
}

/// FNV-1a 64 with a caller-chosen offset basis, so two independent
/// hash streams come from one pass over the key.
fn fnv64(key: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Final avalanche (splitmix64 tail): FNV alone clusters on short,
    // structured keys like our fixed-width prefixes.
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

impl Bloom {
    /// Build a filter sized for `keys` distinct entries at
    /// `bits_per_key` bits each.
    pub(crate) fn build<'a>(
        keys: impl Iterator<Item = &'a [u8]>,
        key_count: usize,
        bits_per_key: usize,
    ) -> Bloom {
        let bits_per_key = bits_per_key.max(1);
        let nbits = ((key_count.max(1) * bits_per_key) as u64).max(64);
        // Optimal k = ln 2 * bits/key, clamped to something sane.
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        let mut bloom = Bloom {
            k,
            nbits,
            bits: vec![0u8; nbits.div_ceil(8) as usize],
        };
        for key in keys {
            bloom.insert(key);
        }
        bloom
    }

    fn insert(&mut self, key: &[u8]) {
        let h1 = fnv64(key, 0xCBF2_9CE4_8422_2325);
        let h2 = fnv64(key, 0x6C62_272E_07BB_0142) | 1;
        let mut h = h1;
        for _ in 0..self.k {
            let bit = h % self.nbits;
            self.bits[(bit / 8) as usize] |= 1 << (bit % 8);
            h = h.wrapping_add(h2);
        }
    }

    /// `false` means the key is definitely absent; `true` means "maybe".
    pub(crate) fn may_contain(&self, key: &[u8]) -> bool {
        let h1 = fnv64(key, 0xCBF2_9CE4_8422_2325);
        let h2 = fnv64(key, 0x6C62_272E_07BB_0142) | 1;
        let mut h = h1;
        for _ in 0..self.k {
            let bit = h % self.nbits;
            if self.bits[(bit / 8) as usize] & (1 << (bit % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(h2);
        }
        true
    }

    /// Serialize as `[k u32][nbits u64][bit bytes]`, little-endian.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.nbits.to_le_bytes());
        out.extend_from_slice(&self.bits);
    }

    pub(crate) fn decode(data: &[u8]) -> Option<Bloom> {
        if data.len() < 12 {
            return None;
        }
        let k = u32::from_le_bytes(data[0..4].try_into().ok()?);
        let nbits = u64::from_le_bytes(data[4..12].try_into().ok()?);
        let bits = data[12..].to_vec();
        if k == 0 || nbits == 0 || bits.len() as u64 != nbits.div_ceil(8) {
            return None;
        }
        Some(Bloom { k, nbits, bits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(table: u32, row: u64) -> [u8; 12] {
        let mut k = [0u8; 12];
        k[..4].copy_from_slice(&table.to_be_bytes());
        k[4..].copy_from_slice(&row.to_be_bytes());
        k
    }

    #[test]
    fn no_false_negatives() {
        let keys: Vec<[u8; 12]> = (0..1000).map(|i| key(1, i)).collect();
        let bloom = Bloom::build(keys.iter().map(|k| k.as_slice()), keys.len(), 10);
        for k in &keys {
            assert!(bloom.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let keys: Vec<[u8; 12]> = (0..1000).map(|i| key(1, i)).collect();
        let bloom = Bloom::build(keys.iter().map(|k| k.as_slice()), keys.len(), 10);
        let fps = (0..10_000)
            .map(|i| key(2, i))
            .filter(|k| bloom.may_contain(k))
            .count();
        // 10 bits/key targets ~1%; allow generous slack.
        assert!(fps < 500, "false positive rate too high: {fps}/10000");
    }

    #[test]
    fn roundtrips_through_encoding() {
        let keys: Vec<[u8; 12]> = (0..100).map(|i| key(3, i)).collect();
        let bloom = Bloom::build(keys.iter().map(|k| k.as_slice()), keys.len(), 8);
        let mut buf = Vec::new();
        bloom.encode(&mut buf);
        let back = Bloom::decode(&buf).expect("decodes");
        for k in &keys {
            assert!(back.may_contain(k));
        }
        assert!(Bloom::decode(&buf[..5]).is_none());
        assert!(Bloom::decode(&buf[..buf.len() - 1]).is_none());
    }

    #[test]
    fn tiny_filter_still_admits_members() {
        // 1 bit/key aliases heavily but must never reject a member.
        let keys: Vec<[u8; 12]> = (0..64).map(|i| key(9, i)).collect();
        let bloom = Bloom::build(keys.iter().map(|k| k.as_slice()), keys.len(), 1);
        for k in &keys {
            assert!(bloom.may_contain(k));
        }
    }
}
