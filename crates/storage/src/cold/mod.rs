//! Tiered cold storage: demoted versions in immutable sorted runs.
//!
//! RAM stops being the only home for history. When the cold tier is
//! enabled (`Options::cold_storage`), vacuum and checkpoint *demote*
//! versions below the snapshot horizon instead of dropping them: the
//! versions are written to a bloom-filtered SSTable-style run file
//! ([`run`]), the run is made durable, and only then does a manifest
//! swap ([`manifest`]) publish it — after which the in-RAM copies may
//! be pruned. The read path becomes memtable → cold runs: a reader
//! whose snapshot predates the *cold floor* first consults RAM (any
//! RAM version at or below its snapshot is authoritative, tombstones
//! included) and only on a RAM miss probes the runs, newest-eligible
//! version wins, bloom filters skipping runs that never held the row.
//!
//! Crash safety needs no journal: run files are born durable under
//! their final names before the manifest references them, so a power
//! cut mid-demotion leaves at worst an orphan run file, swept on the
//! next open. Everything goes through the [`Vfs`] trait, so the
//! `SimVfs` crash sweep covers run creation, manifest rename, and dir
//! syncs exactly as it covers the WAL.

mod bloom;
mod manifest;
mod run;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard, RwLock};

use crate::error::Result;
use crate::row::RowId;
use crate::schema::TableId;
use crate::table::Ts;
use crate::vfs::Vfs;
use crate::wal::WalOp;

use manifest::{Manifest, RunEntry};
use run::{encode_key, RunReader};

/// Tuning knobs for the cold tier. `Options::cold_storage: None`
/// disables it entirely (byte-identical to the pre-cold engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColdOptions {
    /// Soft cap on in-RAM versions. When `pruneable_estimate` would let
    /// vacuum shed versions and the total RAM-resident version count
    /// exceeds this budget, the maintenance thread triggers a demoting
    /// vacuum.
    pub memtable_version_budget: usize,
    /// Target uncompressed size of one run data block.
    pub block_bytes: usize,
    /// Bloom filter budget per distinct `(table, row)` key.
    pub bloom_bits_per_key: usize,
    /// Compact when at least this many runs are live.
    pub compact_min_runs: usize,
}

impl Default for ColdOptions {
    fn default() -> ColdOptions {
        ColdOptions {
            memtable_version_budget: 4096,
            block_bytes: 4096,
            bloom_bits_per_key: 10,
            compact_min_runs: 4,
        }
    }
}

/// Snapshot of the cold tier's counters (mirrored into `Stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ColdCounterSnapshot {
    pub runs: usize,
    pub cold_versions: u64,
    pub demotions: u64,
    pub versions_demoted: u64,
    pub reads: u64,
    pub bloom_skips: u64,
    pub bloom_false_positives: u64,
    pub compactions: u64,
}

#[derive(Debug, Default)]
struct ColdCounters {
    demotions: AtomicU64,
    versions_demoted: AtomicU64,
    reads: AtomicU64,
    bloom_skips: AtomicU64,
    bloom_false_positives: AtomicU64,
    compactions: AtomicU64,
}

#[derive(Debug)]
struct ColdState {
    runs: Vec<Arc<RunReader>>,
    next_seq: u64,
}

/// The cold tier attached to one on-disk database.
#[derive(Debug)]
pub(crate) struct ColdStore {
    vfs: Arc<dyn Vfs>,
    base: PathBuf,
    opts: ColdOptions,
    state: RwLock<ColdState>,
    /// Serializes demotion, compaction, and retention changes — the
    /// operations that rewrite the manifest. Readers never take it.
    demote_lock: Mutex<()>,
    /// Highest timestamp any demoted version carries. Reads at or
    /// below it may need the cold path; reads above it are fully
    /// RAM-served. Raised only after the manifest swap that makes the
    /// corresponding run durable, and always before the RAM prune.
    floor: AtomicU64,
    /// Lineage retention floor (see [`Manifest::retention_floor`]).
    retention: AtomicU64,
    counters: ColdCounters,
}

fn sibling(base: &Path, suffix: &str) -> PathBuf {
    let mut s = base.as_os_str().to_os_string();
    s.push(suffix);
    PathBuf::from(s)
}

impl ColdStore {
    fn manifest_path(&self) -> PathBuf {
        sibling(&self.base, ".cold.manifest")
    }

    fn manifest_tmp(&self) -> PathBuf {
        sibling(&self.base, ".cold.manifest.tmp")
    }

    fn run_path(&self, seq: u64) -> PathBuf {
        sibling(&self.base, &format!(".cold.run{seq}"))
    }

    /// Open (or create) the cold tier for the database at `base` (the
    /// WAL base path). Recovers from any crash mid-demotion: stale
    /// manifest tmp files and orphan runs — durable files the durable
    /// manifest never adopted — are deleted.
    pub(crate) fn open(vfs: Arc<dyn Vfs>, base: &Path, opts: ColdOptions) -> Result<ColdStore> {
        let store = ColdStore {
            vfs,
            base: base.to_path_buf(),
            opts,
            state: RwLock::new(ColdState {
                runs: Vec::new(),
                next_seq: 0,
            }),
            demote_lock: Mutex::new(()),
            floor: AtomicU64::new(0),
            retention: AtomicU64::new(0),
            counters: ColdCounters::default(),
        };
        let m = Manifest::load(&store.vfs, &store.manifest_path())?;

        let tmp = store.manifest_tmp();
        let mut swept = store.vfs.exists(&tmp);
        if swept {
            store.vfs.remove(&tmp)?;
        }
        let live: std::collections::BTreeSet<u64> = m.runs.iter().map(|r| r.seq).collect();
        for seq in 0..m.next_seq {
            let p = store.run_path(seq);
            if !live.contains(&seq) && store.vfs.exists(&p) {
                store.vfs.remove(&p)?;
                swept = true;
            }
        }
        if swept {
            store.vfs.sync_dir(&store.manifest_path())?;
        }

        let mut runs = Vec::with_capacity(m.runs.len());
        for r in &m.runs {
            runs.push(Arc::new(RunReader::open(
                store.vfs.clone(),
                store.run_path(r.seq),
                r.seq,
            )?));
        }
        {
            let mut st = store.state.write();
            st.runs = runs;
            st.next_seq = m.next_seq;
        }
        store.floor.store(m.cold_floor, Ordering::SeqCst);
        store.retention.store(m.retention_floor, Ordering::SeqCst);
        Ok(store)
    }

    /// Hold this across collect-demote-prune so demotion, checkpoint
    /// history capture, and compaction serialize with each other.
    pub(crate) fn exclusive(&self) -> MutexGuard<'_, ()> {
        self.demote_lock.lock()
    }

    pub(crate) fn floor(&self) -> Ts {
        self.floor.load(Ordering::SeqCst)
    }

    pub(crate) fn retention_floor(&self) -> Ts {
        self.retention.load(Ordering::SeqCst)
    }

    pub(crate) fn memtable_budget(&self) -> usize {
        self.opts.memtable_version_budget
    }

    pub(crate) fn run_count(&self) -> usize {
        self.state.read().runs.len()
    }

    /// Total entries across live runs (test observability).
    #[cfg(test)]
    pub(crate) fn version_count(&self) -> u64 {
        self.state.read().runs.iter().map(|r| r.entry_count).sum()
    }

    pub(crate) fn counters(&self) -> ColdCounterSnapshot {
        let st = self.state.read();
        ColdCounterSnapshot {
            runs: st.runs.len(),
            cold_versions: st.runs.iter().map(|r| r.entry_count).sum(),
            demotions: self.counters.demotions.load(Ordering::Relaxed),
            versions_demoted: self.counters.versions_demoted.load(Ordering::Relaxed),
            reads: self.counters.reads.load(Ordering::Relaxed),
            bloom_skips: self.counters.bloom_skips.load(Ordering::Relaxed),
            bloom_false_positives: self.counters.bloom_false_positives.load(Ordering::Relaxed),
            compactions: self.counters.compactions.load(Ordering::Relaxed),
        }
    }

    fn manifest_snapshot(&self, st: &ColdState) -> Manifest {
        Manifest {
            next_seq: st.next_seq,
            cold_floor: self.floor(),
            retention_floor: self.retention_floor(),
            runs: st
                .runs
                .iter()
                .map(|r| RunEntry {
                    seq: r.seq,
                    entries: r.entry_count,
                    min_ts: r.min_ts,
                    max_ts: r.max_ts,
                })
                .collect(),
        }
    }

    /// Raise the lineage retention floor (monotonic; lowering is a
    /// no-op). History at or below the floor becomes compactable.
    /// Caller holds [`ColdStore::exclusive`].
    pub(crate) fn set_retention_floor(&self, ts: Ts) -> Result<()> {
        if ts <= self.retention_floor() {
            return Ok(());
        }
        self.retention.store(ts, Ordering::SeqCst);
        let m = self.manifest_snapshot(&self.state.read());
        m.store(&self.vfs, &self.manifest_path(), &self.manifest_tmp())
    }

    /// Write `entries` as a new run and publish it with
    /// `cold_floor = max(current, new_floor)`. On success the versions
    /// are durably cold and the caller may prune their RAM copies; on
    /// error nothing is published and the caller must keep them.
    /// Caller holds [`ColdStore::exclusive`].
    pub(crate) fn demote(
        &self,
        mut entries: Vec<(TableId, RowId, Ts, WalOp)>,
        new_floor: Ts,
    ) -> Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        entries.sort_unstable_by_key(|(t, r, ts, _)| encode_key(*t, *r, *ts));
        entries.dedup_by_key(|(t, r, ts, _)| encode_key(*t, *r, *ts));

        let seq = self.state.read().next_seq;
        let path = self.run_path(seq);
        let n = entries.len() as u64;
        run::write_run(
            &self.vfs,
            &path,
            &entries,
            self.opts.block_bytes,
            self.opts.bloom_bits_per_key,
        )?;
        self.vfs.sync_dir(&path)?;
        let reader = Arc::new(RunReader::open(self.vfs.clone(), path, seq)?);

        // Publish: manifest first (durable), then in-memory state, then
        // the floor. A crash before the swap leaves an orphan run file.
        let mut m = self.manifest_snapshot(&self.state.read());
        m.next_seq = seq + 1;
        m.cold_floor = m.cold_floor.max(new_floor);
        m.runs.push(RunEntry {
            seq,
            entries: reader.entry_count,
            min_ts: reader.min_ts,
            max_ts: reader.max_ts,
        });
        m.store(&self.vfs, &self.manifest_path(), &self.manifest_tmp())?;
        {
            let mut st = self.state.write();
            st.runs.push(reader);
            st.next_seq = seq + 1;
        }
        self.floor.fetch_max(new_floor, Ordering::SeqCst);
        self.counters.demotions.fetch_add(1, Ordering::Relaxed);
        self.counters
            .versions_demoted
            .fetch_add(n, Ordering::Relaxed);
        Ok(())
    }

    /// Newest cold version of `(table, row)` with `commit_ts <= ts`.
    pub(crate) fn lookup(&self, table: TableId, row: RowId, ts: Ts) -> Result<Option<(Ts, WalOp)>> {
        let runs: Vec<Arc<RunReader>> = self.state.read().runs.clone();
        let mut best: Option<(Ts, WalOp)> = None;
        for r in &runs {
            if r.min_ts > ts {
                // Every version in this run postdates the snapshot.
                continue;
            }
            if !r.may_contain(table, row) {
                self.counters.bloom_skips.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            match r.lookup(table, row, ts)? {
                Some((found, op)) => {
                    if best.as_ref().is_none_or(|(b, _)| found > *b) {
                        best = Some((found, op));
                    }
                }
                None => {
                    // The bloom filter passed but the probe missed.
                    // (With `ts >= max_ts` this is a true false
                    // positive; otherwise the row may simply have only
                    // newer versions here.)
                    self.counters
                        .bloom_false_positives
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if best.is_some() {
            self.counters.reads.fetch_add(1, Ordering::Relaxed);
        }
        Ok(best)
    }

    /// Newest cold version per row of `table` with `commit_ts <= ts`,
    /// tombstones included (the caller merges against RAM and drops
    /// them last).
    pub(crate) fn scan_table(
        &self,
        table: TableId,
        ts: Ts,
    ) -> Result<BTreeMap<RowId, (Ts, WalOp)>> {
        let runs: Vec<Arc<RunReader>> = self.state.read().runs.clone();
        let mut out: BTreeMap<RowId, (Ts, WalOp)> = BTreeMap::new();
        for r in &runs {
            if r.min_ts > ts {
                continue;
            }
            r.for_each_in_table(table, |row, vts, op| {
                if vts <= ts {
                    match out.get(&row) {
                        Some((best, _)) if *best >= vts => {}
                        _ => {
                            out.insert(row, (vts, op));
                        }
                    }
                }
            })?;
        }
        Ok(out)
    }

    /// Compact when enough runs have accumulated. Returns whether a
    /// compaction ran.
    pub(crate) fn compact_if_needed(&self) -> Result<bool> {
        if self.run_count() < self.opts.compact_min_runs.max(2) {
            return Ok(false);
        }
        self.compact()?;
        Ok(true)
    }

    /// Merge every live run into one, dropping versions the lineage
    /// retention floor supersedes. Serialized behind the demote lock.
    pub(crate) fn compact(&self) -> Result<()> {
        let _g = self.exclusive();
        let (old_runs, seq) = {
            let st = self.state.read();
            (st.runs.clone(), st.next_seq)
        };
        if old_runs.is_empty() {
            return Ok(());
        }
        let floor = self.retention_floor();

        // Full-key merge: identical (table,row,ts) from overlapping
        // runs (possible after a crash between run publish and WAL
        // rewrite replays a checkpoint demotion) collapse to one entry
        // with identical bytes.
        let mut merged: BTreeMap<[u8; run::KEY_LEN], (TableId, RowId, Ts, WalOp)> = BTreeMap::new();
        for r in &old_runs {
            r.for_each(|t, row, ts, op| {
                merged.insert(encode_key(t, row, ts), (t, row, ts, op));
            })?;
        }

        // Retention pruning, per row: keep everything above the floor
        // plus the newest version at/below it — unless that newest is a
        // tombstone with nothing above, in which case the whole row
        // vanishes from cold (reads at/above the floor then see
        // "absent", exactly what the tombstone said).
        let mut entries: Vec<(TableId, RowId, Ts, WalOp)> = Vec::with_capacity(merged.len());
        let mut i = 0usize;
        let all: Vec<(TableId, RowId, Ts, WalOp)> = merged.into_values().collect();
        while i < all.len() {
            let (t, row) = (all[i].0, all[i].1);
            let mut j = i;
            while j < all.len() && all[j].0 == t && all[j].1 == row {
                j += 1;
            }
            let group = &all[i..j];
            let above = group.iter().position(|(_, _, ts, _)| *ts > floor);
            let newest_le = match above {
                Some(0) => None,
                Some(k) => Some(k - 1),
                None => Some(group.len() - 1),
            };
            let drop_row =
                above.is_none() && newest_le.is_some_and(|k| matches!(group[k].3, WalOp::Delete));
            if !drop_row {
                if let Some(k) = newest_le {
                    entries.push(group[k].clone());
                }
                if let Some(k) = above {
                    entries.extend_from_slice(&group[k..]);
                }
            }
            i = j;
        }

        let mut m = self.manifest_snapshot(&self.state.read());
        m.runs.clear();
        let new_reader = if entries.is_empty() {
            m.next_seq = seq;
            None
        } else {
            let path = self.run_path(seq);
            run::write_run(
                &self.vfs,
                &path,
                &entries,
                self.opts.block_bytes,
                self.opts.bloom_bits_per_key,
            )?;
            self.vfs.sync_dir(&path)?;
            let reader = Arc::new(RunReader::open(self.vfs.clone(), path, seq)?);
            m.next_seq = seq + 1;
            m.runs.push(RunEntry {
                seq,
                entries: reader.entry_count,
                min_ts: reader.min_ts,
                max_ts: reader.max_ts,
            });
            Some(reader)
        };
        m.store(&self.vfs, &self.manifest_path(), &self.manifest_tmp())?;
        {
            let mut st = self.state.write();
            st.runs = new_reader.into_iter().collect();
            st.next_seq = m.next_seq;
        }
        // Old run files are garbage the moment the manifest swap lands;
        // a crash mid-delete just leaves orphans for the next open.
        for r in &old_runs {
            self.vfs.remove(r.path())?;
        }
        self.vfs.sync_dir(&self.manifest_path())?;
        self.counters.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::value::Value;
    use crate::vfs::SimVfs;

    fn put(i: i64) -> WalOp {
        WalOp::Put(Row::new(vec![Value::Int(i)]).into_shared())
    }

    fn store() -> ColdStore {
        let vfs: Arc<dyn Vfs> = Arc::new(SimVfs::new(11));
        ColdStore::open(vfs, Path::new("db"), ColdOptions::default()).unwrap()
    }

    fn reopen(store: &ColdStore) -> ColdStore {
        ColdStore::open(store.vfs.clone(), &store.base, store.opts.clone()).unwrap()
    }

    #[test]
    fn demote_publish_reopen() {
        let s = store();
        {
            let _g = s.exclusive();
            s.demote(
                vec![
                    (TableId(1), RowId(1), 5, put(10)),
                    (TableId(1), RowId(1), 8, put(20)),
                    (TableId(1), RowId(2), 6, WalOp::Delete),
                ],
                8,
            )
            .unwrap();
        }
        assert_eq!(s.floor(), 8);
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.version_count(), 3);

        let (ts, op) = s.lookup(TableId(1), RowId(1), 7).unwrap().unwrap();
        assert_eq!(ts, 5);
        assert!(matches!(op, WalOp::Put(_)));
        assert!(matches!(
            s.lookup(TableId(1), RowId(2), 100).unwrap(),
            Some((6, WalOp::Delete))
        ));

        let s2 = reopen(&s);
        assert_eq!(s2.floor(), 8);
        assert_eq!(s2.version_count(), 3);
        let (ts, _) = s2.lookup(TableId(1), RowId(1), 100).unwrap().unwrap();
        assert_eq!(ts, 8);
    }

    #[test]
    fn newest_version_wins_across_runs() {
        let s = store();
        {
            let _g = s.exclusive();
            s.demote(vec![(TableId(1), RowId(1), 5, put(1))], 5)
                .unwrap();
            s.demote(vec![(TableId(1), RowId(1), 9, put(2))], 9)
                .unwrap();
        }
        let (ts, op) = s.lookup(TableId(1), RowId(1), 100).unwrap().unwrap();
        assert_eq!(ts, 9);
        match op {
            WalOp::Put(r) => assert_eq!(r.values()[0], Value::Int(2)),
            _ => panic!(),
        }
        let snap = s.counters();
        assert!(snap.reads >= 1);
    }

    #[test]
    fn compaction_merges_and_prunes_below_retention() {
        let s = store();
        {
            let _g = s.exclusive();
            s.demote(
                vec![
                    (TableId(1), RowId(1), 2, put(1)),
                    (TableId(1), RowId(1), 4, put(2)),
                ],
                4,
            )
            .unwrap();
            s.demote(vec![(TableId(1), RowId(1), 9, put(3))], 9)
                .unwrap();
            // Row 2: delete-terminal wholly below the retention floor.
            s.demote(
                vec![
                    (TableId(1), RowId(2), 3, put(7)),
                    (TableId(1), RowId(2), 5, WalOp::Delete),
                ],
                9,
            )
            .unwrap();
            s.set_retention_floor(6).unwrap();
        }
        assert_eq!(s.run_count(), 3);
        s.compact().unwrap();
        assert_eq!(s.run_count(), 1);
        // Row 1: ts=2 superseded at floor 6 by ts=4 → dropped; 4 and 9 kept.
        assert_eq!(s.version_count(), 2);
        assert!(s.lookup(TableId(1), RowId(1), 3).unwrap().is_none());
        assert!(matches!(
            s.lookup(TableId(1), RowId(1), 6).unwrap(),
            Some((4, _))
        ));
        assert!(matches!(
            s.lookup(TableId(1), RowId(1), 20).unwrap(),
            Some((9, _))
        ));
        // Row 2 vanished entirely.
        assert!(s.lookup(TableId(1), RowId(2), 20).unwrap().is_none());

        let s2 = reopen(&s);
        assert_eq!(s2.version_count(), 2);
        assert_eq!(s2.retention_floor(), 6);
    }

    #[test]
    fn scan_table_merges_newest_per_row() {
        let s = store();
        {
            let _g = s.exclusive();
            s.demote(
                vec![
                    (TableId(1), RowId(1), 2, put(1)),
                    (TableId(1), RowId(2), 3, put(2)),
                ],
                3,
            )
            .unwrap();
            s.demote(
                vec![
                    (TableId(1), RowId(1), 6, put(10)),
                    (TableId(1), RowId(3), 7, WalOp::Delete),
                ],
                7,
            )
            .unwrap();
        }
        let m = s.scan_table(TableId(1), 6).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[&RowId(1)].0, 6);
        assert_eq!(m[&RowId(2)].0, 3);
        let m = s.scan_table(TableId(1), 2).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[&RowId(1)].0, 2);
    }

    #[test]
    fn orphan_runs_are_swept_on_open() {
        let s = store();
        {
            let _g = s.exclusive();
            s.demote(vec![(TableId(1), RowId(1), 5, put(1))], 5)
                .unwrap();
        }
        // Fake a crash mid-demotion: a durable run file the manifest
        // never adopted (seq 1 < a bumped next_seq is not required —
        // the sweep scans 0..next_seq, so simulate via tmp manifest +
        // an overwrite). Simplest honest case: stale manifest tmp.
        let tmp = s.manifest_tmp();
        let mut f = s.vfs.create(&tmp).unwrap();
        f.write_all(b"garbage").unwrap();
        f.flush().unwrap();
        f.sync_all().unwrap();
        drop(f);
        let s2 = reopen(&s);
        assert!(!s2.vfs.exists(&tmp));
        assert_eq!(s2.version_count(), 1);
    }
}
