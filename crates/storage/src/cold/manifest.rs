//! The cold tier's root pointer: which runs are live, and the two
//! floors that govern them.
//!
//! The manifest is tiny and rewritten whole on every change via the
//! same tmp-write → `sync_all` → rename → `sync_dir` dance the WAL's
//! checkpoint rewrite uses, so a power cut leaves either the old or the
//! new manifest — never a torn one. Run files it does not (yet)
//! reference are orphans; [`super::ColdStore::open`] deletes them on
//! startup, which is what makes "write run durable, then swap manifest"
//! crash-safe without any journal.

use std::path::Path;
use std::sync::Arc;

use crate::error::{Result, StorageError};
use crate::table::Ts;
use crate::util::crc32;
use crate::vfs::Vfs;

const MANIFEST_MAGIC: u64 = 0x544E_4458_4D4E_4653; // "TNDXMNFS"
const MANIFEST_VERSION: u32 = 1;

/// Durable description of one live run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RunEntry {
    pub seq: u64,
    pub entries: u64,
    pub min_ts: Ts,
    pub max_ts: Ts,
}

/// The decoded manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Manifest {
    /// Next run sequence number to allocate. Never reused, so orphan
    /// detection can sweep `0..next_seq`.
    pub next_seq: u64,
    /// Every version with `commit_ts <= cold_floor` that RAM no longer
    /// holds is in a cold run; reads at or below it may need the cold
    /// path.
    pub cold_floor: Ts,
    /// Lineage retention: compaction may drop versions only where a
    /// newer version also at or below this floor supersedes them.
    /// `begin_at` below this floor is refused.
    pub retention_floor: Ts,
    pub runs: Vec<RunEntry>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64 + self.runs.len() * 32);
        b.extend_from_slice(&self.next_seq.to_le_bytes());
        b.extend_from_slice(&self.cold_floor.to_le_bytes());
        b.extend_from_slice(&self.retention_floor.to_le_bytes());
        b.extend_from_slice(&(self.runs.len() as u32).to_le_bytes());
        for r in &self.runs {
            b.extend_from_slice(&r.seq.to_le_bytes());
            b.extend_from_slice(&r.entries.to_le_bytes());
            b.extend_from_slice(&r.min_ts.to_le_bytes());
            b.extend_from_slice(&r.max_ts.to_le_bytes());
        }
        b.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        b.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        let crc = crc32(&b);
        b.extend_from_slice(&crc.to_le_bytes());
        b
    }

    fn decode(data: &[u8]) -> Result<Manifest> {
        let bad = |what: &str| StorageError::Internal(format!("cold manifest: {what}"));
        if data.len() < 28 + 12 + 4 {
            return Err(bad("too short"));
        }
        let (body, crc_bytes) = data.split_at(data.len() - 4);
        let crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != crc {
            return Err(bad("checksum mismatch"));
        }
        let magic = u64::from_le_bytes(body[body.len() - 8..].try_into().unwrap());
        if magic != MANIFEST_MAGIC {
            return Err(bad("bad magic"));
        }
        let version = u32::from_le_bytes(body[body.len() - 12..body.len() - 8].try_into().unwrap());
        if version != MANIFEST_VERSION {
            return Err(bad("unsupported version"));
        }
        let next_seq = u64::from_le_bytes(body[0..8].try_into().unwrap());
        let cold_floor = u64::from_le_bytes(body[8..16].try_into().unwrap());
        let retention_floor = u64::from_le_bytes(body[16..24].try_into().unwrap());
        let n = u32::from_le_bytes(body[24..28].try_into().unwrap()) as usize;
        if body.len() != 28 + n * 32 + 12 {
            return Err(bad("run table length mismatch"));
        }
        let mut runs = Vec::with_capacity(n);
        for i in 0..n {
            let o = 28 + i * 32;
            runs.push(RunEntry {
                seq: u64::from_le_bytes(body[o..o + 8].try_into().unwrap()),
                entries: u64::from_le_bytes(body[o + 8..o + 16].try_into().unwrap()),
                min_ts: u64::from_le_bytes(body[o + 16..o + 24].try_into().unwrap()),
                max_ts: u64::from_le_bytes(body[o + 24..o + 32].try_into().unwrap()),
            });
        }
        Ok(Manifest {
            next_seq,
            cold_floor,
            retention_floor,
            runs,
        })
    }

    /// Load from `path`; a missing file is an empty manifest (the cold
    /// tier starts with no runs).
    pub(crate) fn load(vfs: &Arc<dyn Vfs>, path: &Path) -> Result<Manifest> {
        if !vfs.exists(path) {
            return Ok(Manifest::default());
        }
        Manifest::decode(&vfs.read(path)?)
    }

    /// Atomically replace the manifest at `path`: tmp → durable →
    /// rename → dir sync. On return the new manifest is what any
    /// reopen will see.
    pub(crate) fn store(&self, vfs: &Arc<dyn Vfs>, path: &Path, tmp: &Path) -> Result<()> {
        let mut f = vfs.create(tmp)?;
        f.write_all(&self.encode())?;
        f.flush()?;
        f.sync_all()?;
        drop(f);
        vfs.rename(tmp, path)?;
        vfs.sync_dir(path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::SimVfs;
    use std::path::PathBuf;

    #[test]
    fn roundtrip_and_missing_is_empty() {
        let vfs: Arc<dyn Vfs> = Arc::new(SimVfs::new(7));
        let path = PathBuf::from("cold.manifest");
        let tmp = PathBuf::from("cold.manifest.tmp");
        assert_eq!(Manifest::load(&vfs, &path).unwrap(), Manifest::default());

        let m = Manifest {
            next_seq: 3,
            cold_floor: 42,
            retention_floor: 10,
            runs: vec![
                RunEntry {
                    seq: 0,
                    entries: 100,
                    min_ts: 1,
                    max_ts: 20,
                },
                RunEntry {
                    seq: 2,
                    entries: 55,
                    min_ts: 21,
                    max_ts: 42,
                },
            ],
        };
        m.store(&vfs, &path, &tmp).unwrap();
        assert!(!vfs.exists(&tmp));
        assert_eq!(Manifest::load(&vfs, &path).unwrap(), m);
    }

    #[test]
    fn corruption_is_detected() {
        let vfs: Arc<dyn Vfs> = Arc::new(SimVfs::new(7));
        let path = PathBuf::from("cold.manifest");
        let tmp = PathBuf::from("cold.manifest.tmp");
        Manifest {
            next_seq: 1,
            cold_floor: 5,
            retention_floor: 0,
            runs: vec![],
        }
        .store(&vfs, &path, &tmp)
        .unwrap();
        let mut data = vfs.read(&path).unwrap();
        data[0] ^= 0x01;
        let mut f = vfs.create(&path).unwrap();
        f.write_all(&data).unwrap();
        f.flush().unwrap();
        assert!(Manifest::load(&vfs, &path).is_err());
    }
}
