//! Immutable sorted runs: the on-disk unit of the cold tier.
//!
//! A run is a single file of versions sorted by a fixed 20-byte key —
//! `table (u32 BE) | row (u64 BE) | commit_ts (u64 BE)` — laid out as:
//!
//! ```text
//! [data block]* [index block] [bloom block] [footer]
//! ```
//!
//! Data blocks hold prefix-compressed entries
//! (`[shared u16][unshared u16][vlen u32][key suffix][value]`, value =
//! the WAL op codec, so a cold version round-trips through exactly the
//! bytes a WAL replay would have produced). The index block records
//! `(offset, len, crc, first_key, last_key)` per data block; the bloom
//! block covers the distinct `(table, row)` 12-byte prefixes. The
//! fixed-size footer at EOF locates index and bloom with their own
//! CRCs, so a reader can validate everything it touches.
//!
//! Runs are written once (create → write → flush → sync_all; the caller
//! renames nothing — run files are born under their final name and made
//! durable before the manifest references them) and never modified.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::BytesMut;

use crate::error::{Result, StorageError};
use crate::row::RowId;
use crate::schema::TableId;
use crate::table::Ts;
use crate::util::crc32;
use crate::vfs::Vfs;
use crate::wal::codec::{get_op, put_op};
use crate::wal::WalOp;

use super::bloom::Bloom;

pub(crate) const KEY_LEN: usize = 20;
pub(crate) const PREFIX_LEN: usize = 12;

const FOOTER_LEN: usize = 68;
const RUN_MAGIC: u64 = 0x544E_4458_434F_4C44; // "TNDXCOLD"
const RUN_VERSION: u32 = 1;

/// Full sort key for one version.
pub(crate) fn encode_key(table: TableId, row: RowId, ts: Ts) -> [u8; KEY_LEN] {
    let mut k = [0u8; KEY_LEN];
    k[..4].copy_from_slice(&table.0.to_be_bytes());
    k[4..12].copy_from_slice(&row.0.to_be_bytes());
    k[12..].copy_from_slice(&ts.to_be_bytes());
    k
}

/// Bloom key: just the row identity, shared by all its versions.
pub(crate) fn encode_prefix(table: TableId, row: RowId) -> [u8; PREFIX_LEN] {
    let mut k = [0u8; PREFIX_LEN];
    k[..4].copy_from_slice(&table.0.to_be_bytes());
    k[4..].copy_from_slice(&row.0.to_be_bytes());
    k
}

fn decode_key(k: &[u8; KEY_LEN]) -> (TableId, RowId, Ts) {
    let table = u32::from_be_bytes(k[..4].try_into().unwrap());
    let row = u64::from_be_bytes(k[4..12].try_into().unwrap());
    let ts = u64::from_be_bytes(k[12..].try_into().unwrap());
    (TableId(table), RowId(row), ts)
}

fn corrupt(path: &Path, what: impl std::fmt::Display) -> StorageError {
    StorageError::Internal(format!("cold run {}: {what}", path.display()))
}

/// Write a run from `entries`, which must be sorted ascending by
/// `(table, row, ts)` with no duplicate keys. Returns
/// `(entry_count, min_ts, max_ts)`. The file is durable (data and
/// length) on return; the caller is responsible for `sync_dir`.
pub(crate) fn write_run(
    vfs: &Arc<dyn Vfs>,
    path: &Path,
    entries: &[(TableId, RowId, Ts, WalOp)],
    block_bytes: usize,
    bloom_bits_per_key: usize,
) -> Result<(u64, Ts, Ts)> {
    debug_assert!(
        entries
            .windows(2)
            .all(|w| encode_key(w[0].0, w[0].1, w[0].2) < encode_key(w[1].0, w[1].1, w[1].2)),
        "run entries must be sorted and unique"
    );
    let block_bytes = block_bytes.max(128);

    let mut file_buf: Vec<u8> = Vec::new();
    let mut index: Vec<IndexEntry> = Vec::new();
    let mut block: Vec<u8> = Vec::new();
    let mut block_first: Option<[u8; KEY_LEN]> = None;
    let mut prev_key: Option<[u8; KEY_LEN]> = None;
    let mut prefixes: Vec<[u8; PREFIX_LEN]> = Vec::new();
    let (mut min_ts, mut max_ts) = (u64::MAX, 0u64);

    let flush_block = |file_buf: &mut Vec<u8>,
                       block: &mut Vec<u8>,
                       first: [u8; KEY_LEN],
                       last: [u8; KEY_LEN],
                       index: &mut Vec<IndexEntry>| {
        index.push(IndexEntry {
            off: file_buf.len() as u64,
            len: block.len() as u32,
            crc: crc32(block),
            first_key: first,
            last_key: last,
        });
        file_buf.extend_from_slice(block);
        block.clear();
    };

    for (table, row, ts, op) in entries {
        let key = encode_key(*table, *row, *ts);
        min_ts = min_ts.min(*ts);
        max_ts = max_ts.max(*ts);
        let prefix = encode_prefix(*table, *row);
        if prefixes.last() != Some(&prefix) {
            prefixes.push(prefix);
        }

        let shared = match (&prev_key, block.is_empty()) {
            // Restart compression at every block boundary so a block
            // decodes standalone.
            (_, true) => 0,
            (Some(p), false) => key.iter().zip(p.iter()).take_while(|(a, b)| a == b).count(),
            (None, false) => 0,
        };
        let mut val = BytesMut::new();
        put_op(&mut val, op);
        block.extend_from_slice(&(shared as u16).to_le_bytes());
        block.extend_from_slice(&((KEY_LEN - shared) as u16).to_le_bytes());
        block.extend_from_slice(&(val.len() as u32).to_le_bytes());
        block.extend_from_slice(&key[shared..]);
        block.extend_from_slice(&val);
        if block_first.is_none() {
            block_first = Some(key);
        }
        prev_key = Some(key);

        if block.len() >= block_bytes {
            flush_block(
                &mut file_buf,
                &mut block,
                block_first.take().expect("non-empty block has first key"),
                key,
                &mut index,
            );
        }
    }
    if let (false, Some(first), Some(last)) = (block.is_empty(), block_first, prev_key) {
        flush_block(&mut file_buf, &mut block, first, last, &mut index);
    }

    // Index block.
    let mut index_buf: Vec<u8> = Vec::new();
    for e in &index {
        e.encode(&mut index_buf);
    }
    let index_off = file_buf.len() as u64;
    let index_crc = crc32(&index_buf);
    file_buf.extend_from_slice(&index_buf);

    // Bloom block.
    let bloom = Bloom::build(
        prefixes.iter().map(|p| p.as_slice()),
        prefixes.len(),
        bloom_bits_per_key,
    );
    let mut bloom_buf: Vec<u8> = Vec::new();
    bloom.encode(&mut bloom_buf);
    let bloom_off = file_buf.len() as u64;
    let bloom_crc = crc32(&bloom_buf);
    file_buf.extend_from_slice(&bloom_buf);

    // Footer.
    file_buf.extend_from_slice(&index_off.to_le_bytes());
    file_buf.extend_from_slice(&(index_buf.len() as u32).to_le_bytes());
    file_buf.extend_from_slice(&index_crc.to_le_bytes());
    file_buf.extend_from_slice(&bloom_off.to_le_bytes());
    file_buf.extend_from_slice(&(bloom_buf.len() as u32).to_le_bytes());
    file_buf.extend_from_slice(&bloom_crc.to_le_bytes());
    file_buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    file_buf.extend_from_slice(&min_ts.to_le_bytes());
    file_buf.extend_from_slice(&max_ts.to_le_bytes());
    file_buf.extend_from_slice(&RUN_VERSION.to_le_bytes());
    file_buf.extend_from_slice(&RUN_MAGIC.to_le_bytes());

    let mut f = vfs.create(path)?;
    f.write_all(&file_buf)?;
    f.flush()?;
    // `sync_all`, not `sync_data`: the file is brand new, so its length
    // is metadata that must survive the cut too.
    f.sync_all()?;
    Ok((entries.len() as u64, min_ts, max_ts))
}

#[derive(Debug, Clone)]
struct IndexEntry {
    off: u64,
    len: u32,
    crc: u32,
    first_key: [u8; KEY_LEN],
    last_key: [u8; KEY_LEN],
}

const INDEX_ENTRY_LEN: usize = 8 + 4 + 4 + KEY_LEN + KEY_LEN;

impl IndexEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.off.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.crc.to_le_bytes());
        out.extend_from_slice(&self.first_key);
        out.extend_from_slice(&self.last_key);
    }

    fn decode(data: &[u8]) -> Option<IndexEntry> {
        if data.len() != INDEX_ENTRY_LEN {
            return None;
        }
        Some(IndexEntry {
            off: u64::from_le_bytes(data[0..8].try_into().ok()?),
            len: u32::from_le_bytes(data[8..12].try_into().ok()?),
            crc: u32::from_le_bytes(data[12..16].try_into().ok()?),
            first_key: data[16..36].try_into().ok()?,
            last_key: data[36..56].try_into().ok()?,
        })
    }
}

/// An open run: footer, index, and bloom resident; data blocks fetched
/// (and CRC-checked) on demand.
#[derive(Debug)]
pub(crate) struct RunReader {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    pub(crate) seq: u64,
    index: Vec<IndexEntry>,
    bloom: Bloom,
    pub(crate) entry_count: u64,
    pub(crate) min_ts: Ts,
    pub(crate) max_ts: Ts,
}

impl RunReader {
    pub(crate) fn open(vfs: Arc<dyn Vfs>, path: PathBuf, seq: u64) -> Result<RunReader> {
        let size = vfs.file_len(&path)?;
        if (size as usize) < FOOTER_LEN {
            return Err(corrupt(&path, format!("file too short ({size} bytes)")));
        }
        let foot = vfs.read_range(&path, size - FOOTER_LEN as u64, FOOTER_LEN)?;
        let magic = u64::from_le_bytes(foot[60..68].try_into().unwrap());
        if magic != RUN_MAGIC {
            return Err(corrupt(&path, "bad magic"));
        }
        let version = u32::from_le_bytes(foot[56..60].try_into().unwrap());
        if version != RUN_VERSION {
            return Err(corrupt(&path, format!("unsupported version {version}")));
        }
        let index_off = u64::from_le_bytes(foot[0..8].try_into().unwrap());
        let index_len = u32::from_le_bytes(foot[8..12].try_into().unwrap()) as usize;
        let index_crc = u32::from_le_bytes(foot[12..16].try_into().unwrap());
        let bloom_off = u64::from_le_bytes(foot[16..24].try_into().unwrap());
        let bloom_len = u32::from_le_bytes(foot[24..28].try_into().unwrap()) as usize;
        let bloom_crc = u32::from_le_bytes(foot[28..32].try_into().unwrap());
        let entry_count = u64::from_le_bytes(foot[32..40].try_into().unwrap());
        let min_ts = u64::from_le_bytes(foot[40..48].try_into().unwrap());
        let max_ts = u64::from_le_bytes(foot[48..56].try_into().unwrap());

        let index_buf = vfs.read_range(&path, index_off, index_len)?;
        if crc32(&index_buf) != index_crc {
            return Err(corrupt(&path, "index checksum mismatch"));
        }
        if !index_len.is_multiple_of(INDEX_ENTRY_LEN) {
            return Err(corrupt(&path, "index length not a whole entry count"));
        }
        let index = index_buf
            .chunks(INDEX_ENTRY_LEN)
            .map(IndexEntry::decode)
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| corrupt(&path, "index entry decode"))?;

        let bloom_buf = vfs.read_range(&path, bloom_off, bloom_len)?;
        if crc32(&bloom_buf) != bloom_crc {
            return Err(corrupt(&path, "bloom checksum mismatch"));
        }
        let bloom = Bloom::decode(&bloom_buf).ok_or_else(|| corrupt(&path, "bloom decode"))?;

        Ok(RunReader {
            vfs,
            path,
            seq,
            index,
            bloom,
            entry_count,
            min_ts,
            max_ts,
        })
    }

    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    /// Bloom gate: `false` means no version of `(table, row)` is here.
    pub(crate) fn may_contain(&self, table: TableId, row: RowId) -> bool {
        self.bloom.may_contain(&encode_prefix(table, row))
    }

    fn load_block(&self, e: &IndexEntry) -> Result<Vec<u8>> {
        let block = self.vfs.read_range(&self.path, e.off, e.len as usize)?;
        if crc32(&block) != e.crc {
            return Err(corrupt(&self.path, format!("block @{} checksum", e.off)));
        }
        Ok(block)
    }

    /// Decode every `(key, op)` entry of one block.
    fn decode_block(&self, block: &[u8]) -> Result<Vec<([u8; KEY_LEN], WalOp)>> {
        let mut out = Vec::new();
        let mut key = [0u8; KEY_LEN];
        let mut buf = block;
        while !buf.is_empty() {
            let (shared, unshared, vlen, rest) = decode_entry_header(&self.path, buf)?;
            key[shared..shared + unshared].copy_from_slice(&rest[..unshared]);
            let mut vbuf = &rest[unshared..unshared + vlen];
            let op = get_op(&mut vbuf)?;
            out.push((key, op));
            buf = &rest[unshared + vlen..];
        }
        Ok(out)
    }

    /// Newest version of `(table, row)` with `commit_ts <= ts`, if this
    /// run holds one. Does NOT consult the bloom filter — callers gate
    /// on [`RunReader::may_contain`] first so they can count skips.
    pub(crate) fn lookup(&self, table: TableId, row: RowId, ts: Ts) -> Result<Option<(Ts, WalOp)>> {
        let target = encode_key(table, row, ts);
        // Last block whose first key <= target; earlier blocks only
        // hold smaller keys, later blocks only larger ones.
        let slot = match self.index.partition_point(|e| e.first_key <= target) {
            0 => return Ok(None),
            n => n - 1,
        };
        let e = &self.index[slot];
        if e.last_key[..PREFIX_LEN] < target[..PREFIX_LEN] {
            // The whole block sorts before the row: its predecessor
            // cannot be a version of ours.
            return Ok(None);
        }
        let block = self.load_block(e)?;

        // Scan for the greatest key <= target, skipping value decode
        // until we know the winner.
        let mut key = [0u8; KEY_LEN];
        let mut best: Option<([u8; KEY_LEN], usize, usize)> = None; // (key, value off, len)
        let mut buf: &[u8] = &block;
        let mut pos = 0usize;
        while !buf.is_empty() {
            let (shared, unshared, vlen, rest) = decode_entry_header(&self.path, buf)?;
            key[shared..shared + unshared].copy_from_slice(&rest[..unshared]);
            if key > target {
                break;
            }
            let header = 2 + 2 + 4;
            best = Some((key, pos + header + unshared, vlen));
            let consumed = header + unshared + vlen;
            pos += consumed;
            buf = &rest[unshared + vlen..];
        }
        match best {
            Some((k, voff, vlen)) if k[..PREFIX_LEN] == target[..PREFIX_LEN] => {
                let (_, _, found_ts) = decode_key(&k);
                let mut vbuf = &block[voff..voff + vlen];
                Ok(Some((found_ts, get_op(&mut vbuf)?)))
            }
            _ => Ok(None),
        }
    }

    /// Visit every entry in key order. Used by compaction and
    /// whole-table scans.
    pub(crate) fn for_each(&self, mut f: impl FnMut(TableId, RowId, Ts, WalOp)) -> Result<()> {
        for e in &self.index {
            let block = self.load_block(e)?;
            for (key, op) in self.decode_block(&block)? {
                let (table, row, ts) = decode_key(&key);
                f(table, row, ts, op);
            }
        }
        Ok(())
    }

    /// Visit every entry of one table, skipping blocks that cannot
    /// contain it.
    pub(crate) fn for_each_in_table(
        &self,
        table: TableId,
        mut f: impl FnMut(RowId, Ts, WalOp),
    ) -> Result<()> {
        let tb = table.0.to_be_bytes();
        for e in &self.index {
            if e.last_key[..4] < tb[..] || e.first_key[..4] > tb[..] {
                continue;
            }
            let block = self.load_block(e)?;
            for (key, op) in self.decode_block(&block)? {
                let (t, row, ts) = decode_key(&key);
                if t == table {
                    f(row, ts, op);
                }
            }
        }
        Ok(())
    }
}

/// Parse one entry header; returns `(shared, unshared, vlen, rest)`
/// where `rest` starts at the key suffix.
fn decode_entry_header<'a>(path: &Path, buf: &'a [u8]) -> Result<(usize, usize, usize, &'a [u8])> {
    if buf.len() < 8 {
        return Err(corrupt(path, "truncated entry header"));
    }
    let shared = u16::from_le_bytes(buf[0..2].try_into().unwrap()) as usize;
    let unshared = u16::from_le_bytes(buf[2..4].try_into().unwrap()) as usize;
    let vlen = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
    if shared + unshared != KEY_LEN || buf.len() < 8 + unshared + vlen {
        return Err(corrupt(path, "malformed entry"));
    }
    Ok((shared, unshared, vlen, &buf[8..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::value::Value;

    fn put(i: i64) -> WalOp {
        WalOp::Put(Row::new(vec![Value::Int(i), Value::Text(format!("v{i}"))]).into_shared())
    }

    fn sample_entries() -> Vec<(TableId, RowId, Ts, WalOp)> {
        let mut entries = Vec::new();
        for row in 0..50u64 {
            for ts in 1..=4u64 {
                entries.push((
                    TableId(1),
                    RowId(row),
                    ts * 10,
                    put((row * 100 + ts) as i64),
                ));
            }
        }
        entries.push((TableId(2), RowId(7), 15, WalOp::Delete));
        entries.push((TableId(2), RowId(7), 25, put(999)));
        entries
    }

    fn write_sample(path: &std::path::Path) -> Arc<dyn Vfs> {
        let vfs: Arc<dyn Vfs> = Arc::new(crate::vfs::SimVfs::new(0));
        let entries = sample_entries();
        let (n, min_ts, max_ts) = write_run(&vfs, path, &entries, 256, 10).unwrap();
        assert_eq!(n, entries.len() as u64);
        assert_eq!(min_ts, 10);
        assert_eq!(max_ts, 40);
        vfs
    }

    #[test]
    fn roundtrips_all_entries_in_order() {
        let path = PathBuf::from("r.run");
        let vfs = write_sample(&path);
        let r = RunReader::open(vfs, path, 0).unwrap();
        assert!(r.index.len() > 1, "sample should span multiple blocks");
        let mut seen = Vec::new();
        r.for_each(|t, row, ts, op| seen.push((t, row, ts, op)))
            .unwrap();
        let expect = sample_entries();
        assert_eq!(seen.len(), expect.len());
        for (a, b) in seen.iter().zip(&expect) {
            assert_eq!((a.0, a.1, a.2), (b.0, b.1, b.2));
            match (&a.3, &b.3) {
                (WalOp::Put(x), WalOp::Put(y)) => assert_eq!(x.values(), y.values()),
                (WalOp::Delete, WalOp::Delete) => {}
                _ => panic!("op mismatch"),
            }
        }
    }

    #[test]
    fn lookup_finds_newest_at_or_below_ts() {
        let path = PathBuf::from("r.run");
        let vfs = write_sample(&path);
        let r = RunReader::open(vfs, path, 0).unwrap();
        // Exact hit.
        let (ts, op) = r.lookup(TableId(1), RowId(3), 20).unwrap().unwrap();
        assert_eq!(ts, 20);
        match op {
            WalOp::Put(row) => assert_eq!(row.values()[0], Value::Int(302)),
            _ => panic!("expected put"),
        }
        // Between versions: rounds down.
        let (ts, _) = r.lookup(TableId(1), RowId(3), 35).unwrap().unwrap();
        assert_eq!(ts, 30);
        // Above all versions: newest.
        let (ts, _) = r.lookup(TableId(1), RowId(3), 1_000).unwrap().unwrap();
        assert_eq!(ts, 40);
        // Below all versions: none.
        assert!(r.lookup(TableId(1), RowId(3), 5).unwrap().is_none());
        // Absent row: none (and bloom says so).
        assert!(!r.may_contain(TableId(1), RowId(999)));
        assert!(r.lookup(TableId(1), RowId(999), 100).unwrap().is_none());
        // Tombstone round-trips.
        let (ts, op) = r.lookup(TableId(2), RowId(7), 20).unwrap().unwrap();
        assert_eq!(ts, 15);
        assert!(matches!(op, WalOp::Delete));
    }

    #[test]
    fn table_scan_skips_foreign_tables() {
        let path = PathBuf::from("r.run");
        let vfs = write_sample(&path);
        let r = RunReader::open(vfs, path, 0).unwrap();
        let mut rows = Vec::new();
        r.for_each_in_table(TableId(2), |row, ts, _| rows.push((row, ts)))
            .unwrap();
        assert_eq!(rows, vec![(RowId(7), 15), (RowId(7), 25)]);
    }

    #[test]
    fn corrupt_footer_and_block_are_detected() {
        let path = PathBuf::from("r.run");
        let vfs = write_sample(&path);
        let data = vfs.read(&path).unwrap();

        // Flip a byte in the first data block.
        let mut bad = data.clone();
        bad[10] ^= 0xFF;
        let mut f = vfs.create(&path).unwrap();
        f.write_all(&bad).unwrap();
        f.flush().unwrap();
        let r = RunReader::open(vfs.clone(), path.clone(), 0).unwrap();
        assert!(r.lookup(TableId(1), RowId(0), 100).is_err());

        // Truncate the footer entirely.
        let mut f = vfs.create(&path).unwrap();
        f.write_all(&data[..FOOTER_LEN / 2]).unwrap();
        f.flush().unwrap();
        assert!(RunReader::open(vfs, path, 0).is_err());
    }
}
