//! Error types for the storage engine.

use std::fmt;

use crate::schema::TableId;
use crate::table::Ts;
use crate::txn::TxnId;
use crate::value::DataType;

/// Convenience alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;

/// All failure modes surfaced by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The named table does not exist in the catalog.
    UnknownTable(String),
    /// The table id does not exist in the catalog.
    UnknownTableId(TableId),
    /// The named column does not exist in the table schema.
    UnknownColumn { table: String, column: String },
    /// The named index does not exist.
    UnknownIndex { table: String, index: String },
    /// A table with this name already exists.
    TableExists(String),
    /// An index with this name already exists on the table.
    IndexExists { table: String, index: String },
    /// A value's type does not match the column's declared type.
    TypeMismatch {
        column: String,
        expected: DataType,
        actual: DataType,
    },
    /// A `NOT NULL` column received a null value.
    NullViolation { table: String, column: String },
    /// A unique index rejected a duplicate key.
    UniqueViolation { table: String, index: String },
    /// Row arity differs from the table schema.
    ArityMismatch { expected: usize, actual: usize },
    /// The row id is not visible (or never existed) in this snapshot.
    RowNotFound { table: String },
    /// Write-write conflict: another transaction committed a newer version
    /// of a row this transaction wrote. First committer wins.
    WriteConflict { table: String, txn: TxnId },
    /// `begin_at` asked for a snapshot older than the vacuum floor:
    /// versions it would need to read may already be pruned.
    SnapshotTooOld { requested: Ts, floor: Ts },
    /// The transaction has already been committed or aborted.
    TxnClosed(TxnId),
    /// The write-ahead log contained a corrupt record.
    WalCorrupt { offset: u64, reason: String },
    /// A WAL flush failed after the transaction's versions were already
    /// published; the log is poisoned and the database rejects further
    /// writes. The committed-in-memory state may not be durable.
    WalUnavailable(String),
    /// Underlying I/O failure (message-only so the error stays `Clone + Eq`).
    Io(String),
    /// Catch-all for invariant violations that indicate a bug.
    Internal(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            StorageError::UnknownTableId(id) => write!(f, "unknown table id {id:?}"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            StorageError::UnknownIndex { table, index } => {
                write!(f, "unknown index `{index}` on table `{table}`")
            }
            StorageError::TableExists(name) => write!(f, "table `{name}` already exists"),
            StorageError::IndexExists { table, index } => {
                write!(f, "index `{index}` already exists on table `{table}`")
            }
            StorageError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch for column `{column}`: expected {expected:?}, got {actual:?}"
            ),
            StorageError::NullViolation { table, column } => {
                write!(f, "null value for NOT NULL column `{table}.{column}`")
            }
            StorageError::UniqueViolation { table, index } => {
                write!(f, "unique violation on index `{index}` of table `{table}`")
            }
            StorageError::ArityMismatch { expected, actual } => {
                write!(f, "row has {actual} values, schema expects {expected}")
            }
            StorageError::RowNotFound { table } => {
                write!(f, "row not found in table `{table}`")
            }
            StorageError::WriteConflict { table, txn } => {
                write!(f, "write-write conflict in table `{table}` (txn {txn:?})")
            }
            StorageError::SnapshotTooOld { requested, floor } => {
                write!(
                    f,
                    "snapshot {requested} is older than the vacuum floor {floor}"
                )
            }
            StorageError::TxnClosed(id) => write!(f, "transaction {id:?} is already closed"),
            StorageError::WalCorrupt { offset, reason } => {
                write!(f, "WAL corrupt at offset {offset}: {reason}")
            }
            StorageError::WalUnavailable(msg) => {
                write!(f, "WAL unavailable (flush failed, log poisoned): {msg}")
            }
            StorageError::Io(msg) => write!(f, "I/O error: {msg}"),
            StorageError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = StorageError::UnknownTable("chars".into());
        assert_eq!(e.to_string(), "unknown table `chars`");
        let e = StorageError::NullViolation {
            table: "docs".into(),
            column: "name".into(),
        };
        assert!(e.to_string().contains("docs.name"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(ref m) if m.contains("boom")));
    }
}
