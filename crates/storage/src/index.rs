//! Ordered secondary indexes.
//!
//! An index maps composite keys (one [`Value`] per indexed column) to the
//! set of row ids that have **some version** carrying that key. Because the
//! engine is multi-versioned, index entries are a *superset* of what any
//! particular snapshot can see: readers always re-fetch the row through the
//! table's visibility check and re-verify the key. Entries for vacuumed
//! versions are dropped when the table is vacuumed.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use crate::row::{Row, RowId};
use crate::schema::IndexDef;
use crate::value::Value;

/// Composite index key: the indexed column values, in index column order.
pub type IndexKey = Vec<Value>;

/// One secondary index over a table.
#[derive(Debug, Clone)]
pub struct IndexStore {
    def: IndexDef,
    map: BTreeMap<IndexKey, BTreeSet<RowId>>,
    /// Number of (key, row) entries, maintained incrementally.
    entries: usize,
}

impl IndexStore {
    pub fn new(def: IndexDef) -> Self {
        IndexStore {
            def,
            map: BTreeMap::new(),
            entries: 0,
        }
    }

    pub fn definition(&self) -> &IndexDef {
        &self.def
    }

    /// Extract this index's key from a full row.
    pub fn key_of(&self, row: &Row) -> IndexKey {
        self.def
            .columns
            .iter()
            .map(|&pos| row.get(pos).cloned().unwrap_or(Value::Null))
            .collect()
    }

    /// Record that `row` has a version with `key`.
    pub fn insert(&mut self, key: IndexKey, row: RowId) {
        if self.map.entry(key).or_default().insert(row) {
            self.entries += 1;
        }
    }

    /// Remove the (key, row) entry, if present.
    pub fn remove(&mut self, key: &IndexKey, row: RowId) {
        if let Some(set) = self.map.get_mut(key) {
            if set.remove(&row) {
                self.entries -= 1;
            }
            if set.is_empty() {
                self.map.remove(key);
            }
        }
    }

    /// Row ids that may carry exactly `key`.
    pub fn lookup(&self, key: &IndexKey) -> impl Iterator<Item = RowId> + '_ {
        self.map.get(key).into_iter().flatten().copied()
    }

    /// Row ids whose key falls within the given bounds (lexicographic over
    /// the composite key).
    pub fn range(
        &self,
        lo: Bound<&IndexKey>,
        hi: Bound<&IndexKey>,
    ) -> impl Iterator<Item = (&IndexKey, RowId)> + '_ {
        self.map
            .range::<IndexKey, _>((lo, hi))
            .flat_map(|(k, set)| set.iter().map(move |r| (k, *r)))
    }

    /// Like [`IndexStore::range`], but iterating from the greatest key
    /// downward (newest-first scans over timestamp-suffixed keys).
    pub fn range_rev(
        &self,
        lo: Bound<&IndexKey>,
        hi: Bound<&IndexKey>,
    ) -> impl Iterator<Item = (&IndexKey, RowId)> + '_ {
        self.map
            .range::<IndexKey, _>((lo, hi))
            .rev()
            .flat_map(|(k, set)| set.iter().rev().map(move |r| (k, *r)))
    }

    /// All row ids sharing the given key *prefix* (first `prefix.len()`
    /// indexed columns equal).
    pub fn prefix(&self, prefix: &[Value]) -> impl Iterator<Item = (&IndexKey, RowId)> + '_ {
        let lo: IndexKey = prefix.to_vec();
        self.map
            .range::<IndexKey, _>((Bound::Included(&lo), Bound::Unbounded))
            .take_while(move |(k, _)| k.starts_with(prefix))
            .flat_map(|(k, set)| set.iter().map(move |r| (k, *r)))
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// Number of (key, row) entries.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Drop everything (used by vacuum rebuild).
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::IndexDef;

    fn idx() -> IndexStore {
        IndexStore::new(IndexDef {
            name: "by_ab".into(),
            columns: vec![0, 1],
            unique: false,
        })
    }

    fn key(a: u64, b: &str) -> IndexKey {
        vec![Value::Id(a), Value::Text(b.into())]
    }

    #[test]
    fn insert_lookup_remove() {
        let mut i = idx();
        i.insert(key(1, "x"), RowId(10));
        i.insert(key(1, "x"), RowId(11));
        i.insert(key(2, "y"), RowId(12));
        assert_eq!(i.entry_count(), 3);
        assert_eq!(i.key_count(), 2);
        let hits: Vec<_> = i.lookup(&key(1, "x")).collect();
        assert_eq!(hits, vec![RowId(10), RowId(11)]);

        // Duplicate insert is idempotent.
        i.insert(key(1, "x"), RowId(10));
        assert_eq!(i.entry_count(), 3);

        i.remove(&key(1, "x"), RowId(10));
        assert_eq!(i.lookup(&key(1, "x")).count(), 1);
        i.remove(&key(1, "x"), RowId(11));
        assert_eq!(i.key_count(), 1);
        // Removing a non-existent entry is a no-op.
        i.remove(&key(9, "z"), RowId(1));
        assert_eq!(i.entry_count(), 1);
    }

    #[test]
    fn key_of_extracts_in_index_order() {
        let i = IndexStore::new(IndexDef {
            name: "rev".into(),
            columns: vec![1, 0],
            unique: false,
        });
        let row = Row::new(vec![Value::Id(7), Value::Text("t".into())]);
        assert_eq!(i.key_of(&row), vec![Value::Text("t".into()), Value::Id(7)]);
    }

    #[test]
    fn range_scans_are_ordered() {
        let mut i = idx();
        for a in 1..=5u64 {
            i.insert(key(a, "k"), RowId(a));
        }
        let lo = key(2, "");
        let hi = key(4, "\u{10FFFF}");
        let got: Vec<u64> = i
            .range(Bound::Included(&lo), Bound::Included(&hi))
            .map(|(_, r)| r.0)
            .collect();
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn reverse_range_scans_descend() {
        let mut i = idx();
        for a in 1..=5u64 {
            i.insert(key(a, "k"), RowId(a));
        }
        let got: Vec<u64> = i
            .range_rev(Bound::Unbounded, Bound::Unbounded)
            .map(|(_, r)| r.0)
            .collect();
        assert_eq!(got, vec![5, 4, 3, 2, 1]);
        let hi = key(3, "\u{10FFFF}");
        let got: Vec<u64> = i
            .range_rev(Bound::Unbounded, Bound::Included(&hi))
            .map(|(_, r)| r.0)
            .collect();
        assert_eq!(got, vec![3, 2, 1]);
    }

    #[test]
    fn prefix_scan_matches_first_columns() {
        let mut i = idx();
        i.insert(key(1, "a"), RowId(1));
        i.insert(key(1, "b"), RowId(2));
        i.insert(key(2, "a"), RowId(3));
        let got: Vec<u64> = i.prefix(&[Value::Id(1)]).map(|(_, r)| r.0).collect();
        assert_eq!(got, vec![1, 2]);
        assert_eq!(i.prefix(&[Value::Id(9)]).count(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut i = idx();
        i.insert(key(1, "a"), RowId(1));
        i.clear();
        assert_eq!(i.entry_count(), 0);
        assert_eq!(i.key_count(), 0);
    }
}
