//! The sharded commit pipeline's coordination primitives.
//!
//! Commits to disjoint tables no longer serialize on a global mutex.
//! Instead the pipeline is built from two small pieces:
//!
//! * [`CommitSequencer`] — an atomic commit-timestamp allocator plus a
//!   **contiguous-prefix watermark**. Timestamps are handed out densely;
//!   a pending set tracks which of them have published their versions.
//!   The watermark advances only when *every* lower timestamp has either
//!   published or been released (aborted), so a snapshot taken at the
//!   watermark never has a gap: it sees all writes with
//!   `commit_ts <= watermark`, across all tables, even while commits
//!   publish out of timestamp order.
//! * [`CommitLatch`] — a writer-preferring shared/exclusive latch.
//!   Commits take it shared and run concurrently; DDL and the
//!   checkpoint copy phase take it exclusive, which quiesces the
//!   pipeline (no commit is mid-validation/publication while the
//!   catalog or the WAL file is being restructured). Hand-rolled on
//!   `Mutex` + `Condvar` rather than an `RwLock` so writer preference
//!   is guaranteed (a DDL can't be starved by a steady commit stream)
//!   and so wait time is observable (`Stats::commit_wait_ns`,
//!   `Stats::ddl_stalls`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::table::Ts;

// ------------------------------------------------------------- sequencer

#[derive(Debug)]
struct SeqState {
    /// Next timestamp to hand out. Allocation is dense: every ts in
    /// `(watermark, next_ts)` is either in `pending` or was released.
    next_ts: Ts,
    /// In-flight commit timestamps; `true` once the commit has
    /// published its versions to the tables.
    pending: BTreeMap<Ts, bool>,
}

/// Commit-timestamp allocator + contiguous-prefix watermark.
#[derive(Debug)]
pub(crate) struct CommitSequencer {
    state: Mutex<SeqState>,
    /// All commits with `ts <= watermark` have published (or were
    /// released). This is the only timestamp `begin()` may hand out as
    /// a snapshot.
    watermark: AtomicU64,
    /// Max `ts - watermark` gap observed at allocation time: how far
    /// the pipeline has run ahead of the slowest in-flight commit.
    lag_max: AtomicU64,
    /// Signalled whenever the watermark advances ([`wait_visible`]
    /// parks here).
    visible: Condvar,
    /// Total nanoseconds committers spent in [`wait_visible`].
    visibility_wait_ns: AtomicU64,
}

impl CommitSequencer {
    /// A sequencer whose watermark starts at `start` (0 for a fresh
    /// database; the recovered last commit ts after replay).
    pub(crate) fn new(start: Ts) -> CommitSequencer {
        CommitSequencer {
            state: Mutex::new(SeqState {
                next_ts: start + 1,
                pending: BTreeMap::new(),
            }),
            watermark: AtomicU64::new(start),
            lag_max: AtomicU64::new(0),
            visible: Condvar::new(),
            visibility_wait_ns: AtomicU64::new(0),
        }
    }

    /// The newest gap-free commit timestamp (snapshot source).
    pub(crate) fn watermark(&self) -> Ts {
        self.watermark.load(Ordering::Acquire)
    }

    pub(crate) fn lag_max(&self) -> u64 {
        self.lag_max.load(Ordering::Relaxed)
    }

    pub(crate) fn visibility_wait_ns(&self) -> u64 {
        self.visibility_wait_ns.load(Ordering::Relaxed)
    }

    /// Claim the next commit timestamp. The caller must eventually call
    /// exactly one of [`complete`](Self::complete) (published) or
    /// [`release`](Self::release) (aborted), or the watermark stalls
    /// forever at `ts - 1`.
    pub(crate) fn allocate(&self) -> Ts {
        let mut st = self.state.lock();
        let ts = st.next_ts;
        st.next_ts += 1;
        st.pending.insert(ts, false);
        // Watermark only moves under this same lock, so a relaxed load
        // is exact here.
        let lag = ts - self.watermark.load(Ordering::Relaxed);
        drop(st);
        bump_max(&self.lag_max, lag);
        ts
    }

    /// Mark `ts` as published and fold it into the watermark once every
    /// lower timestamp has resolved.
    pub(crate) fn complete(&self, ts: Ts) {
        let mut st = self.state.lock();
        let slot = st.pending.get_mut(&ts).expect("complete of unallocated ts");
        *slot = true;
        self.advance(&mut st);
    }

    /// Abandon `ts` (the commit aborted after allocation, e.g. WAL
    /// staging failed). The watermark skips over it — an abort must not
    /// leave a permanent hole.
    pub(crate) fn release(&self, ts: Ts) {
        let mut st = self.state.lock();
        st.pending.remove(&ts);
        self.advance(&mut st);
    }

    /// Commit wait: block until the watermark covers `ts`, i.e. until
    /// the caller's (already completed) commit is visible to new
    /// snapshots. Without this a session's *next* transaction could be
    /// handed a snapshot below its own previous commit — it would miss
    /// its own write and spuriously fail first-committer-wins against
    /// itself. The wait is bounded by the publication (pure memory
    /// work) of concurrently committing lower timestamps, never by the
    /// disk: every committer resolves its slot *before* it parks on WAL
    /// durability.
    pub(crate) fn wait_visible(&self, ts: Ts) {
        if self.watermark.load(Ordering::Acquire) >= ts {
            return;
        }
        let start = Instant::now();
        let mut st = self.state.lock();
        while self.watermark.load(Ordering::Relaxed) < ts {
            self.visible.wait(&mut st);
        }
        drop(st);
        self.visibility_wait_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Recovery path: fold a replayed commit timestamp in directly.
    /// Only called single-threaded, before the pipeline is live.
    pub(crate) fn observe(&self, ts: Ts) {
        let mut st = self.state.lock();
        debug_assert!(st.pending.is_empty(), "observe with commits in flight");
        if ts >= st.next_ts {
            st.next_ts = ts + 1;
        }
        bump_max(&self.watermark, ts);
    }

    /// Advance the watermark over the contiguous prefix of resolved
    /// timestamps. An entry missing from `pending` (but below
    /// `next_ts`) was released; `false` means still publishing — stop.
    fn advance(&self, st: &mut SeqState) {
        let mut w = self.watermark.load(Ordering::Relaxed);
        loop {
            let next = w + 1;
            if next >= st.next_ts {
                break;
            }
            match st.pending.get(&next) {
                Some(true) => {
                    st.pending.remove(&next);
                    w = next;
                }
                Some(false) => break,
                None => w = next, // released (aborted): skip over
            }
        }
        // Release pairs with the Acquire in `watermark()`: a snapshot
        // that observes `w` also observes every version published by
        // commits folded into it (publication happens-before `complete`,
        // which happens-before this store via the state mutex).
        self.watermark.store(w, Ordering::Release);
        self.visible.notify_all();
    }
}

// ----------------------------------------------------------------- latch

#[derive(Debug, Default)]
struct LatchState {
    /// Shared holders (commits) currently inside the pipeline.
    shared: usize,
    /// An exclusive holder (DDL / checkpoint copy phase) is inside.
    exclusive: bool,
    /// Exclusive acquirers parked; new shared acquirers queue behind
    /// them (writer preference — a DDL is never starved by commits).
    exclusive_waiting: usize,
}

/// Writer-preferring shared/exclusive latch for the commit pipeline.
#[derive(Debug)]
pub(crate) struct CommitLatch {
    state: Mutex<LatchState>,
    cv: Condvar,
    /// Total nanoseconds commits spent blocked acquiring shared mode.
    shared_wait_ns: AtomicU64,
    /// Exclusive acquisitions that had to wait for the pipeline to
    /// quiesce.
    exclusive_stalls: AtomicU64,
}

impl CommitLatch {
    pub(crate) fn new() -> CommitLatch {
        CommitLatch {
            state: Mutex::new(LatchState::default()),
            cv: Condvar::new(),
            shared_wait_ns: AtomicU64::new(0),
            exclusive_stalls: AtomicU64::new(0),
        }
    }

    pub(crate) fn shared_wait_ns(&self) -> u64 {
        self.shared_wait_ns.load(Ordering::Relaxed)
    }

    pub(crate) fn exclusive_stalls(&self) -> u64 {
        self.exclusive_stalls.load(Ordering::Relaxed)
    }

    /// Enter the pipeline as a commit. Blocks only while an exclusive
    /// holder (or one waiting its turn) has the latch.
    pub(crate) fn shared(&self) -> SharedGuard<'_> {
        let mut st = self.state.lock();
        if st.exclusive || st.exclusive_waiting > 0 {
            let start = Instant::now();
            while st.exclusive || st.exclusive_waiting > 0 {
                self.cv.wait(&mut st);
            }
            self.shared_wait_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        st.shared += 1;
        SharedGuard { latch: self }
    }

    /// Quiesce the pipeline (DDL, checkpoint copy phase). Blocks until
    /// every in-flight commit critical section has drained.
    pub(crate) fn exclusive(&self) -> ExclusiveGuard<'_> {
        let mut st = self.state.lock();
        if st.exclusive || st.shared > 0 {
            self.exclusive_stalls.fetch_add(1, Ordering::Relaxed);
        }
        st.exclusive_waiting += 1;
        while st.exclusive || st.shared > 0 {
            self.cv.wait(&mut st);
        }
        st.exclusive_waiting -= 1;
        st.exclusive = true;
        ExclusiveGuard { latch: self }
    }
}

#[derive(Debug)]
pub(crate) struct SharedGuard<'a> {
    latch: &'a CommitLatch,
}

impl Drop for SharedGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.latch.state.lock();
        st.shared -= 1;
        if st.shared == 0 {
            self.latch.cv.notify_all();
        }
    }
}

#[derive(Debug)]
pub(crate) struct ExclusiveGuard<'a> {
    latch: &'a CommitLatch,
}

impl Drop for ExclusiveGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.latch.state.lock();
        st.exclusive = false;
        self.latch.cv.notify_all();
    }
}

fn bump_max(cell: &AtomicU64, seen: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while cur < seen {
        match cell.compare_exchange_weak(cur, seen, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(c) => cur = c,
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    use super::*;

    #[test]
    fn watermark_waits_for_contiguous_prefix() {
        let seq = CommitSequencer::new(0);
        let t1 = seq.allocate();
        let t2 = seq.allocate();
        let t3 = seq.allocate();
        assert_eq!((t1, t2, t3), (1, 2, 3));
        // Out-of-order completion: the watermark must not expose ts 3
        // while 1 is still publishing.
        seq.complete(t3);
        assert_eq!(seq.watermark(), 0);
        seq.complete(t2);
        assert_eq!(seq.watermark(), 0);
        seq.complete(t1);
        assert_eq!(seq.watermark(), 3);
        assert!(seq.lag_max() >= 3);
    }

    #[test]
    fn release_mid_window_does_not_stall_watermark() {
        let seq = CommitSequencer::new(10);
        let a = seq.allocate(); // 11
        let b = seq.allocate(); // 12
        let c = seq.allocate(); // 13
        seq.complete(c);
        seq.complete(a);
        assert_eq!(seq.watermark(), 11);
        // The aborted middle commit releases its slot; the watermark
        // skips over the hole and folds in everything behind it.
        seq.release(b);
        assert_eq!(seq.watermark(), 13);
        // Next allocation continues densely after the hole.
        assert_eq!(seq.allocate(), 14);
    }

    #[test]
    fn release_of_newest_ts_leaves_watermark_reachable() {
        let seq = CommitSequencer::new(0);
        let a = seq.allocate();
        let b = seq.allocate();
        seq.release(b);
        seq.complete(a);
        assert_eq!(seq.watermark(), 2, "trailing released ts is folded in");
    }

    #[test]
    fn observe_replays_monotonically() {
        let seq = CommitSequencer::new(0);
        seq.observe(5);
        seq.observe(3); // out-of-date replay record: no regression
        assert_eq!(seq.watermark(), 5);
        assert_eq!(seq.allocate(), 6);
    }

    #[test]
    fn wait_visible_blocks_until_lower_ts_resolves() {
        let seq = Arc::new(CommitSequencer::new(0));
        let t1 = seq.allocate();
        let t2 = seq.allocate();
        seq.complete(t2);
        // t2's committer is done publishing but t1 is still in flight:
        // visibility must wait for it.
        let waiter = {
            let seq = seq.clone();
            std::thread::spawn(move || {
                seq.wait_visible(t2);
                seq.watermark()
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        assert!(!waiter.is_finished(), "became visible past a gap");
        seq.complete(t1);
        assert_eq!(waiter.join().unwrap(), 2);
        assert!(seq.visibility_wait_ns() > 0);
        // Already-visible timestamps return immediately.
        seq.wait_visible(t1);
    }

    #[test]
    fn latch_exclusive_waits_for_shared_and_counts_stall() {
        let latch = Arc::new(CommitLatch::new());
        let held = Arc::new(AtomicBool::new(true));
        let s = latch.shared();
        let t = {
            let latch = latch.clone();
            let held = held.clone();
            std::thread::spawn(move || {
                let _x = latch.exclusive();
                // Must only get here once the shared guard dropped.
                assert!(!held.load(Ordering::SeqCst));
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        held.store(false, Ordering::SeqCst);
        drop(s);
        t.join().unwrap();
        assert_eq!(latch.exclusive_stalls(), 1);
    }

    #[test]
    fn latch_shared_queues_behind_waiting_exclusive() {
        // Writer preference: once an exclusive acquirer is parked, new
        // shared acquirers wait behind it instead of starving it.
        let latch = Arc::new(CommitLatch::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        let s = latch.shared();
        let excl = {
            let latch = latch.clone();
            let order = order.clone();
            std::thread::spawn(move || {
                let _x = latch.exclusive();
                order.lock().push("exclusive");
            })
        };
        // Wait until the exclusive acquirer is parked.
        while latch.state.lock().exclusive_waiting == 0 {
            std::thread::yield_now();
        }
        let shared2 = {
            let latch = latch.clone();
            let order = order.clone();
            std::thread::spawn(move || {
                let _s = latch.shared();
                order.lock().push("shared");
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(s);
        excl.join().unwrap();
        shared2.join().unwrap();
        assert_eq!(*order.lock(), vec!["exclusive", "shared"]);
        assert!(latch.shared_wait_ns() > 0);
    }

    #[test]
    fn concurrent_allocate_complete_keeps_watermark_dense() {
        let seq = Arc::new(CommitSequencer::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let seq = seq.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let ts = seq.allocate();
                    if i % 7 == 0 {
                        seq.release(ts);
                    } else {
                        seq.complete(ts);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Everything resolved: the watermark equals the newest allocated
        // ts and nothing is left pending.
        assert_eq!(seq.watermark(), 2000);
        assert!(seq.state.lock().pending.is_empty());
    }
}
