//! Transactions: snapshot-isolated reads, buffered writes, optimistic
//! commit.
//!
//! A transaction takes its snapshot timestamp at `begin`, reads the world
//! as of that timestamp (plus its own uncommitted writes), and buffers all
//! writes locally. At commit, the engine validates that no other
//! transaction committed a newer version of any written row (first
//! committer wins), checks unique constraints against the then-current
//! state, stages one WAL record, and publishes all versions while
//! holding only the write locks of the tables the transaction touched —
//! commits to disjoint tables run the whole pipeline concurrently, and
//! snapshot visibility is governed by the contiguous-prefix watermark
//! (`crate::commit`). This is exactly the guarantee the TeNDaX
//! papers lean on: each keystroke batch is an ACID transaction, and
//! concurrent editors conflict only when they touch the same rows.

use std::collections::{BTreeMap, HashSet};
use std::ops::Bound;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::cold::ColdStore;
use crate::db::Database;
use crate::error::{Result, StorageError};
use crate::index::IndexKey;
use crate::query::Predicate;
use crate::row::{Row, RowId, SharedRow};
use crate::schema::TableId;
use crate::table::{TableStore, Ts, Version, VersionOp, WriteDescriptor};
use crate::value::Value;
use crate::wal::WalOp;

/// Transaction identifier (unique per database instance lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

/// A buffered, not-yet-committed write. Put rows are stored shared so
/// commit can hand the *same* allocation to the WAL encoder and the
/// version store; the write set itself stays copy-on-write (updates to a
/// buffered row materialize a fresh `Row` and swap the handle).
///
/// `Patch` is a described partial write ([`Transaction::set_with_anchors`]):
/// the row is fully materialized against this transaction's snapshot (so
/// reads-through behave exactly like a `Put`), but the descriptor records
/// which columns were actually written and which chain-neighborhood
/// anchors the edit logically touched. At commit, a `Patch` that lost the
/// first-committer race can *merge* onto the newer committed version when
/// the descriptors are disjoint, instead of aborting.
#[derive(Debug, Clone)]
pub(crate) enum WriteOp {
    Put(SharedRow),
    Delete,
    Patch {
        row: SharedRow,
        desc: Arc<WriteDescriptor>,
    },
}

impl WriteOp {
    /// The row this write makes visible within its own transaction
    /// (`None` for a delete). Patch rows are materialized, so snapshot
    /// reads treat them exactly like puts.
    pub(crate) fn row(&self) -> Option<&SharedRow> {
        match self {
            WriteOp::Put(r) | WriteOp::Patch { row: r, .. } => Some(r),
            WriteOp::Delete => None,
        }
    }
}

/// A captured write-set state; see [`Transaction::savepoint`].
#[derive(Debug, Clone)]
pub struct Savepoint {
    writes: BTreeMap<TableId, BTreeMap<RowId, WriteOp>>,
    created: HashSet<(TableId, RowId)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnState {
    Active,
    Committed,
    Aborted,
}

/// An open transaction. Dropping an active transaction aborts it.
#[derive(Debug)]
pub struct Transaction {
    db: Database,
    id: TxnId,
    snapshot: Ts,
    pub(crate) writes: BTreeMap<TableId, BTreeMap<RowId, WriteOp>>,
    /// Rows this transaction itself inserted (they cannot conflict).
    pub(crate) created: HashSet<(TableId, RowId)>,
    /// Set by `commit_txn` once versions are visible to other snapshots.
    /// A durability failure after this point is not an abort: the commit
    /// happened, it just may not survive a crash.
    pub(crate) published: bool,
    state: TxnState,
    /// Table handles this transaction has touched. Repeated reads of the
    /// same table (the per-character hot loop) skip the database's global
    /// table-map lock entirely. A handle pinned here keeps serving the
    /// snapshot even if the table is dropped mid-transaction — exactly
    /// the isolation a snapshot reader expects.
    handles: Mutex<BTreeMap<TableId, Arc<RwLock<TableStore>>>>,
}

impl Transaction {
    pub(crate) fn new(db: Database, id: TxnId, snapshot: Ts) -> Self {
        Transaction {
            db,
            id,
            snapshot,
            writes: BTreeMap::new(),
            created: HashSet::new(),
            published: false,
            state: TxnState::Active,
            handles: Mutex::new(BTreeMap::new()),
        }
    }

    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The commit timestamp this transaction reads as of.
    pub fn snapshot_ts(&self) -> Ts {
        self.snapshot
    }

    /// Number of buffered writes.
    pub fn write_count(&self) -> usize {
        self.writes.values().map(BTreeMap::len).sum()
    }

    fn check_active(&self) -> Result<()> {
        if self.state == TxnState::Active {
            Ok(())
        } else {
            Err(StorageError::TxnClosed(self.id))
        }
    }

    fn own_write(&self, table: TableId, row: RowId) -> Option<&WriteOp> {
        self.writes.get(&table).and_then(|m| m.get(&row))
    }

    pub(crate) fn db_handle(&self) -> &Database {
        &self.db
    }

    /// The table's store handle, via the per-transaction cache. Only the
    /// first touch of a table pays the global `tables` map read-lock.
    fn table_handle(&self, table: TableId) -> Result<Arc<RwLock<TableStore>>> {
        let mut cache = self.handles.lock();
        if let Some(h) = cache.get(&table) {
            return Ok(h.clone());
        }
        let h = self.db.table_handle(table)?;
        cache.insert(table, h.clone());
        Ok(h)
    }

    /// Run `f` with shared access to a table, through the handle cache.
    fn with_table<R>(&self, table: TableId, f: impl FnOnce(&TableStore) -> R) -> Result<R> {
        let h = self.table_handle(table)?;
        let guard = h.read();
        Ok(f(&guard))
    }

    // ---------------------------------------------------------------- reads

    /// Read a row by id, seeing this transaction's own writes. The
    /// returned handle shares the stored row — no values are copied.
    pub fn get(&self, table: TableId, row: RowId) -> Result<Option<SharedRow>> {
        self.check_active()?;
        self.db.note_point_get();
        if let Some(op) = self.own_write(table, row) {
            return Ok(op.row().cloned());
        }
        // RAM first. Any version at or below the snapshot — put *or*
        // tombstone — is authoritative: demotion prunes a version only
        // after a newer one at or below the cold floor supersedes it,
        // so a surviving RAM version is always the newest for us.
        let ram = self.with_table(table, |t| {
            t.newest_version_at(row, self.snapshot)
                .map(|v| match &v.op {
                    VersionOp::Put(r) => Some(r.clone()),
                    VersionOp::Delete => None,
                })
        })?;
        if let Some(outcome) = ram {
            return Ok(outcome);
        }
        // RAM holds nothing for this snapshot. Only snapshots below the
        // cold floor can have demoted history; the floor is loaded
        // *after* the RAM read, so a concurrent demotion's prune can
        // never be missed (the floor is raised before anything is
        // pruned).
        let Some(cold) = self.db.cold_store() else {
            return Ok(None);
        };
        if self.snapshot >= cold.floor() {
            return Ok(None);
        }
        match cold.lookup(table, row, self.snapshot)? {
            Some((_, WalOp::Put(r))) => Ok(Some(r)),
            Some((_, WalOp::Delete)) | None => Ok(None),
            Some((_, WalOp::Patch { .. })) => {
                Err(StorageError::Internal("cold run holds a patch op".into()))
            }
        }
    }

    /// Every committed row visible at this snapshot once the cold tier
    /// is merged in: RAM's newest version per row wins (tombstones
    /// suppress the row), the cold tier fills rows whose relevant
    /// history was demoted. Only called when `snapshot < cold.floor()`.
    fn tiered_visible_rows(
        &self,
        table: TableId,
        cold: &ColdStore,
    ) -> Result<Vec<(RowId, SharedRow)>> {
        let mut merged: BTreeMap<RowId, Option<SharedRow>> = self.with_table(table, |t| {
            t.newest_versions_at(self.snapshot)
                .map(|(rid, v)| {
                    let row = match &v.op {
                        VersionOp::Put(r) => Some(r.clone()),
                        VersionOp::Delete => None,
                    };
                    (rid, row)
                })
                .collect()
        })?;
        for (rid, (_, op)) in cold.scan_table(table, self.snapshot)? {
            let row = match op {
                WalOp::Put(r) => Some(r),
                WalOp::Delete => None,
                WalOp::Patch { .. } => {
                    return Err(StorageError::Internal("cold run holds a patch op".into()))
                }
            };
            merged.entry(rid).or_insert(row);
        }
        Ok(merged
            .into_iter()
            .filter_map(|(rid, row)| row.map(|r| (rid, r)))
            .collect())
    }

    /// All rows matching `pred`, via the planned access path, with this
    /// transaction's own writes overlaid. Results are in row-id order.
    ///
    /// Predicate evaluation is pushed down into the table store
    /// ([`TableStore::scan_matching`]): non-matching committed rows are
    /// counted but never materialized, and each returned row is a shared
    /// handle produced exactly once.
    pub fn scan(&self, table: TableId, pred: &Predicate) -> Result<Vec<(RowId, SharedRow)>> {
        self.check_active()?;
        let outcome = self.with_table(table, |t| t.scan_matching(self.snapshot, pred))??;
        self.db.note_scan(outcome.scanned, outcome.skipped);
        let mut committed = outcome.rows;
        if let Some(cold) = self.db.cold_store() {
            if self.snapshot < cold.floor() {
                // The snapshot predates the cold floor, so RAM alone
                // may be incomplete: rebuild from the merged tiers.
                let def = self.db.table_def(table)?;
                let mut rows = Vec::new();
                for (rid, row) in self.tiered_visible_rows(table, cold)? {
                    if pred.eval(&def, &row)? {
                        rows.push((rid, row));
                    }
                }
                committed = rows;
            }
        }
        let Some(ws) = self.writes.get(&table).filter(|ws| !ws.is_empty()) else {
            return Ok(committed);
        };
        // Merge the committed rows (row-id ordered) with the own-write
        // overlay (BTreeMap, also ordered): a two-pointer pass that
        // yields each row exactly once.
        let def = self.db.table_def(table)?;
        let mut merged = Vec::with_capacity(committed.len() + ws.len());
        let mut own = ws.iter().peekable();
        let emit_own = |rid: RowId, op: &WriteOp, out: &mut Vec<(RowId, SharedRow)>| {
            if let Some(r) = op.row() {
                if pred.eval(&def, r)? {
                    out.push((rid, r.clone()));
                }
            }
            Ok::<_, StorageError>(())
        };
        for (rid, row) in committed {
            while let Some(&(&wrid, op)) = own.peek() {
                if wrid >= rid {
                    break;
                }
                emit_own(wrid, op, &mut merged)?;
                own.next();
            }
            match own.peek() {
                Some(&(&wrid, op)) if wrid == rid => {
                    // Own write supersedes the committed version.
                    emit_own(wrid, op, &mut merged)?;
                    own.next();
                }
                _ => merged.push((rid, row)),
            }
        }
        for (&wrid, op) in own {
            emit_own(wrid, op, &mut merged)?;
        }
        Ok(merged)
    }

    /// Count rows matching `pred`.
    pub fn count(&self, table: TableId, pred: &Predicate) -> Result<usize> {
        Ok(self.scan(table, pred)?.len())
    }

    /// Point lookup through a named index (overlay-aware).
    pub fn index_lookup(
        &self,
        table: TableId,
        index: &str,
        key: &[Value],
    ) -> Result<Vec<(RowId, SharedRow)>> {
        let key_vec: IndexKey = key.to_vec();
        self.index_range(
            table,
            index,
            Bound::Included(&key_vec),
            Bound::Included(&key_vec),
        )
    }

    /// Ordered range scan through a named index (overlay-aware). Results
    /// are ordered by (index key, row id).
    pub fn index_range(
        &self,
        table: TableId,
        index: &str,
        lo: Bound<&IndexKey>,
        hi: Bound<&IndexKey>,
    ) -> Result<Vec<(RowId, SharedRow)>> {
        self.check_active()?;
        self.db.note_index_lookup();
        let mut matched: BTreeMap<(IndexKey, RowId), SharedRow> =
            self.with_table(table, |t| {
                let (_, idx) =
                    t.index_by_name(index)
                        .ok_or_else(|| StorageError::UnknownIndex {
                            table: t.definition().name.clone(),
                            index: index.to_owned(),
                        })?;
                let mut out = BTreeMap::new();
                for (key, rid) in idx.range(lo, hi) {
                    if out.contains_key(&(key.clone(), rid)) {
                        continue;
                    }
                    if let Some(row) = t.visible(rid, self.snapshot) {
                        // Re-verify: the index is a superset over versions.
                        if &idx.key_of(row) == key {
                            out.insert((key.clone(), rid), row.clone());
                        }
                    }
                }
                Ok::<_, StorageError>(out)
            })??;
        if let Some(cold) = self.db.cold_store() {
            if self.snapshot < cold.floor() {
                // The index only covers RAM-resident versions; for a
                // snapshot below the cold floor, rebuild the committed
                // set from the merged tiers and re-key each row.
                let rows = self.tiered_visible_rows(table, cold)?;
                matched = self.with_table(table, |t| {
                    let (_, idx) =
                        t.index_by_name(index)
                            .ok_or_else(|| StorageError::UnknownIndex {
                                table: t.definition().name.clone(),
                                index: index.to_owned(),
                            })?;
                    let mut out = BTreeMap::new();
                    for (rid, row) in rows {
                        let key = idx.key_of(&row);
                        if range_contains(&(lo, hi), &key) {
                            out.insert((key, rid), row);
                        }
                    }
                    Ok::<_, StorageError>(out)
                })??;
            }
        }
        // Overlay own writes: recompute their keys and membership.
        if let Some(ws) = self.writes.get(&table) {
            let key_bounds = (lo, hi);
            let keys_of_own: Vec<(RowId, Option<(IndexKey, SharedRow)>)> =
                self.with_table(table, |t| {
                    let (_, idx) =
                        t.index_by_name(index)
                            .ok_or_else(|| StorageError::UnknownIndex {
                                table: t.definition().name.clone(),
                                index: index.to_owned(),
                            })?;
                    Ok::<_, StorageError>(
                        ws.iter()
                            .map(|(rid, op)| (*rid, op.row().map(|r| (idx.key_of(r), r.clone()))))
                            .collect(),
                    )
                })??;
            for (rid, put) in keys_of_own {
                // Remove any committed-version entry for this row: the own
                // write supersedes it.
                matched.retain(|(_, r), _| *r != rid);
                if let Some((key, row)) = put {
                    let in_range = range_contains(&key_bounds, &key);
                    if in_range {
                        matched.insert((key, rid), row);
                    }
                }
            }
        }
        Ok(matched
            .into_iter()
            .map(|((_, rid), row)| (rid, row))
            .collect())
    }

    /// The greatest index entry under `prefix` strictly below `before`
    /// (descending cursor). Returns `(key, row_id, row)` — overlay-aware.
    ///
    /// Repeated calls with `before = Some(&previous_key)` walk an index
    /// newest-first without materializing the whole range; with a
    /// `(doc, ts)`-style index this is how "most recent matching X"
    /// queries stay logarithmic.
    pub fn index_prev(
        &self,
        table: TableId,
        index: &str,
        prefix: &[Value],
        before: Option<&IndexKey>,
    ) -> Result<Option<(IndexKey, RowId, SharedRow)>> {
        self.check_active()?;
        self.db.note_index_lookup();
        let lo: IndexKey = prefix.to_vec();
        // Exclusive upper bound of the whole prefix range (when the last
        // prefix value has a computable successor).
        let prefix_hi: Option<IndexKey> = match prefix.last() {
            None => None, // empty prefix: whole index, Unbounded is exact
            Some(last) => value_successor(last).map(|succ| {
                let mut k = prefix.to_vec();
                *k.last_mut().expect("non-empty") = succ;
                k
            }),
        };
        // Committed candidate: newest visible entry, skipping rows this
        // transaction has overwritten (their committed key is stale).
        let committed: Option<(IndexKey, RowId, SharedRow)> = self.with_table(table, |t| {
            let (_, idx) = t
                .index_by_name(index)
                .ok_or_else(|| StorageError::UnknownIndex {
                    table: t.definition().name.clone(),
                    index: index.to_owned(),
                })?;
            let hi = match (before, &prefix_hi) {
                (Some(b), _) => Bound::Excluded(b),
                (None, Some(h)) => Bound::Excluded(h),
                (None, None) => Bound::Unbounded,
            };
            for (key, rid) in idx.range_rev(Bound::Included(&lo), hi) {
                if !key.starts_with(prefix) {
                    // Only reachable when no tight upper bound existed:
                    // above the prefix range keep walking down, below it
                    // stop.
                    if key.as_slice() > prefix {
                        continue;
                    }
                    break;
                }
                if self.own_write(table, rid).is_some() {
                    continue;
                }
                if let Some(row) = t.visible(rid, self.snapshot) {
                    if &idx.key_of(row) == key {
                        return Ok::<_, StorageError>(Some((key.clone(), rid, row.clone())));
                    }
                }
            }
            Ok(None)
        })??;
        let committed = match self.db.cold_store() {
            Some(cold) if self.snapshot < cold.floor() => {
                // Snapshot below the cold floor: rebuild the committed
                // candidate from the merged tiers (the in-RAM index
                // no longer covers every visible version).
                let rows = self.tiered_visible_rows(table, cold)?;
                self.with_table(table, |t| {
                    let (_, idx) =
                        t.index_by_name(index)
                            .ok_or_else(|| StorageError::UnknownIndex {
                                table: t.definition().name.clone(),
                                index: index.to_owned(),
                            })?;
                    let mut best: Option<(IndexKey, RowId, SharedRow)> = None;
                    for (rid, row) in rows {
                        if self.own_write(table, rid).is_some() {
                            continue;
                        }
                        let key = idx.key_of(&row);
                        if !key.starts_with(prefix) {
                            continue;
                        }
                        if let Some(b) = before {
                            if &key >= b {
                                continue;
                            }
                        }
                        if best.as_ref().is_none_or(|(bk, _, _)| key > *bk) {
                            best = Some((key, rid, row));
                        }
                    }
                    Ok::<_, StorageError>(best)
                })??
            }
            _ => committed,
        };
        // Own-write candidate with the greatest qualifying key.
        let own: Option<(IndexKey, RowId, SharedRow)> = match self.writes.get(&table) {
            None => None,
            Some(ws) => self.with_table(table, |t| {
                let (_, idx) =
                    t.index_by_name(index)
                        .ok_or_else(|| StorageError::UnknownIndex {
                            table: t.definition().name.clone(),
                            index: index.to_owned(),
                        })?;
                let mut best: Option<(IndexKey, RowId, SharedRow)> = None;
                for (&rid, op) in ws {
                    let Some(row) = op.row() else { continue };
                    let key = idx.key_of(row);
                    if !key.starts_with(prefix) {
                        continue;
                    }
                    if let Some(b) = before {
                        if &key >= b {
                            continue;
                        }
                    }
                    if best.as_ref().is_none_or(|(bk, _, _)| key > *bk) {
                        best = Some((key, rid, row.clone()));
                    }
                }
                Ok::<_, StorageError>(best)
            })??,
        };
        Ok(match (committed, own) {
            (Some(c), Some(o)) => Some(if o.0 >= c.0 { o } else { c }),
            (c, o) => c.or(o),
        })
    }

    // --------------------------------------------------------------- writes

    /// Insert a new row, returning its id.
    pub fn insert(&mut self, table: TableId, row: Row) -> Result<RowId> {
        self.check_active()?;
        let rid = self.with_table(table, |t| {
            t.definition().validate_row(row.values())?;
            Ok::<_, StorageError>(t.allocate_row_id())
        })??;
        self.writes
            .entry(table)
            .or_default()
            .insert(rid, WriteOp::Put(row.into_shared()));
        self.created.insert((table, rid));
        Ok(rid)
    }

    /// Replace an existing (visible) row wholesale.
    pub fn update(&mut self, table: TableId, row: RowId, new_row: Row) -> Result<()> {
        self.check_active()?;
        if self.get(table, row)?.is_none() {
            return Err(self.not_found(table));
        }
        self.with_table(table, |t| t.definition().validate_row(new_row.values()))??;
        self.writes
            .entry(table)
            .or_default()
            .insert(row, WriteOp::Put(new_row.into_shared()));
        Ok(())
    }

    /// Update named columns of an existing row, leaving others unchanged.
    /// Copy-on-write: the current version (shared or buffered) is
    /// materialized once, mutated, and buffered as a fresh shared row.
    pub fn set(&mut self, table: TableId, row: RowId, updates: &[(&str, Value)]) -> Result<()> {
        self.check_active()?;
        let current = self.get(table, row)?.ok_or_else(|| self.not_found(table))?;
        let mut current = Row::clone(&current);
        let def = self.db.table_def(table)?;
        for (col, val) in updates {
            let pos = def.require_column(col)?;
            current.set(pos, val.clone());
        }
        self.update(table, row, current)
    }

    /// Update named columns of an existing row and declare the write
    /// *commutative* within its chain neighborhood.
    ///
    /// Like [`Transaction::set`], but the write is tagged with a
    /// [`WriteDescriptor`]: the column positions actually written plus
    /// the caller-chosen `anchors` (opaque tokens naming the logical
    /// chain edges the edit depends on — the text layer uses
    /// `char_id << 1 | side`). If another transaction commits a newer
    /// described version of the same row before this one, commit
    /// validation compares descriptors instead of aborting outright:
    /// disjoint fields *and* disjoint anchors means the operations
    /// commute, and this write's columns are replayed onto the newer
    /// version (the later committer's delta merges). Overlap — or a
    /// competing write with no descriptor — still aborts first-committer
    /// -wins.
    ///
    /// Repeated described updates of the same row union their
    /// descriptors. A row this transaction inserted, replaced wholesale,
    /// or deleted stays a plain write (descriptors cannot make those
    /// commute).
    pub fn set_with_anchors(
        &mut self,
        table: TableId,
        row: RowId,
        updates: &[(&str, Value)],
        anchors: &[u64],
    ) -> Result<()> {
        self.check_active()?;
        let current = self.get(table, row)?.ok_or_else(|| self.not_found(table))?;
        let mut new_row = Row::clone(&current);
        let def = self.db.table_def(table)?;
        let mut fields = Vec::with_capacity(updates.len());
        for (col, val) in updates {
            let pos = def.require_column(col)?;
            new_row.set(pos, val.clone());
            fields.push(pos as u32);
        }
        self.with_table(table, |t| t.definition().validate_row(new_row.values()))??;
        let desc = WriteDescriptor::new(anchors.to_vec(), fields);
        let is_created = self.created.contains(&(table, row));
        use std::collections::btree_map::Entry;
        match self.writes.entry(table).or_default().entry(row) {
            Entry::Occupied(mut e) => match e.get_mut() {
                // A row this transaction created or replaced wholesale is
                // already a full write; folding the update in keeps it one.
                WriteOp::Put(r) => *r = new_row.into_shared(),
                // `get` above saw the row, so a buffered delete is impossible.
                WriteOp::Delete => unreachable!("set_with_anchors after delete"),
                WriteOp::Patch { row: r, desc: d } => {
                    let mut merged = WriteDescriptor::clone(d);
                    merged.merge_from(&desc);
                    *r = new_row.into_shared();
                    *d = Arc::new(merged);
                }
            },
            Entry::Vacant(e) => {
                if is_created {
                    // Unreachable in practice (created rows always have a
                    // buffered Put), but keep the invariant explicit.
                    e.insert(WriteOp::Put(new_row.into_shared()));
                } else {
                    e.insert(WriteOp::Patch {
                        row: new_row.into_shared(),
                        desc: Arc::new(desc),
                    });
                }
            }
        }
        Ok(())
    }

    /// Delete a visible row.
    pub fn delete(&mut self, table: TableId, row: RowId) -> Result<()> {
        self.check_active()?;
        if self.get(table, row)?.is_none() {
            return Err(self.not_found(table));
        }
        if self.created.remove(&(table, row)) {
            // Inserted by this very transaction: the write simply vanishes.
            if let Some(ws) = self.writes.get_mut(&table) {
                ws.remove(&row);
            }
            return Ok(());
        }
        self.writes
            .entry(table)
            .or_default()
            .insert(row, WriteOp::Delete);
        Ok(())
    }

    fn not_found(&self, table: TableId) -> StorageError {
        let name = self
            .db
            .table_def(table)
            .map(|d| d.name)
            .unwrap_or_else(|_| format!("{table:?}"));
        StorageError::RowNotFound { table: name }
    }

    // ----------------------------------------------------------- savepoints

    /// Capture the current write set as a savepoint. Rolling back to it
    /// discards every write issued after this call (row ids allocated in
    /// between are burned, never reused — ids are not transactional).
    pub fn savepoint(&self) -> Savepoint {
        Savepoint {
            writes: self.writes.clone(),
            created: self.created.clone(),
        }
    }

    /// Restore the write set captured by [`Transaction::savepoint`].
    pub fn rollback_to(&mut self, sp: &Savepoint) -> Result<()> {
        self.check_active()?;
        self.writes = sp.writes.clone();
        self.created = sp.created.clone();
        Ok(())
    }

    // ---------------------------------------------------------- termination

    /// Commit. Returns the commit timestamp (the snapshot timestamp if the
    /// transaction wrote nothing).
    pub fn commit(mut self) -> Result<Ts> {
        self.check_active()?;
        let result = self.db.clone().commit_txn(&mut self);
        match &result {
            Ok(_) => self.state = TxnState::Committed,
            // A post-publication durability failure is still a commit:
            // the versions are visible and commit_txn finished the
            // bookkeeping before waiting on the disk.
            Err(_) if self.published => self.state = TxnState::Committed,
            Err(_) => {
                self.state = TxnState::Aborted;
                self.db.clone().abort_txn(self.id, true); // failed commit is an abort
            }
        }
        result
    }

    /// Abort, discarding all buffered writes.
    pub fn abort(mut self) {
        if self.state == TxnState::Active {
            self.state = TxnState::Aborted;
            let had_writes = self.write_count() > 0;
            self.db.clone().abort_txn(self.id, had_writes);
        }
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if self.state == TxnState::Active {
            self.state = TxnState::Aborted;
            // Dropping a read-only transaction is a quiet close, not an
            // abort; only discarded writes count toward the abort stat.
            let had_writes = self.writes.values().any(|m| !m.is_empty());
            self.db.clone().abort_txn(self.id, had_writes);
        }
    }
}

/// The smallest value strictly greater than `v` of the same type, when
/// one exists cheaply. Used to build exclusive upper bounds for index
/// prefix ranges.
fn value_successor(v: &Value) -> Option<Value> {
    Some(match v {
        Value::Int(x) => Value::Int(x.checked_add(1)?),
        Value::Id(x) => Value::Id(x.checked_add(1)?),
        Value::Timestamp(x) => Value::Timestamp(x.checked_add(1)?),
        Value::Bool(false) => Value::Bool(true),
        // Appending NUL yields the immediate lexicographic successor.
        Value::Text(s) => Value::Text(format!("{s}\0")),
        _ => return None,
    })
}

fn range_contains(bounds: &(Bound<&IndexKey>, Bound<&IndexKey>), key: &IndexKey) -> bool {
    let lo_ok = match bounds.0 {
        Bound::Unbounded => true,
        Bound::Included(b) => key >= b,
        Bound::Excluded(b) => key > b,
    };
    let hi_ok = match bounds.1 {
        Bound::Unbounded => true,
        Bound::Included(b) => key <= b,
        Bound::Excluded(b) => key < b,
    };
    lo_ok && hi_ok
}

/// The outcome of successful commit validation: which `Patch` writes must
/// be rewritten (their columns replayed onto a newer committed version
/// they merged with) before WAL staging and publication.
#[derive(Debug, Default)]
pub(crate) struct MergePlan {
    /// `(table, row)` → the fully merged row to stage and publish in
    /// place of the buffered one. Present only for described writes that
    /// lost the first-committer race but commuted with every newer
    /// version.
    pub rewrites: BTreeMap<(TableId, RowId), SharedRow>,
    /// Total descriptor fields replayed across all rewrites.
    pub fields_applied: u64,
}

/// Validation, called by [`Database::commit_txn`] with the table write
/// locks held. Split out for testability.
///
/// Plain `Put`/`Delete` writes keep exact first-committer-wins: any newer
/// committed version of a written row aborts. A described [`WriteOp::Patch`]
/// gets chain-neighborhood validation instead: every version committed
/// past this transaction's snapshot is examined, and if each one carries
/// a descriptor disjoint from ours (no shared columns, no shared
/// anchors), the operations commute — the patch's columns are replayed
/// onto the newest committed row and the commit proceeds as a merge.
/// Any undescribed version, delete, or descriptor overlap is a *true*
/// overlap: the abort stands and `true_overlap` is set so the engine can
/// count real conflicts separately from FCW casualties.
pub(crate) fn validate_writes(
    txn_writes: &BTreeMap<TableId, BTreeMap<RowId, WriteOp>>,
    created: &HashSet<(TableId, RowId)>,
    snapshot: Ts,
    txn: TxnId,
    tables: &BTreeMap<TableId, &mut TableStore>,
    true_overlap: &mut bool,
) -> Result<MergePlan> {
    let mut plan = MergePlan::default();
    for (&tid, writes) in txn_writes {
        let store = tables.get(&tid).ok_or(StorageError::UnknownTableId(tid))?;
        let conflict = || StorageError::WriteConflict {
            table: store.definition().name.clone(),
            txn,
        };
        // Write-write conflicts: someone committed past our snapshot.
        for (&rid, op) in writes {
            if created.contains(&(tid, rid)) {
                continue;
            }
            match store.newest_commit_ts(rid) {
                Some(newest) if newest > snapshot => {}
                _ => continue,
            }
            let WriteOp::Patch { row, desc } = op else {
                return Err(conflict());
            };
            // Described write: commute or die. Every newer version must
            // itself be a described put whose neighborhood is disjoint
            // from ours; one opaque or overlapping version means the
            // operations genuinely collide.
            let newer: &[Version] = store.versions_after(rid, snapshot);
            let mut base: Option<&SharedRow> = None;
            for v in newer {
                match (&v.op, &v.desc) {
                    (VersionOp::Put(r), Some(d)) if !d.overlaps(desc) => base = Some(r),
                    _ => {
                        *true_overlap = true;
                        return Err(conflict());
                    }
                }
            }
            let base = base.expect("conflict window is non-empty");
            // Replay exactly the columns this patch wrote onto the
            // newest committed row; everything else is the other
            // writers' work and survives untouched.
            let mut merged = Row::clone(base);
            for &pos in &desc.fields {
                merged.set(pos as usize, row.values()[pos as usize].clone());
            }
            plan.fields_applied += desc.fields.len() as u64;
            plan.rewrites.insert((tid, rid), merged.into_shared());
        }
        // Unique constraints, against latest committed state + this batch.
        // Merged rewrites stand in for their buffered rows: the key the
        // index will actually see is the merged one.
        let effective = |rid: RowId, op: &WriteOp| -> Option<SharedRow> {
            plan.rewrites.get(&(tid, rid)).or_else(|| op.row()).cloned()
        };
        for (ipos, idx) in store.indexes().iter().enumerate() {
            if !idx.definition().unique {
                continue;
            }
            let mut pending: BTreeMap<IndexKey, RowId> = BTreeMap::new();
            for (&rid, op) in writes {
                if let Some(row) = effective(rid, op) {
                    let key = idx.key_of(&row);
                    if let Some(prev) = pending.insert(key.clone(), rid) {
                        if prev != rid {
                            return Err(StorageError::UniqueViolation {
                                table: store.definition().name.clone(),
                                index: idx.definition().name.clone(),
                            });
                        }
                    }
                }
            }
            let written: HashSet<RowId> = writes.keys().copied().collect();
            for key in pending.keys() {
                if store.unique_conflict(ipos, key, &|rid| written.contains(&rid)) {
                    return Err(StorageError::UniqueViolation {
                        table: store.definition().name.clone(),
                        index: idx.definition().name.clone(),
                    });
                }
            }
        }
    }
    Ok(plan)
}
