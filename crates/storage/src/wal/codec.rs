//! Binary encoding of WAL records.
//!
//! Hand-rolled, little-endian, tag-prefixed. The format is deliberately
//! simple: fixed-width integers, `u32`-length-prefixed byte strings, and a
//! one-byte tag per variant. Simplicity buys auditability — a WAL that can
//! be decoded by eye is a WAL whose recovery path can be trusted.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{Result, StorageError};
use crate::row::{Row, RowId};
use crate::schema::{ColumnDef, IndexDef, TableDef, TableId};
use crate::value::{DataType, Value};
use crate::wal::{WalOp, WalRecord, WalWrite};

// Record tags.
const TAG_META: u8 = 1;
const TAG_CREATE_TABLE: u8 = 2;
const TAG_DROP_TABLE: u8 = 3;
const TAG_COMMIT: u8 = 4;
const TAG_SNAPSHOT_ROW: u8 = 5;
const TAG_WATERMARK: u8 = 6;
const TAG_ABORT: u8 = 7;
const TAG_BARRIER: u8 = 8;

// Value tags.
const VT_NULL: u8 = 0;
const VT_INT: u8 = 1;
const VT_ID: u8 = 2;
const VT_TEXT: u8 = 3;
const VT_BOOL: u8 = 4;
const VT_BYTES: u8 = 5;
const VT_TIMESTAMP: u8 = 6;
const VT_FLOAT: u8 = 7;

// WalOp tags.
const OP_PUT: u8 = 0;
const OP_DELETE: u8 = 1;
const OP_PATCH: u8 = 2;

/// Encode a record to bytes (without the log's length/CRC framing).
pub fn encode_record(rec: &WalRecord) -> Bytes {
    let mut b = BytesMut::with_capacity(64);
    put_record(&mut b, rec);
    b.freeze()
}

fn put_record(b: &mut BytesMut, rec: &WalRecord) {
    match rec {
        WalRecord::Meta { next_ts, clock } => {
            b.put_u8(TAG_META);
            b.put_u64_le(*next_ts);
            b.put_i64_le(*clock);
        }
        WalRecord::CreateTable { id, def } => {
            b.put_u8(TAG_CREATE_TABLE);
            b.put_u32_le(id.0);
            put_table_def(b, def);
        }
        WalRecord::DropTable { id } => {
            b.put_u8(TAG_DROP_TABLE);
            b.put_u32_le(id.0);
        }
        WalRecord::Commit {
            txn,
            commit_ts,
            writes,
        } => {
            b.put_u8(TAG_COMMIT);
            b.put_u64_le(*txn);
            b.put_u64_le(*commit_ts);
            b.put_u32_le(writes.len() as u32);
            for w in writes {
                put_write(b, w);
            }
        }
        WalRecord::SnapshotRow {
            table,
            row,
            commit_ts,
            op,
        } => {
            b.put_u8(TAG_SNAPSHOT_ROW);
            b.put_u32_le(table.0);
            b.put_u64_le(row.0);
            b.put_u64_le(*commit_ts);
            put_op(b, op);
        }
        WalRecord::Watermark { table, next_row_id } => {
            b.put_u8(TAG_WATERMARK);
            b.put_u32_le(table.0);
            b.put_u64_le(*next_row_id);
        }
        WalRecord::AbortMarker { commit_ts } => {
            b.put_u8(TAG_ABORT);
            b.put_u64_le(*commit_ts);
        }
        WalRecord::Barrier { barrier_ts, inner } => {
            b.put_u8(TAG_BARRIER);
            b.put_u64_le(*barrier_ts);
            put_record(b, inner);
        }
    }
}

/// Decode a record previously produced by [`encode_record`].
pub fn decode_record(mut data: &[u8]) -> Result<WalRecord> {
    let buf = &mut data;
    let rec = get_record(buf, 0)?;
    if !buf.is_empty() {
        return Err(corrupt(format!("{} trailing bytes", buf.len())));
    }
    Ok(rec)
}

/// Nesting bound for [`WalRecord::Barrier`]. The engine writes barriers
/// one level deep; the bound keeps a corrupt length-bombed log from
/// recursing the decoder off the stack.
const MAX_RECORD_DEPTH: u8 = 4;

fn get_record(buf: &mut &[u8], depth: u8) -> Result<WalRecord> {
    if depth > MAX_RECORD_DEPTH {
        return Err(corrupt("record nesting too deep".into()));
    }
    let tag = get_u8(buf)?;
    let rec = match tag {
        TAG_META => WalRecord::Meta {
            next_ts: get_u64(buf)?,
            clock: get_i64(buf)?,
        },
        TAG_CREATE_TABLE => WalRecord::CreateTable {
            id: TableId(get_u32(buf)?),
            def: get_table_def(buf)?,
        },
        TAG_DROP_TABLE => WalRecord::DropTable {
            id: TableId(get_u32(buf)?),
        },
        TAG_COMMIT => {
            let txn = get_u64(buf)?;
            let commit_ts = get_u64(buf)?;
            let n = get_u32(buf)? as usize;
            let mut writes = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                writes.push(get_write(buf)?);
            }
            WalRecord::Commit {
                txn,
                commit_ts,
                writes,
            }
        }
        TAG_SNAPSHOT_ROW => WalRecord::SnapshotRow {
            table: TableId(get_u32(buf)?),
            row: RowId(get_u64(buf)?),
            commit_ts: get_u64(buf)?,
            op: get_op(buf)?,
        },
        TAG_WATERMARK => WalRecord::Watermark {
            table: TableId(get_u32(buf)?),
            next_row_id: get_u64(buf)?,
        },
        TAG_ABORT => WalRecord::AbortMarker {
            commit_ts: get_u64(buf)?,
        },
        TAG_BARRIER => WalRecord::Barrier {
            barrier_ts: get_u64(buf)?,
            inner: Box::new(get_record(buf, depth + 1)?),
        },
        t => return Err(corrupt(format!("unknown record tag {t}"))),
    };
    Ok(rec)
}

fn put_write(b: &mut BytesMut, w: &WalWrite) {
    b.put_u32_le(w.table.0);
    b.put_u64_le(w.row.0);
    put_op(b, &w.op);
}

fn get_write(buf: &mut &[u8]) -> Result<WalWrite> {
    Ok(WalWrite {
        table: TableId(get_u32(buf)?),
        row: RowId(get_u64(buf)?),
        op: get_op(buf)?,
    })
}

pub(crate) fn put_op(b: &mut BytesMut, op: &WalOp) {
    match op {
        WalOp::Put(row) => {
            b.put_u8(OP_PUT);
            let values = row.values();
            b.put_u32_le(values.len() as u32);
            for v in values {
                put_value(b, v);
            }
        }
        WalOp::Delete => b.put_u8(OP_DELETE),
        WalOp::Patch {
            fields,
            values,
            anchors,
        } => {
            b.put_u8(OP_PATCH);
            b.put_u32_le(fields.len() as u32);
            for (f, v) in fields.iter().zip(values) {
                b.put_u32_le(*f);
                put_value(b, v);
            }
            b.put_u32_le(anchors.len() as u32);
            for a in anchors {
                b.put_u64_le(*a);
            }
        }
    }
}

pub(crate) fn get_op(buf: &mut &[u8]) -> Result<WalOp> {
    match get_u8(buf)? {
        OP_PUT => {
            let n = get_u32(buf)? as usize;
            let mut values = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                values.push(get_value(buf)?);
            }
            Ok(WalOp::Put(Row::new(values).into_shared()))
        }
        OP_DELETE => Ok(WalOp::Delete),
        OP_PATCH => {
            let n = get_u32(buf)? as usize;
            let mut fields = Vec::with_capacity(n.min(1 << 16));
            let mut values = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                fields.push(get_u32(buf)?);
                values.push(get_value(buf)?);
            }
            let m = get_u32(buf)? as usize;
            let mut anchors = Vec::with_capacity(m.min(1 << 16));
            for _ in 0..m {
                anchors.push(get_u64(buf)?);
            }
            Ok(WalOp::Patch {
                fields,
                values,
                anchors,
            })
        }
        t => Err(corrupt(format!("unknown op tag {t}"))),
    }
}

fn put_value(b: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => b.put_u8(VT_NULL),
        Value::Int(x) => {
            b.put_u8(VT_INT);
            b.put_i64_le(*x);
        }
        Value::Id(x) => {
            b.put_u8(VT_ID);
            b.put_u64_le(*x);
        }
        Value::Text(s) => {
            b.put_u8(VT_TEXT);
            put_bytes(b, s.as_bytes());
        }
        Value::Bool(x) => {
            b.put_u8(VT_BOOL);
            b.put_u8(*x as u8);
        }
        Value::Bytes(x) => {
            b.put_u8(VT_BYTES);
            put_bytes(b, x);
        }
        Value::Timestamp(x) => {
            b.put_u8(VT_TIMESTAMP);
            b.put_i64_le(*x);
        }
        Value::Float(x) => {
            b.put_u8(VT_FLOAT);
            b.put_f64_le(*x);
        }
    }
}

fn get_value(buf: &mut &[u8]) -> Result<Value> {
    Ok(match get_u8(buf)? {
        VT_NULL => Value::Null,
        VT_INT => Value::Int(get_i64(buf)?),
        VT_ID => Value::Id(get_u64(buf)?),
        VT_TEXT => {
            let raw = get_bytes(buf)?;
            Value::Text(String::from_utf8(raw).map_err(|e| corrupt(e.to_string()))?)
        }
        VT_BOOL => Value::Bool(get_u8(buf)? != 0),
        VT_BYTES => Value::Bytes(get_bytes(buf)?),
        VT_TIMESTAMP => Value::Timestamp(get_i64(buf)?),
        VT_FLOAT => Value::Float(get_f64(buf)?),
        t => return Err(corrupt(format!("unknown value tag {t}"))),
    })
}

fn put_table_def(b: &mut BytesMut, def: &TableDef) {
    put_bytes(b, def.name.as_bytes());
    b.put_u32_le(def.columns.len() as u32);
    for c in &def.columns {
        put_bytes(b, c.name.as_bytes());
        b.put_u8(type_tag(c.ty));
        b.put_u8(c.nullable as u8);
    }
    b.put_u32_le(def.indexes.len() as u32);
    for i in &def.indexes {
        put_bytes(b, i.name.as_bytes());
        b.put_u32_le(i.columns.len() as u32);
        for &c in &i.columns {
            b.put_u32_le(c as u32);
        }
        b.put_u8(i.unique as u8);
    }
}

fn get_table_def(buf: &mut &[u8]) -> Result<TableDef> {
    let name = get_string(buf)?;
    let ncols = get_u32(buf)? as usize;
    let mut columns = Vec::with_capacity(ncols.min(1 << 12));
    for _ in 0..ncols {
        let cname = get_string(buf)?;
        let ty = type_from_tag(get_u8(buf)?)?;
        let nullable = get_u8(buf)? != 0;
        columns.push(ColumnDef {
            name: cname,
            ty,
            nullable,
        });
    }
    let nidx = get_u32(buf)? as usize;
    let mut indexes = Vec::with_capacity(nidx.min(1 << 12));
    for _ in 0..nidx {
        let iname = get_string(buf)?;
        let nic = get_u32(buf)? as usize;
        let mut cols = Vec::with_capacity(nic.min(1 << 12));
        for _ in 0..nic {
            cols.push(get_u32(buf)? as usize);
        }
        let unique = get_u8(buf)? != 0;
        indexes.push(IndexDef {
            name: iname,
            columns: cols,
            unique,
        });
    }
    Ok(TableDef {
        name,
        columns,
        indexes,
    })
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Id => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
        DataType::Bytes => 4,
        DataType::Timestamp => 5,
        DataType::Float => 6,
    }
}

fn type_from_tag(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Id,
        2 => DataType::Text,
        3 => DataType::Bool,
        4 => DataType::Bytes,
        5 => DataType::Timestamp,
        6 => DataType::Float,
        t => return Err(corrupt(format!("unknown type tag {t}"))),
    })
}

fn put_bytes(b: &mut BytesMut, data: &[u8]) {
    b.put_u32_le(data.len() as u32);
    b.put_slice(data);
}

fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>> {
    let len = get_u32(buf)? as usize;
    if buf.len() < len {
        return Err(corrupt(format!(
            "byte string claims {len} bytes, {} remain",
            buf.len()
        )));
    }
    let out = buf[..len].to_vec();
    buf.advance(len);
    Ok(out)
}

fn get_string(buf: &mut &[u8]) -> Result<String> {
    String::from_utf8(get_bytes(buf)?).map_err(|e| corrupt(e.to_string()))
}

macro_rules! getter {
    ($name:ident, $ty:ty, $width:expr, $method:ident) => {
        fn $name(buf: &mut &[u8]) -> Result<$ty> {
            if buf.len() < $width {
                return Err(corrupt(format!(
                    concat!("need ", $width, " bytes, {} remain"),
                    buf.len()
                )));
            }
            Ok(buf.$method())
        }
    };
}

getter!(get_u32, u32, 4, get_u32_le);
getter!(get_u64, u64, 8, get_u64_le);
getter!(get_i64, i64, 8, get_i64_le);
getter!(get_f64, f64, 8, get_f64_le);

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.is_empty() {
        return Err(corrupt("need 1 byte, 0 remain".into()));
    }
    Ok(buf.get_u8())
}

fn corrupt(reason: String) -> StorageError {
    StorageError::WalCorrupt { offset: 0, reason }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: WalRecord) {
        let bytes = encode_record(&rec);
        let back = decode_record(&bytes).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn roundtrip_meta() {
        roundtrip(WalRecord::Meta {
            next_ts: 42,
            clock: -7,
        });
    }

    #[test]
    fn roundtrip_ddl() {
        let def = TableDef::new("chars")
            .column("id", DataType::Id)
            .nullable_column("note", DataType::Text)
            .column("flag", DataType::Bool)
            .unique_index("by_id", &["id"])
            .index("by_note", &["note", "flag"]);
        roundtrip(WalRecord::CreateTable {
            id: TableId(3),
            def,
        });
        roundtrip(WalRecord::DropTable { id: TableId(9) });
    }

    #[test]
    fn roundtrip_commit_with_all_value_types() {
        roundtrip(WalRecord::Commit {
            txn: 17,
            commit_ts: 99,
            writes: vec![
                WalWrite {
                    table: TableId(0),
                    row: RowId(1),
                    op: WalOp::Put(
                        Row::new(vec![
                            Value::Null,
                            Value::Int(-5),
                            Value::Id(u64::MAX),
                            Value::Text("héllo \u{1F600}".into()),
                            Value::Bool(true),
                            Value::Bytes(vec![0, 255, 128]),
                            Value::Timestamp(1_136_073_600_000_000),
                            Value::Float(-0.5),
                        ])
                        .into_shared(),
                    ),
                },
                WalWrite {
                    table: TableId(1),
                    row: RowId(2),
                    op: WalOp::Delete,
                },
            ],
        });
    }

    #[test]
    fn roundtrip_commit_with_patch() {
        roundtrip(WalRecord::Commit {
            txn: 18,
            commit_ts: 100,
            writes: vec![WalWrite {
                table: TableId(4),
                row: RowId(9),
                op: WalOp::Patch {
                    fields: vec![2, 6],
                    values: vec![Value::Id(77), Value::Timestamp(123)],
                    anchors: vec![154, u64::MAX],
                },
            }],
        });
        // An anchor-free patch (tombstone/style writes) also survives.
        roundtrip(WalRecord::Commit {
            txn: 19,
            commit_ts: 101,
            writes: vec![WalWrite {
                table: TableId(4),
                row: RowId(10),
                op: WalOp::Patch {
                    fields: vec![7],
                    values: vec![Value::Bool(true)],
                    anchors: vec![],
                },
            }],
        });
    }

    #[test]
    fn roundtrip_snapshot_row() {
        roundtrip(WalRecord::SnapshotRow {
            table: TableId(2),
            row: RowId(77),
            commit_ts: 5,
            op: WalOp::Put(Row::new(vec![Value::Text("x".into())]).into_shared()),
        });
    }

    #[test]
    fn roundtrip_watermark() {
        roundtrip(WalRecord::Watermark {
            table: TableId(3),
            next_row_id: 1_000_001,
        });
    }

    #[test]
    fn roundtrip_abort_marker() {
        roundtrip(WalRecord::AbortMarker { commit_ts: 321 });
    }

    #[test]
    fn roundtrip_barrier() {
        roundtrip(WalRecord::Barrier {
            barrier_ts: 55,
            inner: Box::new(WalRecord::DropTable { id: TableId(2) }),
        });
        let def = TableDef::new("docs").column("id", DataType::Id);
        roundtrip(WalRecord::Barrier {
            barrier_ts: 0,
            inner: Box::new(WalRecord::CreateTable {
                id: TableId(1),
                def,
            }),
        });
    }

    #[test]
    fn decode_rejects_overdeep_barrier_nesting() {
        let mut rec = WalRecord::AbortMarker { commit_ts: 1 };
        for _ in 0..16 {
            rec = WalRecord::Barrier {
                barrier_ts: 1,
                inner: Box::new(rec),
            };
        }
        let bytes = encode_record(&rec);
        assert!(matches!(
            decode_record(&bytes),
            Err(StorageError::WalCorrupt { .. })
        ));
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        assert!(matches!(
            decode_record(&[200]),
            Err(StorageError::WalCorrupt { .. })
        ));
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = encode_record(&WalRecord::Meta {
            next_ts: 1,
            clock: 1,
        });
        for cut in 0..bytes.len() {
            assert!(
                decode_record(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut bytes = encode_record(&WalRecord::DropTable { id: TableId(1) }).to_vec();
        bytes.push(0);
        assert!(decode_record(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_invalid_utf8_text() {
        // Hand-craft a Put with invalid UTF-8 in a Text value.
        let mut b = BytesMut::new();
        b.put_u8(TAG_SNAPSHOT_ROW);
        b.put_u32_le(0);
        b.put_u64_le(1);
        b.put_u64_le(1);
        b.put_u8(OP_PUT);
        b.put_u32_le(1);
        b.put_u8(VT_TEXT);
        b.put_u32_le(2);
        b.put_slice(&[0xFF, 0xFE]);
        assert!(decode_record(&b).is_err());
    }

    #[test]
    fn decode_rejects_overlong_length_prefix() {
        let mut b = BytesMut::new();
        b.put_u8(TAG_SNAPSHOT_ROW);
        b.put_u32_le(0);
        b.put_u64_le(1);
        b.put_u64_le(1);
        b.put_u8(OP_PUT);
        b.put_u32_le(1);
        b.put_u8(VT_BYTES);
        b.put_u32_le(u32::MAX); // claims 4 GiB
        assert!(decode_record(&b).is_err());
    }
}
