//! The physical log file: framing, append, replay, checkpoint rotation.
//!
//! Frame layout per record: `[u32 payload_len][u32 crc32(payload)][payload]`
//! (little-endian). Replay stops cleanly at the first frame that is
//! truncated or fails its CRC — that is the torn tail of a crashed append,
//! and everything before it is intact by construction (frames are written
//! with a single `write_all`).
//!
//! All file access goes through the [`Vfs`] seam so the same code path
//! runs against the real disk ([`crate::vfs::OsVfs`], the default) and
//! the crash simulator ([`crate::vfs::SimVfs`]).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::{Result, StorageError};
use crate::util::crc32;
use crate::vfs::{os_vfs, Vfs, VfsFile};
use crate::wal::codec::{decode_record, encode_record};
use crate::wal::{DurabilityLevel, WalRecord};

/// An append-only log file.
#[derive(Debug)]
pub struct WalFile {
    path: PathBuf,
    vfs: Arc<dyn Vfs>,
    writer: Box<dyn VfsFile>,
    durability: DurabilityLevel,
    records_written: u64,
    bytes_written: u64,
}

impl WalFile {
    /// Open (creating if needed) the log at `path` for appending, on the
    /// real file system.
    pub fn open(path: impl Into<PathBuf>, durability: DurabilityLevel) -> Result<Self> {
        Self::open_on(os_vfs(), path, durability)
    }

    /// Open (creating if needed) the log at `path` for appending, on an
    /// explicit [`Vfs`] backend.
    pub fn open_on(
        vfs: Arc<dyn Vfs>,
        path: impl Into<PathBuf>,
        durability: DurabilityLevel,
    ) -> Result<Self> {
        let path = path.into();
        let created = !vfs.exists(&path);
        let writer = vfs.open_append(&path)?;
        if created {
            // A freshly created file's directory entry is not durable
            // until the directory itself is fsynced: without this, a
            // crash could erase the whole log even after `Fsync`-level
            // commits were acknowledged (the data blocks persist but
            // nothing references them).
            vfs.sync_dir(&path)?;
        }
        Ok(WalFile {
            path,
            vfs,
            writer,
            durability,
            records_written: 0,
            bytes_written: 0,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn durability(&self) -> DurabilityLevel {
        self.durability
    }

    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Bytes appended (or rewritten) since this handle was opened. Both
    /// counters restart at open, so for a recovered log they measure
    /// *growth* since recovery — exactly what checkpoint budgets want.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Append one record, honouring the durability level.
    pub fn append(&mut self, rec: &WalRecord) -> Result<()> {
        let frame = encode_frame(rec);
        self.writer.write_all(&frame)?;
        match self.durability {
            DurabilityLevel::None => {}
            DurabilityLevel::Buffered => self.writer.flush()?,
            DurabilityLevel::Fsync => {
                self.writer.flush()?;
                self.writer.sync_data()?;
            }
        }
        self.records_written += 1;
        self.bytes_written += frame.len() as u64;
        Ok(())
    }

    /// Append a batch of pre-framed records (see [`encode_frame`]) with a
    /// single `write_all`, then apply `durability` once for the whole
    /// batch. This is the group-commit fast path: one syscall (plus at
    /// most one fsync) covers every record in the batch.
    pub fn append_batch(
        &mut self,
        frames: &[u8],
        records: u64,
        durability: DurabilityLevel,
    ) -> Result<()> {
        if !frames.is_empty() {
            self.writer.write_all(frames)?;
        }
        match durability {
            DurabilityLevel::None => {}
            DurabilityLevel::Buffered => self.writer.flush()?,
            DurabilityLevel::Fsync => {
                self.writer.flush()?;
                self.writer.sync_data()?;
            }
        }
        self.records_written += records;
        self.bytes_written += frames.len() as u64;
        Ok(())
    }

    /// Flush and fsync regardless of level (used at clean shutdown and
    /// after checkpoints).
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.sync_data()?;
        Ok(())
    }

    /// Replace this log's contents with `records`, atomically.
    ///
    /// Writes a sibling temp file, fsyncs it, then renames over the live
    /// log — the checkpoint either fully lands or the old log survives.
    pub fn rewrite(&mut self, records: &[WalRecord]) -> Result<()> {
        let tmp = self.path.with_extension("wal.tmp");
        let mut buf = Vec::new();
        for rec in records {
            let payload = encode_record(rec);
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(&payload).to_le_bytes());
            buf.extend_from_slice(&payload);
        }
        let bytes = buf.len() as u64;
        {
            let mut w = self.vfs.create(&tmp)?;
            w.write_all(&buf)?;
            w.flush()?;
            w.sync_data()?;
        }
        self.vfs.rename(&tmp, &self.path)?;
        // The rename is only durable once the directory entry itself is
        // on disk: without this fsync a crash can resurrect the old log
        // (or worse, leave a dangling entry) even though the data file
        // was synced.
        self.vfs.sync_dir(&self.path)?;
        self.writer = self.vfs.open_append(&self.path)?;
        self.records_written = records.len() as u64;
        self.bytes_written = bytes;
        Ok(())
    }

    /// Read every intact record currently in the log at `path`, on the
    /// real file system.
    pub fn replay(path: &Path) -> Result<Vec<WalRecord>> {
        Ok(Self::replay_with_valid_len(path)?.0)
    }

    /// [`WalFile::replay_with_valid_len`] on the real file system.
    pub fn replay_with_valid_len(path: &Path) -> Result<(Vec<WalRecord>, u64)> {
        Self::replay_with_valid_len_on(&*os_vfs(), path)
    }

    /// Read every intact record and report the byte offset of the end of
    /// the last valid frame. Callers reopening the log for append MUST
    /// truncate to that offset first, or a torn tail would be buried
    /// under fresh records and read as mid-log corruption later.
    pub fn replay_with_valid_len_on(vfs: &dyn Vfs, path: &Path) -> Result<(Vec<WalRecord>, u64)> {
        if !vfs.exists(path) {
            return Ok((Vec::new(), 0));
        }
        let data = vfs.read(path)?;
        let mut iter = WalIter::new(&data);
        let mut records = Vec::new();
        let mut valid = 0u64;
        while let Some(item) = iter.next() {
            records.push(item?);
            valid = iter.offset as u64;
        }
        Ok((records, valid))
    }

    /// Like [`WalFile::replay_with_valid_len_on`], but each record
    /// carries the byte offset of the end of its own frame. The sharded
    /// WAL's merged recovery needs per-frame offsets: after cutting the
    /// global contiguous prefix it truncates each shard file at the end
    /// of the last frame that survived the cut, not merely at the last
    /// intact frame.
    pub fn replay_with_offsets_on(
        vfs: &dyn Vfs,
        path: &Path,
    ) -> Result<(Vec<(WalRecord, u64)>, u64)> {
        if !vfs.exists(path) {
            return Ok((Vec::new(), 0));
        }
        let data = vfs.read(path)?;
        let mut iter = WalIter::new(&data);
        let mut records = Vec::new();
        let mut valid = 0u64;
        while let Some(item) = iter.next() {
            let rec = item?;
            valid = iter.offset as u64;
            records.push((rec, valid));
        }
        Ok((records, valid))
    }

    /// Truncate the log file at `path` to `len` bytes (crash-tail
    /// repair), on the real file system.
    pub fn truncate(path: &Path, len: u64) -> Result<()> {
        Self::truncate_on(&*os_vfs(), path, len)
    }

    /// Truncate the log file at `path` to `len` bytes (crash-tail
    /// repair). The backend makes the shrink itself durable (`fsync`,
    /// not `fdatasync`: it is a metadata change); the parent-dir sync
    /// covers file systems where the length lives in the dirent.
    pub fn truncate_on(vfs: &dyn Vfs, path: &Path, len: u64) -> Result<()> {
        if !vfs.exists(path) {
            return Ok(());
        }
        vfs.truncate(path, len)?;
        vfs.sync_dir(path)?;
        Ok(())
    }
}

/// Encode one record as a complete WAL frame
/// (`[u32 len][u32 crc32][payload]`).
pub(crate) fn encode_frame(rec: &WalRecord) -> Vec<u8> {
    let payload = encode_record(rec);
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Iterator over framed records in a byte buffer.
///
/// Yields `Ok(record)` for each intact frame. A truncated or CRC-failing
/// tail ends iteration silently (torn write); a CRC failure *followed by
/// more data* is real corruption and yields an error.
pub struct WalIter<'a> {
    data: &'a [u8],
    pub(crate) offset: usize,
}

impl<'a> WalIter<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        WalIter { data, offset: 0 }
    }
}

impl<'a> Iterator for WalIter<'a> {
    type Item = Result<WalRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        let rest = &self.data[self.offset..];
        if rest.is_empty() {
            return None;
        }
        if rest.len() < 8 {
            return None; // torn header
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if rest.len() < 8 + len {
            return None; // torn payload
        }
        let payload = &rest[8..8 + len];
        let frame_end = self.offset + 8 + len;
        if crc32(payload) != crc {
            let trailing = self.data.len() - frame_end;
            self.offset = self.data.len();
            // A bad frame at the tail — or followed by fewer bytes than
            // a frame header — is a torn write: a power cut can tear the
            // final sector across the boundary of the last complete
            // frame, garbling its checksum while scraps of the next
            // frame sit after it. Scraps that small can never hold a
            // real frame, so nothing durable is being discarded. A bad
            // frame with room for real frames after it, by contrast, is
            // mid-log corruption and must surface as an error.
            if trailing < 8 {
                return None;
            }
            return Some(Err(StorageError::WalCorrupt {
                offset: self.offset as u64,
                reason: "CRC mismatch mid-log".into(),
            }));
        }
        self.offset = frame_end;
        match decode_record(payload) {
            Ok(rec) => Some(Ok(rec)),
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableId;
    use crate::table::Ts;

    fn tmpdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tendax-wal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn meta(ts: Ts) -> WalRecord {
        WalRecord::Meta {
            next_ts: ts,
            clock: ts as i64,
        }
    }

    #[test]
    fn append_and_replay() {
        let path = tmpdir().join("basic.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = WalFile::open(&path, DurabilityLevel::Buffered).unwrap();
        wal.append(&meta(1)).unwrap();
        wal.append(&WalRecord::DropTable { id: TableId(4) })
            .unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.records_written(), 2);

        let recs = WalFile::replay(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], meta(1));
        assert_eq!(recs[1], WalRecord::DropTable { id: TableId(4) });
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let path = tmpdir().join("nonexistent.wal");
        let _ = std::fs::remove_file(&path);
        assert!(WalFile::replay(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_discarded_silently() {
        let path = tmpdir().join("torn.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = WalFile::open(&path, DurabilityLevel::Buffered).unwrap();
        wal.append(&meta(1)).unwrap();
        wal.append(&meta(2)).unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Truncate mid-way through the second frame.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let recs = WalFile::replay(&path).unwrap();
        assert_eq!(recs, vec![meta(1)]);
    }

    #[test]
    fn tear_straddling_last_frame_boundary_is_a_torn_tail() {
        let path = tmpdir().join("straddle.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = WalFile::open(&path, DurabilityLevel::Buffered).unwrap();
        wal.append(&meta(1)).unwrap();
        wal.append(&meta(2)).unwrap();
        wal.sync().unwrap();
        drop(wal);

        // A torn final sector can straddle the last frame boundary:
        // the tail of the last complete frame is garbled AND a few
        // scrap bytes of a never-completed next frame follow it. The
        // scraps are too short to be a frame, so this must replay as a
        // torn tail ending at the last good frame — not error out.
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        data.extend_from_slice(&[0xFF; 5]);
        std::fs::write(&path, &data).unwrap();
        let recs = WalFile::replay(&path).unwrap();
        assert_eq!(recs, vec![meta(1)]);
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let path = tmpdir().join("corrupt.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = WalFile::open(&path, DurabilityLevel::Buffered).unwrap();
        wal.append(&meta(1)).unwrap();
        wal.append(&meta(2)).unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Flip a payload byte in the FIRST frame.
        let mut data = std::fs::read(&path).unwrap();
        data[10] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let result: Result<Vec<_>> = WalIter::new(&std::fs::read(&path).unwrap()).collect();
        assert!(matches!(result, Err(StorageError::WalCorrupt { .. })));
    }

    #[test]
    fn rewrite_replaces_contents_atomically() {
        let path = tmpdir().join("rewrite.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = WalFile::open(&path, DurabilityLevel::Buffered).unwrap();
        for i in 1..=10 {
            wal.append(&meta(i)).unwrap();
        }
        wal.rewrite(&[meta(100)]).unwrap();
        // Appends continue to work after rotation.
        wal.append(&meta(101)).unwrap();
        wal.sync().unwrap();
        let recs = WalFile::replay(&path).unwrap();
        assert_eq!(recs, vec![meta(100), meta(101)]);
    }

    #[test]
    fn fsync_level_persists() {
        let path = tmpdir().join("fsync.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = WalFile::open(&path, DurabilityLevel::Fsync).unwrap();
        wal.append(&meta(7)).unwrap();
        // No explicit sync: fsync level already flushed.
        let recs = WalFile::replay(&path).unwrap();
        assert_eq!(recs, vec![meta(7)]);
    }

    #[test]
    fn empty_log_replays_empty() {
        let path = tmpdir().join("empty.wal");
        let _ = std::fs::remove_file(&path);
        let _wal = WalFile::open(&path, DurabilityLevel::Buffered).unwrap();
        assert!(WalFile::replay(&path).unwrap().is_empty());
    }
}
