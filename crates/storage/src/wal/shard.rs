//! Sharded WAL: per-shard log files with parallel group-commit fsync.
//!
//! [`ShardedWal`] partitions the log across `n` files — the base path
//! (shard 0, same file the single-file WAL uses) plus siblings
//! `<path>.shard1`, `<path>.shard2`, … Each commit's frame is routed to
//! one shard by a multiplicative hash of the lowest `TableId` it
//! touches, so commits over disjoint tables land on different files and
//! their group-commit flush leaders run — and fsync — **in parallel**.
//!
//! What stays global:
//!
//! * **Routing order.** A single contiguous cursor (`routed_ts`) moves
//!   staged frames into per-shard batch buffers strictly in commit-ts
//!   order, so every shard file is a ts-*ordered subsequence* of the
//!   commit stream.
//! * **The ack horizon.** `wait_durable` blocks until the *global*
//!   contiguous prefix of commit timestamps is durable, not merely the
//!   caller's own shard. Recovery replays only the global contiguous
//!   prefix (a torn tail in any shard cuts it at the first missing
//!   ts), so acking anything less would un-promise a durable commit.
//!   Parallel fsyncs still win: N leaders are in flight at once, and a
//!   waiter whose own frame is synced will lead the shard holding the
//!   next gap rather than parking.
//!
//! Aborted-after-allocation timestamps would otherwise be permanent
//! holes in the merged prefix, so [`ShardedWal::skip_commit`] stages a
//! durable [`WalRecord::AbortMarker`] through the normal lifecycle.
//! DDL and checkpoint-snapshot records are written as
//! [`WalRecord::Barrier`] frames in shard 0 (see
//! [`ShardedWal::enqueue`]), carrying the commit watermark they were
//! latched at; merged replay orders a barrier after the commit with its
//! timestamp, reproducing the original exclusive-latch order.
//!
//! Checkpoints rewrite **only the base file** via tmp+rename (one
//! atomic commit point), with mid-rewrite frames routed to shard 0 and
//! spliced after the swap, then empty each sibling atomically — a crash
//! anywhere leaves either the old layout or the new snapshot plus a
//! replayable prefix, never a hybrid (stale sibling frames carry
//! timestamps at or below the new snapshot's floor and are skipped and
//! truncated on reopen).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::error::{Result, StorageError};
use crate::table::Ts;
use crate::vfs::Vfs;
use crate::wal::log::encode_frame;
use crate::wal::{DurabilityLevel, WalFile, WalRecord, WalStats, WalTicket};

/// The file path of shard `shard` for a WAL based at `base`: shard 0
/// *is* the base path (byte-identical layout to the single-file WAL),
/// shard `k >= 1` appends `.shard<k>` to the full file name.
pub fn shard_path(base: &Path, shard: usize) -> PathBuf {
    if shard == 0 {
        return base.to_path_buf();
    }
    let mut name = base.as_os_str().to_os_string();
    name.push(format!(".shard{shard}"));
    PathBuf::from(name)
}

/// How many shard files exist on disk at `base`: the base file plus the
/// contiguous run of `.shard<k>` siblings starting at `k = 1`.
/// Discovery stops at the first missing sibling, which is why shard
/// removal (re-shard down) deletes the highest-numbered sibling first.
pub fn discover_shards_on(vfs: &dyn Vfs, base: &Path) -> usize {
    let mut n = 1;
    while vfs.exists(&shard_path(base, n)) {
        n += 1;
    }
    n
}

/// Route a commit to a shard by its lowest touched table id. The
/// multiplicative hash (Fibonacci constant) spreads the sequential ids
/// a schema hands out; plain `id % n` would glue adjacent tables to
/// adjacent shards and stripe badly for small table counts.
pub(crate) fn shard_of(route: u64, shards: usize) -> usize {
    (route.wrapping_mul(0x9E37_79B9_7F4A_7C15) % shards as u64) as usize
}

/// Per-shard flush counters (the A11 contention receipts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalShardStats {
    /// Shard index (0 = the base file).
    pub shard: usize,
    /// Batches written by this shard's flush leaders.
    pub batches_flushed: u64,
    /// Records covered by those batches.
    pub records_flushed: u64,
    /// `sync_data` calls issued (one per batch at `Fsync`, else 0).
    pub fsyncs: u64,
    /// Bytes appended by this shard's leaders.
    pub bytes_flushed: u64,
    /// Total time committers routed to this shard spent inside
    /// `wait_durable` — the fsync-queue wait the sharding exists to
    /// shrink.
    pub flush_wait_ns: u64,
}

#[derive(Debug, Default)]
struct ShardCounters {
    batches: AtomicU64,
    records: AtomicU64,
    fsyncs: AtomicU64,
    bytes: AtomicU64,
    flush_wait_ns: AtomicU64,
}

/// Where a routed commit timestamp stands on its way to the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TsState {
    /// Frame sits in shard `k`'s batch buffer (possibly mid-flight with
    /// that shard's leader — `leader_active` disambiguates).
    Buffered(usize),
    /// Frame is on disk at the configured durability level; waiting for
    /// every lower timestamp before the global horizon can advance.
    Synced,
}

#[derive(Debug, Default)]
struct ShardSub {
    /// Encoded frames routed here, not yet taken by a flush leader.
    buf: Vec<u8>,
    /// Records in `buf`.
    records: u64,
    /// Timestamps of the frames in `buf`, in order.
    tss: Vec<Ts>,
    /// A flush leader is writing this shard's file outside the lock.
    leader_active: bool,
}

#[derive(Debug, Default)]
struct ShardState {
    /// Commit frames staged out of order: ts → (shard, frame). Waiting
    /// for every lower timestamp to stage or skip.
    staged: BTreeMap<Ts, (usize, Vec<u8>)>,
    /// Every ts <= this has been routed into a shard buffer (or
    /// further). Shard buffers — and therefore shard files — receive
    /// frames in this cursor's order.
    routed_ts: Ts,
    /// Routed timestamps not yet swallowed by the durable horizon.
    status: BTreeMap<Ts, TsState>,
    /// Every commit ts <= this is durable at the configured level.
    /// The only horizon `wait_durable` acks against.
    durable_ts: Ts,
    /// Barrier sequence numbers (mirrors `GroupWal`'s Seq tickets).
    enqueued: u64,
    durable: u64,
    per_shard: Vec<ShardSub>,
    /// Count of shards with an active flush leader.
    leaders: usize,
    /// A barrier write or checkpoint rewrite owns all files; no leader
    /// may start.
    exclusive_io: bool,
    /// Checkpoint rewrite window: route every new frame to shard 0 so
    /// siblings stay untouched and can be emptied atomically.
    route_to_zero: bool,
    /// Commit watermark captured at `begin_rewrite` (the snapshot's
    /// barrier timestamp).
    rewrite_floor: Ts,
    /// Sticky flush failure. Set once, never cleared.
    poison: Option<String>,
}

/// The sharded group-commit write-ahead log. See the module docs for
/// the protocol; the external surface mirrors [`crate::wal::GroupWal`]
/// except that [`ShardedWal::stage_commit`] takes a routing key.
///
/// Sharded mode always batches per shard (the group protocol); the
/// per-record-flush A/B baseline exists only in the single-file WAL.
#[derive(Debug)]
pub struct ShardedWal {
    state: Mutex<ShardState>,
    cv: Condvar,
    files: Vec<Mutex<WalFile>>,
    durability: DurabilityLevel,
    counters: Vec<ShardCounters>,
    fsyncs_saved: AtomicU64,
    /// High-water mark of concurrently active flush leaders — the
    /// "parallel fsync actually happened" receipt.
    max_leaders: AtomicU64,
}

/// At [`DurabilityLevel::None`] there is no wait to piggyback flushes
/// on; drain once the buffers hold this many bytes in total.
const NONE_FLUSH_THRESHOLD: usize = 1 << 20;

impl ShardedWal {
    /// `files[k]` must be the open [`WalFile`] for [`shard_path`] `k`.
    /// `base_ts` is the newest commit timestamp already recovered from
    /// the merged logs; the routing cursor starts there.
    pub fn new(files: Vec<WalFile>, durability: DurabilityLevel, base_ts: Ts) -> ShardedWal {
        assert!(!files.is_empty(), "sharded WAL needs at least one file");
        let n = files.len();
        ShardedWal {
            state: Mutex::new(ShardState {
                routed_ts: base_ts,
                durable_ts: base_ts,
                per_shard: (0..n).map(|_| ShardSub::default()).collect(),
                ..ShardState::default()
            }),
            cv: Condvar::new(),
            files: files.into_iter().map(Mutex::new).collect(),
            durability,
            counters: (0..n).map(|_| ShardCounters::default()).collect(),
            fsyncs_saved: AtomicU64::new(0),
            max_leaders: AtomicU64::new(0),
        }
    }

    pub fn durability(&self) -> DurabilityLevel {
        self.durability
    }

    pub fn shard_count(&self) -> usize {
        self.files.len()
    }

    /// Aggregate stats, shape-compatible with the single-file WAL's.
    pub fn stats(&self) -> WalStats {
        let mut s = WalStats::default();
        for c in &self.counters {
            s.batches_flushed += c.batches.load(Ordering::Relaxed);
            s.records_flushed += c.records.load(Ordering::Relaxed);
        }
        s.fsyncs_saved = self.fsyncs_saved.load(Ordering::Relaxed);
        s
    }

    /// Per-shard receipts.
    pub fn shard_stats(&self) -> Vec<WalShardStats> {
        self.counters
            .iter()
            .enumerate()
            .map(|(i, c)| WalShardStats {
                shard: i,
                batches_flushed: c.batches.load(Ordering::Relaxed),
                records_flushed: c.records.load(Ordering::Relaxed),
                fsyncs: c.fsyncs.load(Ordering::Relaxed),
                bytes_flushed: c.bytes.load(Ordering::Relaxed),
                flush_wait_ns: c.flush_wait_ns.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Most flush leaders ever concurrently in flight.
    pub fn max_concurrent_leaders(&self) -> u64 {
        self.max_leaders.load(Ordering::Relaxed)
    }

    /// Stage a non-commit record (DDL, mid-life snapshots) as a
    /// [`WalRecord::Barrier`] in shard 0. Must be called with the
    /// commit pipeline quiesced (exclusive commit latch): every
    /// allocated timestamp has staged or skipped, so the routing cursor
    /// equals the commit watermark and becomes the barrier's timestamp.
    ///
    /// Writes synchronously: all shard buffers are force-flushed first
    /// (a barrier only replays if every commit at or below its
    /// watermark survives, so its durability promise is only as good as
    /// theirs), then the barrier frame lands in shard 0 at the
    /// configured durability.
    pub fn enqueue(&self, rec: &WalRecord) -> Result<WalTicket> {
        let mut st = self.state.lock();
        Self::check_poison(&st)?;
        while st.exclusive_io || st.leaders > 0 {
            self.cv.wait(&mut st);
            Self::check_poison(&st)?;
        }
        st.exclusive_io = true;
        debug_assert!(
            st.staged.is_empty(),
            "barrier enqueued with commits mid-critical-section"
        );
        let barrier_ts = st.routed_ts;
        st.enqueued += 1;
        let seq = st.enqueued;
        let batches: Vec<(usize, Vec<u8>, u64, Vec<Ts>)> = st
            .per_shard
            .iter_mut()
            .enumerate()
            .filter(|(_, sub)| !sub.buf.is_empty())
            .map(|(k, sub)| {
                (
                    k,
                    std::mem::take(&mut sub.buf),
                    std::mem::take(&mut sub.records),
                    std::mem::take(&mut sub.tss),
                )
            })
            .collect();
        drop(st);

        let frame = encode_frame(&WalRecord::Barrier {
            barrier_ts,
            inner: Box::new(rec.clone()),
        });
        let mut res = Ok(());
        let mut flushed: Vec<Ts> = Vec::new();
        for (k, buf, records, tss) in &batches {
            res = self.files[*k]
                .lock()
                .append_batch(buf, *records, self.durability);
            if res.is_err() {
                break;
            }
            self.note_flush(*k, *records, buf.len());
            flushed.extend_from_slice(tss);
        }
        if res.is_ok() {
            res = self.files[0]
                .lock()
                .append_batch(&frame, 1, self.durability);
            if res.is_ok() {
                self.note_flush(0, 1, frame.len());
            }
        }

        let mut st = self.state.lock();
        st.exclusive_io = false;
        match res {
            Ok(()) => {
                for ts in flushed {
                    st.status.insert(ts, TsState::Synced);
                }
                Self::advance_durable(&mut st);
                debug_assert!(
                    st.durable_ts >= barrier_ts || self.durability == DurabilityLevel::None
                );
                st.durable = st.durable.max(seq);
                self.cv.notify_all();
                Ok(WalTicket::Seq(seq))
            }
            Err(e) => Err(self.poison_with(&mut st, e)),
        }
    }

    /// Stage a commit record under its commit timestamp, routed by
    /// `route` (the lowest `TableId` the commit touches). Same contract
    /// as the single-file WAL: called under the committer's table
    /// locks, no I/O, and an error obliges the caller to
    /// [`ShardedWal::skip_commit`].
    pub fn stage_commit(&self, ts: Ts, rec: &WalRecord, route: u64) -> Result<WalTicket> {
        let frame = encode_frame(rec);
        let shard = shard_of(route, self.files.len());
        let mut st = self.state.lock();
        Self::check_poison(&st)?;
        debug_assert!(ts > st.routed_ts, "commit ts staged twice or behind cursor");
        st.staged.insert(ts, (shard, frame));
        self.drain_staged(&mut st);
        Ok(WalTicket::Commit(ts))
    }

    /// Mark `ts` aborted-after-allocation. Unlike the single-file WAL's
    /// markerless skip, this stages a durable [`WalRecord::AbortMarker`]
    /// frame (routed by the timestamp itself): merged recovery replays
    /// the global contiguous ts prefix, so a silent hole would cap
    /// recovery at the aborted timestamp forever. Never blocks and
    /// deliberately ignores poison — releasing the slot must always
    /// succeed so other committers' frames keep draining.
    pub fn skip_commit(&self, ts: Ts) {
        let frame = encode_frame(&WalRecord::AbortMarker { commit_ts: ts });
        let shard = shard_of(ts, self.files.len());
        let mut st = self.state.lock();
        if ts > st.routed_ts {
            st.staged.insert(ts, (shard, frame));
            self.drain_staged(&mut st);
        }
    }

    /// Move the contiguous prefix of staged frames into their shard
    /// buffers, in commit-ts order — each shard file is a ts-ordered
    /// subsequence of the global stream because frames only enter
    /// buffers through this cursor.
    fn drain_staged(&self, st: &mut ShardState) {
        let mut advanced = false;
        loop {
            let next = st.routed_ts + 1;
            match st.staged.remove(&next) {
                Some((shard, frame)) => {
                    let k = if st.route_to_zero { 0 } else { shard };
                    let sub = &mut st.per_shard[k];
                    sub.buf.extend_from_slice(&frame);
                    sub.records += 1;
                    sub.tss.push(next);
                    st.status.insert(next, TsState::Buffered(k));
                    st.routed_ts = next;
                    advanced = true;
                }
                None => break,
            }
        }
        if advanced {
            self.cv.notify_all();
        }
    }

    /// Block until the ticket's record is durable at the configured
    /// level — for commits, until the **global** contiguous prefix
    /// covers it. Called with no database locks held.
    pub fn wait_durable(&self, ticket: WalTicket) -> Result<()> {
        match ticket {
            WalTicket::Seq(seq) => self.wait_seq(seq),
            WalTicket::Commit(ts) => self.wait_commit(ts),
        }
    }

    fn wait_seq(&self, seq: u64) -> Result<()> {
        // Barriers are written synchronously by enqueue; this only ever
        // parks if called concurrently with the enqueue itself.
        let mut st = self.state.lock();
        loop {
            Self::check_poison(&st)?;
            if st.durable >= seq {
                return Ok(());
            }
            self.cv.wait(&mut st);
        }
    }

    fn wait_commit(&self, ts: Ts) -> Result<()> {
        if self.durability == DurabilityLevel::None {
            return self.opportunistic_drain();
        }
        let started = Instant::now();
        let mut my_shard: Option<usize> = None;
        let mut st = self.state.lock();
        loop {
            Self::check_poison(&st)?;
            if st.durable_ts >= ts {
                drop(st);
                if let Some(k) = my_shard {
                    self.counters[k]
                        .flush_wait_ns
                        .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
                return Ok(());
            }
            if let Some(TsState::Buffered(k)) = st.status.get(&ts) {
                my_shard = Some(*k);
            }
            // Lead our own shard if our frame sits in its buffer; else
            // lead the shard holding the frame right after the durable
            // horizon (liveness: abort markers have no waiter of their
            // own, and our own shard may already be synced while a gap
            // below us sits leaderless).
            let lead = if st.exclusive_io {
                None
            } else {
                let own = my_shard.filter(|&k| {
                    !st.per_shard[k].leader_active
                        && matches!(st.status.get(&ts), Some(TsState::Buffered(_)))
                });
                own.or_else(|| match st.status.get(&(st.durable_ts + 1)) {
                    Some(TsState::Buffered(j)) if !st.per_shard[*j].leader_active => Some(*j),
                    _ => None,
                })
            };
            match lead {
                Some(k) => st = self.flush_shard(st, k)?,
                None => self.cv.wait(&mut st),
            }
        }
    }

    /// `DurabilityLevel::None`: no durability to wait for; drain only
    /// when the buffers get large, to bound memory.
    fn opportunistic_drain(&self) -> Result<()> {
        let mut st = self.state.lock();
        let total: usize = st.per_shard.iter().map(|s| s.buf.len()).sum();
        if total < NONE_FLUSH_THRESHOLD || st.exclusive_io {
            return Ok(());
        }
        for k in 0..self.files.len() {
            if st.per_shard[k].buf.is_empty() || st.per_shard[k].leader_active || st.exclusive_io {
                continue;
            }
            st = self.flush_shard(st, k)?;
        }
        Ok(())
    }

    /// Leader path for one shard: take its batch, write it with the
    /// state lock released (committers keep staging, and leaders of
    /// *other* shards keep flushing — this is the parallelism the
    /// sharding buys), publish, wake everyone.
    fn flush_shard<'a>(
        &'a self,
        mut st: parking_lot::MutexGuard<'a, ShardState>,
        k: usize,
    ) -> Result<parking_lot::MutexGuard<'a, ShardState>> {
        st.per_shard[k].leader_active = true;
        st.leaders += 1;
        self.max_leaders
            .fetch_max(st.leaders as u64, Ordering::Relaxed);
        let sub = &mut st.per_shard[k];
        let buf = std::mem::take(&mut sub.buf);
        let records = std::mem::take(&mut sub.records);
        let tss = std::mem::take(&mut sub.tss);
        drop(st);
        let res = if records > 0 {
            self.files[k]
                .lock()
                .append_batch(&buf, records, self.durability)
        } else {
            Ok(())
        };
        let mut st = self.state.lock();
        st.per_shard[k].leader_active = false;
        st.leaders -= 1;
        match res {
            Ok(()) => {
                if records > 0 {
                    self.note_flush(k, records, buf.len());
                }
                for ts in tss {
                    st.status.insert(ts, TsState::Synced);
                }
                Self::advance_durable(&mut st);
                self.cv.notify_all();
                Ok(st)
            }
            Err(e) => Err(self.poison_with(&mut st, e)),
        }
    }

    fn note_flush(&self, k: usize, records: u64, bytes: usize) {
        let c = &self.counters[k];
        c.batches.fetch_add(1, Ordering::Relaxed);
        c.records.fetch_add(records, Ordering::Relaxed);
        c.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        if self.durability == DurabilityLevel::Fsync {
            c.fsyncs.fetch_add(1, Ordering::Relaxed);
            self.fsyncs_saved
                .fetch_add(records.saturating_sub(1), Ordering::Relaxed);
        }
    }

    fn advance_durable(st: &mut ShardState) {
        while let Some(TsState::Synced) = st.status.get(&(st.durable_ts + 1)) {
            st.status.remove(&(st.durable_ts + 1));
            st.durable_ts += 1;
        }
    }

    /// Checkpoint copy phase. Must be called with the commit pipeline
    /// quiesced (exclusive commit latch). Quiesces every flush leader,
    /// discards all buffered frames (the snapshot the caller is about
    /// to take supersedes them) and redirects all routing to shard 0
    /// for the duration of the rewrite, so sibling files gain nothing
    /// and can be emptied atomically in the swap phase.
    ///
    /// Every `begin_rewrite` that returns `Ok` **must** be paired with
    /// a `finish_rewrite`, or the log wedges with `exclusive_io` set.
    pub fn begin_rewrite(&self) -> Result<()> {
        let mut st = self.state.lock();
        loop {
            Self::check_poison(&st)?;
            if !st.exclusive_io {
                break;
            }
            self.cv.wait(&mut st);
        }
        st.exclusive_io = true;
        while st.leaders > 0 {
            self.cv.wait(&mut st);
        }
        debug_assert!(
            st.staged.is_empty(),
            "rewrite began with commits mid-critical-section"
        );
        // Buffered frames are superseded by the snapshot: discard them
        // and mark their timestamps synced so the horizon covers them
        // (their durability now rides on the snapshot's rename).
        let discarded: Vec<Ts> = st
            .per_shard
            .iter_mut()
            .flat_map(|sub| {
                sub.buf.clear();
                sub.records = 0;
                std::mem::take(&mut sub.tss)
            })
            .collect();
        for ts in discarded {
            st.status.insert(ts, TsState::Synced);
        }
        Self::advance_durable(&mut st);
        st.rewrite_floor = st.routed_ts;
        st.route_to_zero = true;
        Ok(())
    }

    /// Checkpoint swap phase: rewrite the **base file** to the snapshot
    /// (each record barrier-wrapped at the watermark captured by
    /// `begin_rewrite`) via tmp+rename — the single atomic commit point
    /// — then splice the frames that accumulated in shard 0 during the
    /// rewrite, then empty each sibling atomically. Called with no
    /// database locks held.
    ///
    /// Crash before the rename: old layout intact. After the rename but
    /// before (or mid-way through) the sibling empties: the new base's
    /// floor makes every leftover sibling frame stale — skipped by the
    /// merged replay and truncated on reopen.
    pub fn finish_rewrite(&self, records: &[WalRecord]) -> Result<()> {
        let floor = {
            let st = self.state.lock();
            st.rewrite_floor
        };
        let wrapped: Vec<WalRecord> = records
            .iter()
            .map(|r| WalRecord::Barrier {
                barrier_ts: floor,
                inner: Box::new(r.clone()),
            })
            .collect();
        let res = self.files[0].lock().rewrite(&wrapped);
        if let Err(e) = res {
            let mut st = self.state.lock();
            st.exclusive_io = false;
            st.route_to_zero = false;
            return Err(self.poison_with(&mut st, e));
        }
        // Splice the mid-rewrite tail (all routed to shard 0).
        // `exclusive_io` is still set, so no leader can interleave.
        let mut st = self.state.lock();
        let sub = &mut st.per_shard[0];
        let buf = std::mem::take(&mut sub.buf);
        let tail_records = std::mem::take(&mut sub.records);
        let tss = std::mem::take(&mut sub.tss);
        drop(st);
        let mut res = if buf.is_empty() {
            Ok(())
        } else {
            self.files[0]
                .lock()
                .append_batch(&buf, tail_records, self.durability)
        };
        if res.is_ok() && tail_records > 0 {
            self.note_flush(0, tail_records, buf.len());
        }
        if res.is_ok() {
            for k in 1..self.files.len() {
                res = self.files[k].lock().rewrite(&[]);
                if res.is_err() {
                    break;
                }
            }
        }
        let mut st = self.state.lock();
        st.exclusive_io = false;
        st.route_to_zero = false;
        match res {
            Ok(()) => {
                for ts in tss {
                    st.status.insert(ts, TsState::Synced);
                }
                Self::advance_durable(&mut st);
                self.cv.notify_all();
                Ok(())
            }
            Err(e) => Err(self.poison_with(&mut st, e)),
        }
    }

    /// The copy and swap phases back to back (stop-the-world variant).
    pub fn checkpoint(&self, records: &[WalRecord]) -> Result<()> {
        self.begin_rewrite()?;
        self.finish_rewrite(records)
    }

    /// `(bytes, records)` written across all shard files since they
    /// were opened or last rewritten — summed so maintenance growth
    /// budgets see the same signal as with one file.
    pub fn size(&self) -> (u64, u64) {
        let mut bytes = 0;
        let mut records = 0;
        for f in &self.files {
            let f = f.lock();
            bytes += f.bytes_written();
            records += f.records_written();
        }
        (bytes, records)
    }

    pub fn records_written(&self) -> u64 {
        self.files.iter().map(|f| f.lock().records_written()).sum()
    }

    fn check_poison(st: &ShardState) -> Result<()> {
        match &st.poison {
            Some(msg) => Err(StorageError::WalUnavailable(msg.clone())),
            None => Ok(()),
        }
    }

    fn poison_with(
        &self,
        st: &mut parking_lot::MutexGuard<'_, ShardState>,
        e: StorageError,
    ) -> StorageError {
        let msg = e.to_string();
        st.poison = Some(msg.clone());
        self.cv.notify_all();
        StorageError::WalUnavailable(msg)
    }
}

impl Drop for ShardedWal {
    /// Best-effort drain of buffered frames (reachable at
    /// `DurabilityLevel::None`, or if the database is dropped with
    /// commits mid-flight). Only the contiguous routed prefix is
    /// written; errors are ignored.
    fn drop(&mut self) {
        let st = self.state.get_mut();
        if st.poison.is_some() {
            return;
        }
        loop {
            let next = st.routed_ts + 1;
            match st.staged.remove(&next) {
                Some((shard, frame)) => {
                    let k = if st.route_to_zero { 0 } else { shard };
                    let sub = &mut st.per_shard[k];
                    sub.buf.extend_from_slice(&frame);
                    sub.records += 1;
                    st.routed_ts = next;
                }
                None => break,
            }
        }
        for (k, sub) in st.per_shard.iter_mut().enumerate() {
            if !sub.buf.is_empty() {
                let buf = std::mem::take(&mut sub.buf);
                let records = std::mem::take(&mut sub.records);
                let _ = self.files[k]
                    .get_mut()
                    .append_batch(&buf, records, self.durability);
            }
        }
    }
}

/// What merged recovery handed back.
#[derive(Debug)]
pub struct ShardRecovery {
    /// Replayable records in commit order, barriers unwrapped and abort
    /// markers elided — the same record kinds single-file replay yields.
    pub records: Vec<WalRecord>,
    /// Highest timestamp consumed by the replayed prefix (commits *and*
    /// aborts): the sharded WAL's `base_ts`, and the floor the commit
    /// sequencer must observe.
    pub last_ts: Ts,
}

/// Merge-replay the sharded log at `base` with `shards` files and
/// repair every file's tail.
///
/// Frames are merged by timestamp — commits and abort markers at
/// `(ts, 0)`, barriers at `(barrier_ts, 1)` (barriers live only in
/// shard 0; file order breaks ties) — and replayed while the timestamps
/// stay contiguous. The first gap (a torn tail in any one shard, or a
/// commit that never reached its file) cuts the prefix: everything
/// after it, in *any* shard, is discarded and truncated away, so crash
/// semantics stay "commit-order prefix" exactly as with one file. A
/// barrier replays only if every commit at or below its watermark did.
///
/// The base file's leading `Meta` barrier sets the floor: frames at or
/// below it are stale residue of a checkpoint that crashed between the
/// base rename and the sibling empties, skipped and truncated to
/// nothing.
///
/// One hazard is invisible to the contiguity check: a DDL barrier lives
/// in shard 0 while the commits that depend on it live in other files,
/// so an unsynced crash can drop the `CreateTable` barrier yet keep a
/// later commit to that table. A *missing* barrier leaves no gap in the
/// commit-ts chain, so the merge additionally tracks the table ids the
/// replayed prefix has created and cuts at the first commit referencing
/// a table whose DDL did not survive — everything from that commit on
/// is discarded, exactly as if the chain had torn there.
pub fn recover_sharded_on(vfs: &dyn Vfs, base: &Path, shards: usize) -> Result<ShardRecovery> {
    // (ts, kind, file, index-in-file) — the merge key.
    type Key = (Ts, u8, usize, usize);
    struct Entry {
        key: Key,
        file: usize,
        end: u64,
        rec: WalRecord,
    }

    let mut floor: Ts = 0;
    let mut entries: Vec<Entry> = Vec::new();
    for file in 0..shards {
        let path = shard_path(base, file);
        let (recs, _valid) = WalFile::replay_with_offsets_on(vfs, &path)?;
        for (idx, (rec, end)) in recs.into_iter().enumerate() {
            if file == 0 && idx == 0 {
                // The snapshot head (if any) defines the stale floor.
                match &rec {
                    WalRecord::Barrier { inner, .. } => {
                        if let WalRecord::Meta { next_ts, .. } = inner.as_ref() {
                            floor = next_ts.saturating_sub(1);
                        }
                    }
                    WalRecord::Meta { next_ts, .. } => {
                        // Transitional: a legacy-headed base should not
                        // coexist with siblings, but replay it anyway.
                        floor = next_ts.saturating_sub(1);
                    }
                    _ => {}
                }
            }
            let key = match &rec {
                WalRecord::Commit { commit_ts, .. } => (*commit_ts, 0, file, idx),
                WalRecord::AbortMarker { commit_ts } => (*commit_ts, 0, file, idx),
                WalRecord::Barrier { barrier_ts, .. } => (*barrier_ts, 1, file, idx),
                // Plain non-commit records in a sharded layout only
                // occur in a transitional legacy-headed base; order
                // them with the head (before every live commit).
                _ => (floor, 1, file, idx),
            };
            entries.push(Entry {
                key,
                file,
                end,
                rec,
            });
        }
    }
    entries.sort_by_key(|e| e.key);

    let mut records: Vec<WalRecord> = Vec::new();
    let mut keep: Vec<u64> = vec![0; shards];
    let mut expected: Ts = floor + 1;
    let mut known: std::collections::HashSet<crate::schema::TableId> =
        std::collections::HashSet::new();
    fn track(known: &mut std::collections::HashSet<crate::schema::TableId>, rec: &WalRecord) {
        match rec {
            WalRecord::CreateTable { id, .. } => {
                known.insert(*id);
            }
            WalRecord::DropTable { id } => {
                known.remove(id);
            }
            _ => {}
        }
    }
    for e in entries {
        match e.rec {
            WalRecord::Commit { commit_ts, .. } if commit_ts <= floor => continue, // stale
            WalRecord::AbortMarker { commit_ts } if commit_ts <= floor => continue, // stale
            WalRecord::Commit {
                commit_ts,
                ref writes,
                ..
            } => {
                if commit_ts != expected {
                    break; // gap: torn tail somewhere — cut here
                }
                if writes.iter().any(|w| !known.contains(&w.table)) {
                    break; // its CreateTable barrier did not survive
                }
                keep[e.file] = e.end;
                expected += 1;
                records.push(e.rec);
            }
            WalRecord::AbortMarker { commit_ts } => {
                if commit_ts != expected {
                    break;
                }
                keep[e.file] = e.end;
                expected += 1;
            }
            WalRecord::Barrier { barrier_ts, inner } => {
                if barrier_ts >= expected {
                    break; // gated on a commit that did not survive
                }
                keep[e.file] = e.end;
                track(&mut known, &inner);
                records.push(*inner);
            }
            rec => {
                // Transitional legacy-headed base: plain snapshot
                // records, replayed as-is.
                keep[e.file] = e.end;
                track(&mut known, &rec);
                records.push(rec);
            }
        }
    }
    for (file, keep_len) in keep.iter().enumerate() {
        WalFile::truncate_on(vfs, &shard_path(base, file), *keep_len)?;
    }
    Ok(ShardRecovery {
        records,
        last_ts: expected - 1,
    })
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;
    use std::sync::Arc;

    use super::*;
    use crate::vfs::{os_vfs, SimVfs};

    fn tmpbase(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tendax-shard-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        for k in 0..8 {
            let _ = std::fs::remove_file(shard_path(&p, k));
        }
        p
    }

    fn commit(ts: Ts) -> WalRecord {
        WalRecord::Commit {
            txn: ts,
            commit_ts: ts,
            writes: Vec::new(),
        }
    }

    fn open_sharded(base: &Path, n: usize, durability: DurabilityLevel, base_ts: Ts) -> ShardedWal {
        let files: Vec<WalFile> = (0..n)
            .map(|k| WalFile::open(shard_path(base, k), durability).unwrap())
            .collect();
        ShardedWal::new(files, durability, base_ts)
    }

    fn recover(base: &Path, n: usize) -> ShardRecovery {
        recover_sharded_on(&*os_vfs(), base, n).unwrap()
    }

    #[test]
    fn shard_paths_and_discovery() {
        let base = tmpbase("disc.wal");
        assert_eq!(shard_path(&base, 0), base);
        assert!(shard_path(&base, 2)
            .to_string_lossy()
            .ends_with("disc.wal.shard2"));
        let vfs = os_vfs();
        drop(WalFile::open(&base, DurabilityLevel::Buffered).unwrap());
        assert_eq!(discover_shards_on(&*vfs, &base), 1);
        drop(WalFile::open(shard_path(&base, 1), DurabilityLevel::Buffered).unwrap());
        drop(WalFile::open(shard_path(&base, 2), DurabilityLevel::Buffered).unwrap());
        assert_eq!(discover_shards_on(&*vfs, &base), 3);
        // A gap stops discovery (contiguity invariant).
        std::fs::remove_file(shard_path(&base, 1)).unwrap();
        assert_eq!(discover_shards_on(&*vfs, &base), 1);
    }

    #[test]
    fn commits_route_by_table_and_recover_in_ts_order() {
        let base = tmpbase("route.wal");
        let wal = open_sharded(&base, 4, DurabilityLevel::Fsync, 0);
        // Distinct routes so frames spread across files; staged out of
        // arrival order.
        let t2 = wal.stage_commit(2, &commit(2), 7).unwrap();
        let t1 = wal.stage_commit(1, &commit(1), 3).unwrap();
        let t3 = wal.stage_commit(3, &commit(3), 11).unwrap();
        for t in [t1, t2, t3] {
            wal.wait_durable(t).unwrap();
        }
        drop(wal);
        let rec = recover(&base, 4);
        assert_eq!(rec.records, vec![commit(1), commit(2), commit(3)]);
        assert_eq!(rec.last_ts, 3);
    }

    #[test]
    fn abort_marker_fills_the_hole() {
        let base = tmpbase("abort.wal");
        let wal = open_sharded(&base, 4, DurabilityLevel::Fsync, 0);
        let t1 = wal.stage_commit(1, &commit(1), 1).unwrap();
        wal.skip_commit(2);
        let t3 = wal.stage_commit(3, &commit(3), 2).unwrap();
        wal.wait_durable(t1).unwrap();
        wal.wait_durable(t3).unwrap();
        drop(wal);
        let rec = recover(&base, 4);
        // ts 2 was consumed (last_ts covers it) but produced no record.
        assert_eq!(rec.records, vec![commit(1), commit(3)]);
        assert_eq!(rec.last_ts, 3);
    }

    #[test]
    fn barrier_orders_ddl_between_commits() {
        let base = tmpbase("barrier.wal");
        let wal = open_sharded(&base, 4, DurabilityLevel::Fsync, 0);
        let t1 = wal.stage_commit(1, &commit(1), 5).unwrap();
        let ddl = WalRecord::DropTable {
            id: crate::schema::TableId(9),
        };
        let b = wal.enqueue(&ddl).unwrap();
        wal.wait_durable(b).unwrap();
        wal.wait_durable(t1).unwrap();
        let t2 = wal.stage_commit(2, &commit(2), 6).unwrap();
        wal.wait_durable(t2).unwrap();
        drop(wal);
        let rec = recover(&base, 4);
        assert_eq!(rec.records, vec![commit(1), ddl, commit(2)]);
        assert_eq!(rec.last_ts, 2);
    }

    #[test]
    fn torn_tail_in_one_shard_cuts_the_global_prefix() {
        let base = tmpbase("torn.wal");
        let shard_of_4: usize;
        {
            let wal = open_sharded(&base, 2, DurabilityLevel::Fsync, 0);
            for ts in 1..=6 {
                // Route = ts so frames alternate between files.
                let t = wal.stage_commit(ts, &commit(ts), ts).unwrap();
                wal.wait_durable(t).unwrap();
            }
            shard_of_4 = shard_of(4, 2);
        }
        // Tear the frame holding ts 4 out of its shard file's tail:
        // truncate that file to just before its last frame (ts 6 or 5
        // shares the file; find ts 4's end offset precisely instead).
        let path = shard_path(&base, shard_of_4);
        let (recs, _) = WalFile::replay_with_offsets_on(&*os_vfs(), &path).unwrap();
        let cut = recs
            .iter()
            .find_map(|(r, end)| match r {
                WalRecord::Commit { commit_ts: 4, .. } => Some(*end),
                _ => None,
            })
            .expect("ts 4 frame present");
        // Chop mid-frame: 3 bytes into ts 4's frame region from its
        // start — i.e. truncate to (end of previous frame) + 3. Easier:
        // truncate to cut - 3 (mid-frame of ts 4).
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..(cut as usize - 3)]).unwrap();

        let rec = recover(&base, 2);
        // Everything from ts 4 on is cut, in BOTH files.
        assert_eq!(rec.records, vec![commit(1), commit(2), commit(3)]);
        assert_eq!(rec.last_ts, 3);
        // Reopen-and-append after the repair replays cleanly.
        let wal = open_sharded(&base, 2, DurabilityLevel::Fsync, 3);
        let t = wal.stage_commit(4, &commit(4), 4).unwrap();
        wal.wait_durable(t).unwrap();
        drop(wal);
        let rec = recover(&base, 2);
        assert_eq!(
            rec.records,
            vec![commit(1), commit(2), commit(3), commit(4)]
        );
    }

    #[test]
    fn checkpoint_rewrites_base_and_empties_siblings() {
        let base = tmpbase("ckpt.wal");
        let wal = open_sharded(&base, 3, DurabilityLevel::Buffered, 0);
        for ts in 1..=5 {
            let t = wal.stage_commit(ts, &commit(ts), ts).unwrap();
            wal.wait_durable(t).unwrap();
        }
        wal.begin_rewrite().unwrap();
        let snapshot = vec![WalRecord::Meta {
            next_ts: 6,
            clock: 0,
        }];
        wal.finish_rewrite(&snapshot).unwrap();
        // The swap emptied every sibling (their frames are superseded
        // by the snapshot in the base file).
        for k in 1..3 {
            let data = std::fs::read(shard_path(&base, k)).unwrap();
            assert!(data.is_empty(), "sibling {k} not emptied");
        }
        // Post-checkpoint commits keep working and route normally.
        let t = wal.stage_commit(6, &commit(6), 1).unwrap();
        wal.wait_durable(t).unwrap();
        drop(wal);
        let rec = recover(&base, 3);
        assert_eq!(rec.records, vec![snapshot[0].clone(), commit(6)]);
        assert_eq!(rec.last_ts, 6);
    }

    #[test]
    fn stale_sibling_frames_after_crashed_checkpoint_are_skipped() {
        // Simulate the crash window between the base rename and the
        // sibling empties: a new base with floor 5 coexists with
        // siblings still holding frames ts <= 5.
        let base = tmpbase("stale.wal");
        let vfs = os_vfs();
        {
            let wal = open_sharded(&base, 2, DurabilityLevel::Fsync, 0);
            for ts in 1..=5 {
                let t = wal.stage_commit(ts, &commit(ts), ts).unwrap();
                wal.wait_durable(t).unwrap();
            }
        }
        // Hand-write the new base: barrier-wrapped snapshot at floor 5.
        let mut f = WalFile::open_on(vfs.clone(), &base, DurabilityLevel::Fsync).unwrap();
        f.rewrite(&[WalRecord::Barrier {
            barrier_ts: 5,
            inner: Box::new(WalRecord::Meta {
                next_ts: 6,
                clock: 0,
            }),
        }])
        .unwrap();
        drop(f);
        let rec = recover(&base, 2);
        assert_eq!(
            rec.records,
            vec![WalRecord::Meta {
                next_ts: 6,
                clock: 0
            }]
        );
        assert_eq!(rec.last_ts, 5);
        // The stale sibling was truncated to nothing.
        let sib = shard_path(&base, shard_of(1, 2).max(1));
        let data = std::fs::read(&sib).unwrap_or_default();
        assert!(data.is_empty(), "stale sibling survived recovery");
    }

    #[test]
    fn concurrent_disjoint_commits_overlap_leaders() {
        let base = tmpbase("parallel.wal");
        let wal = Arc::new(open_sharded(&base, 4, DurabilityLevel::Fsync, 0));
        let mut handles = Vec::new();
        for ts in 1..=32u64 {
            let wal = wal.clone();
            handles.push(std::thread::spawn(move || {
                let t = wal.stage_commit(ts, &commit(ts), ts).unwrap();
                wal.wait_durable(t).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let shard_stats = wal.shard_stats();
        let active: usize = shard_stats.iter().filter(|s| s.records_flushed > 0).count();
        assert!(active >= 2, "frames did not spread: {shard_stats:?}");
        assert_eq!(
            shard_stats.iter().map(|s| s.records_flushed).sum::<u64>(),
            32
        );
        drop(wal);
        let rec = recover(&base, 4);
        assert_eq!(rec.records.len(), 32);
        assert_eq!(rec.last_ts, 32);
    }

    #[test]
    fn sim_crash_recovers_commit_order_prefix() {
        // A coarse in-module sweep (the full suite lives in
        // tests/sim_crash.rs): crash at every op budget, recover, check
        // the prefix property.
        for seed in 0..8u64 {
            let vfs = SimVfs::new(seed);
            let vfs_arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
            let base = Path::new("/sim/shard.wal");
            {
                let files: Vec<WalFile> = (0..4)
                    .map(|k| {
                        WalFile::open_on(
                            vfs_arc.clone(),
                            shard_path(base, k),
                            DurabilityLevel::Fsync,
                        )
                        .unwrap()
                    })
                    .collect();
                let wal = ShardedWal::new(files, DurabilityLevel::Fsync, 0);
                vfs.power_fail_after(10 + seed * 3);
                for ts in 1..=12 {
                    let t = match wal.stage_commit(ts, &commit(ts), ts) {
                        Ok(t) => t,
                        Err(_) => {
                            wal.skip_commit(ts);
                            break;
                        }
                    };
                    if wal.wait_durable(t).is_err() {
                        break;
                    }
                }
            }
            vfs.crash();
            let rec = recover_sharded_on(&*vfs_arc, base, 4).unwrap();
            // Prefix property: records are exactly commit(1..=k).
            for (i, r) in rec.records.iter().enumerate() {
                assert_eq!(r, &commit(i as u64 + 1), "seed {seed}: not a prefix");
            }
        }
    }
}
