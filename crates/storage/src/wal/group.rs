//! Group commit: durability outside the commit critical section.
//!
//! Commit records are **staged per-committer** under only the table
//! locks the transaction holds (no global commit mutex) via
//! [`GroupWal::stage_commit`], keyed by commit timestamp. A drain cursor
//! moves staged frames into the shared batch buffer strictly in
//! commit-timestamp order, advancing only over a contiguous timestamp
//! prefix — so the *file* always receives frames in commit order even
//! though committers arrive in any order, and any replayed prefix of the
//! log is a commit-order prefix. An aborted commit calls
//! [`GroupWal::skip_commit`] so the cursor steps over its timestamp
//! instead of wedging.
//!
//! Durability still runs on the leader/follower protocol: the first
//! committer to arrive at [`GroupWal::wait_durable`] becomes the **flush
//! leader**, takes the whole accumulated batch, writes it with a single
//! `write_all` and (at [`DurabilityLevel::Fsync`]) a single `sync_data`,
//! then wakes every committer the flush covered. Committers that arrive
//! while a flush is in flight park on the condvar; their records ride in
//! the next batch. Under concurrency this amortizes the fsync — the
//! dominant cost of a durable commit — across every transaction in the
//! batch, without weakening the guarantee: `commit()` still returns only
//! after the record is durable at the configured level.
//!
//! Non-commit records (DDL, checkpoint snapshots) use
//! [`GroupWal::enqueue`], which must be called with the commit pipeline
//! quiesced (the database's exclusive commit latch) so they interleave
//! with commit frames at a well-defined point.
//!
//! A failed flush **poisons** the log: the error is sticky and every
//! in-flight and subsequent waiter receives
//! [`StorageError::WalUnavailable`]. Nothing can be retracted — versions
//! published by a commit whose flush later failed remain visible in
//! memory — so the only honest response is to stop accepting writes
//! (the same reasoning that makes PostgreSQL PANIC on fsync failure).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Condvar, Mutex};

use crate::error::{Result, StorageError};
use crate::table::Ts;
use crate::wal::log::encode_frame;
use crate::wal::{DurabilityLevel, WalFile, WalRecord};

/// Claim ticket for a staged record: pass to
/// [`GroupWal::wait_durable`] after publication.
#[derive(Debug, Clone, Copy)]
pub enum WalTicket {
    /// Non-commit record (DDL), identified by enqueue sequence number.
    Seq(u64),
    /// Commit record, identified by its commit timestamp.
    Commit(Ts),
}

/// Flush-side observability counters (surfaced through `Database::stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Batches written by flush leaders (including single-record ones).
    pub batches_flushed: u64,
    /// Records covered by those batches.
    pub records_flushed: u64,
    /// At `Fsync`, syncs avoided versus one-fsync-per-commit: the sum of
    /// `batch_size - 1` over all batches.
    pub fsyncs_saved: u64,
}

/// At [`DurabilityLevel::None`] there is no durability wait to piggyback
/// flushes on, so the batch is drained opportunistically once it holds
/// this many bytes (and, regardless, at checkpoint/drop).
const NONE_FLUSH_THRESHOLD: usize = 1 << 20;

#[derive(Debug, Default)]
struct GroupState {
    /// Encoded frames drained into the batch, not yet handed to a flush.
    buf: Vec<u8>,
    /// Records in `buf`.
    pending: u64,
    /// Sequence number of the newest record added to `buf` (or written
    /// inline in non-group mode).
    enqueued: u64,
    /// All records with sequence <= this are on disk at the configured
    /// durability level.
    durable: u64,
    /// Commit frames staged out of order, waiting for every lower
    /// timestamp to stage too. `None` marks an aborted timestamp the
    /// drain cursor must step over.
    staged: BTreeMap<Ts, Option<Vec<u8>>>,
    /// Non-group mode: drained commit frames awaiting their own
    /// one-record-per-flush write (the per-commit-flush baseline).
    inline: Vec<(Ts, Vec<u8>)>,
    /// Every commit timestamp <= this has left `staged`: its frame is in
    /// `buf`/`inline`/the file, or it was skipped. The file receives
    /// commit frames exactly in this cursor's order.
    drained_ts: Ts,
    /// Every commit timestamp <= this is on disk at the configured
    /// durability level (or was skipped / superseded by a checkpoint).
    durable_ts: Ts,
    /// A flush leader is currently writing outside this lock.
    leader_active: bool,
    /// A checkpoint rewrite is in progress; no one may flush.
    rewriting: bool,
    /// Sticky flush failure. Set once, never cleared.
    poison: Option<String>,
}

/// The group-commit write-ahead log: a [`WalFile`] fronted by a
/// timestamp-ordered staging area, a shared batch buffer, and a
/// leader/follower flush protocol.
#[derive(Debug)]
pub struct GroupWal {
    state: Mutex<GroupState>,
    cv: Condvar,
    file: Mutex<WalFile>,
    durability: DurabilityLevel,
    /// `false` = flush-per-record baseline (no batching), for A/B
    /// measurement via `Options::group_commit`.
    group: bool,
    batches_flushed: AtomicU64,
    records_flushed: AtomicU64,
    fsyncs_saved: AtomicU64,
    /// Total time committers spent inside [`GroupWal::wait_durable`]
    /// for commit tickets (the fsync-queue wait; not counted at
    /// `DurabilityLevel::None`, where the wait is a buffer drain).
    flush_wait_ns: AtomicU64,
}

impl GroupWal {
    /// `base_ts` is the newest commit timestamp already in the file
    /// (the recovered `last_commit_ts`; 0 for a fresh log): the drain
    /// cursor starts there so the first staged commit is `base_ts + 1`.
    pub fn new(file: WalFile, durability: DurabilityLevel, group: bool, base_ts: Ts) -> GroupWal {
        GroupWal {
            state: Mutex::new(GroupState {
                drained_ts: base_ts,
                durable_ts: base_ts,
                ..GroupState::default()
            }),
            cv: Condvar::new(),
            file: Mutex::new(file),
            durability,
            group,
            batches_flushed: AtomicU64::new(0),
            records_flushed: AtomicU64::new(0),
            fsyncs_saved: AtomicU64::new(0),
            flush_wait_ns: AtomicU64::new(0),
        }
    }

    pub fn durability(&self) -> DurabilityLevel {
        self.durability
    }

    pub fn stats(&self) -> WalStats {
        WalStats {
            batches_flushed: self.batches_flushed.load(Ordering::Relaxed),
            records_flushed: self.records_flushed.load(Ordering::Relaxed),
            fsyncs_saved: self.fsyncs_saved.load(Ordering::Relaxed),
        }
    }

    /// Stage a non-commit record (DDL, recovery snapshots). Must be
    /// called with the commit pipeline quiesced (exclusive commit
    /// latch), so the frame lands at a well-defined point between
    /// commit frames.
    ///
    /// In non-group mode this instead writes and syncs the record
    /// immediately (the per-record-flush baseline).
    pub fn enqueue(&self, rec: &WalRecord) -> Result<WalTicket> {
        let frame = encode_frame(rec);
        if !self.group {
            let mut st = self.state.lock();
            Self::check_poison(&st)?;
            // Inline writes go straight to the file; during a checkpoint
            // rewrite that file is about to be replaced, so acking a write
            // to it would lose the record at the rename. Wait out the swap,
            // and wait out any inline flush leader so our write cannot
            // interleave with frames it already took off the queue.
            while st.rewriting || st.leader_active {
                self.cv.wait(&mut st);
                Self::check_poison(&st)?;
            }
            // Drained commit frames still parked in the inline queue carry
            // timestamps that precede this record (the caller quiesced the
            // pipeline, so every in-flight commit has staged and drained —
            // its committer just hasn't reached wait_durable yet). They
            // must hit the file first: a DDL frame written ahead of an
            // earlier commit would make replay see e.g. a DropTable before
            // a commit touching that table, failing recovery.
            let inline = std::mem::take(&mut st.inline);
            let hi_ts = st.drained_ts;
            st.enqueued += 1;
            let seq = st.enqueued;
            st.leader_active = true;
            drop(st);
            let mut res = Ok(());
            let mut written = 0u64;
            {
                let mut file = self.file.lock();
                for (_, f) in &inline {
                    res = file.append_batch(f, 1, self.durability);
                    if res.is_err() {
                        break;
                    }
                    written += 1;
                }
                if res.is_ok() {
                    res = file.append_batch(&frame, 1, self.durability);
                }
            }
            let mut st = self.state.lock();
            st.leader_active = false;
            self.batches_flushed.fetch_add(written, Ordering::Relaxed);
            self.records_flushed.fetch_add(written, Ordering::Relaxed);
            return match res {
                Ok(()) => {
                    st.durable = st.durable.max(seq);
                    st.durable_ts = st.durable_ts.max(hi_ts);
                    self.batches_flushed.fetch_add(1, Ordering::Relaxed);
                    self.records_flushed.fetch_add(1, Ordering::Relaxed);
                    self.cv.notify_all();
                    Ok(WalTicket::Seq(seq))
                }
                Err(e) => Err(self.poison_with(&mut st, e)),
            };
        }
        let mut st = self.state.lock();
        Self::check_poison(&st)?;
        st.buf.extend_from_slice(&frame);
        st.pending += 1;
        st.enqueued += 1;
        Ok(WalTicket::Seq(st.enqueued))
    }

    /// Stage a commit record under its commit timestamp. Called while
    /// the committer still holds its table write locks — the work is
    /// bounded by encoding (no I/O, no global lock). The frame reaches
    /// the file only once every lower commit timestamp has staged (or
    /// skipped): the log stays in commit-timestamp order without the
    /// committers themselves being serialized.
    ///
    /// On error the caller must invoke [`GroupWal::skip_commit`] for
    /// `ts`, or the drain cursor stalls forever.
    pub fn stage_commit(&self, ts: Ts, rec: &WalRecord) -> Result<WalTicket> {
        let frame = encode_frame(rec);
        let mut st = self.state.lock();
        Self::check_poison(&st)?;
        debug_assert!(
            ts > st.drained_ts,
            "commit ts staged twice or behind cursor"
        );
        st.staged.insert(ts, Some(frame));
        self.drain_staged(&mut st);
        Ok(WalTicket::Commit(ts))
    }

    /// Mark `ts` as aborted-after-allocation: the drain cursor steps
    /// over it instead of waiting for a frame that will never arrive.
    /// Deliberately ignores poison — releasing the slot must always
    /// succeed so other committers' frames keep draining.
    pub fn skip_commit(&self, ts: Ts) {
        let mut st = self.state.lock();
        if ts > st.drained_ts {
            st.staged.insert(ts, None);
            self.drain_staged(&mut st);
        }
    }

    /// Move the contiguous prefix of staged frames into the batch
    /// buffer (group mode) or the inline queue (baseline mode), in
    /// commit-timestamp order. Wakes waiters whenever the cursor moves:
    /// a parked committer may now be flushable, or a parked leader may
    /// now cover more records.
    fn drain_staged(&self, st: &mut GroupState) {
        let mut advanced = false;
        loop {
            let next = st.drained_ts + 1;
            match st.staged.remove(&next) {
                Some(Some(frame)) => {
                    if self.group {
                        st.buf.extend_from_slice(&frame);
                        st.pending += 1;
                        st.enqueued += 1;
                    } else {
                        st.inline.push((next, frame));
                    }
                    st.drained_ts = next;
                    advanced = true;
                }
                Some(None) => {
                    st.drained_ts = next; // aborted: step over
                    advanced = true;
                }
                None => break,
            }
        }
        if advanced {
            self.cv.notify_all();
        }
    }

    /// Block until the ticket's record is durable at the configured
    /// level. Called with **no** database locks held; this is where the
    /// leader/follower protocol runs.
    pub fn wait_durable(&self, ticket: WalTicket) -> Result<()> {
        match ticket {
            WalTicket::Seq(seq) => self.wait_seq(seq),
            WalTicket::Commit(ts) => {
                let started = std::time::Instant::now();
                let res = if self.group {
                    self.wait_commit_group(ts)
                } else {
                    self.wait_commit_inline(ts)
                };
                if self.durability != DurabilityLevel::None {
                    self.flush_wait_ns
                        .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
                res
            }
        }
    }

    /// Total nanoseconds commit tickets spent in
    /// [`GroupWal::wait_durable`] — the same definition as the sharded
    /// log's per-shard `flush_wait_ns`, so the A11 single-file vs
    /// sharded comparison measures one quantity.
    pub fn flush_wait_ns(&self) -> u64 {
        self.flush_wait_ns.load(Ordering::Relaxed)
    }

    fn wait_seq(&self, seq: u64) -> Result<()> {
        if !self.group {
            return Ok(()); // already flushed inline by enqueue
        }
        if self.durability == DurabilityLevel::None {
            return self.opportunistic_drain();
        }
        let mut st = self.state.lock();
        loop {
            Self::check_poison(&st)?;
            if st.durable >= seq {
                return Ok(());
            }
            if st.leader_active || st.rewriting {
                // A flush (or checkpoint) is in flight; it — or the next
                // leader after it — will cover us.
                self.cv.wait(&mut st);
                continue;
            }
            // Become the leader. Our record entered the batch before we
            // got here, so one successful round always covers our ticket.
            st = self.flush_batch(st)?;
        }
    }

    fn wait_commit_group(&self, ts: Ts) -> Result<()> {
        if self.durability == DurabilityLevel::None {
            return self.opportunistic_drain();
        }
        let mut st = self.state.lock();
        loop {
            Self::check_poison(&st)?;
            if st.durable_ts >= ts {
                return Ok(());
            }
            if st.drained_ts < ts || st.leader_active || st.rewriting {
                // Our frame is still parked behind a lower timestamp, or
                // a flush/checkpoint is in flight. The drain cursor (or
                // the finishing leader) wakes us.
                self.cv.wait(&mut st);
                continue;
            }
            st = self.flush_batch(st)?;
        }
    }

    /// Baseline mode: every drained commit frame gets its own
    /// write+sync, preserving the one-flush-per-record accounting the
    /// A/B comparison depends on — but still strictly in timestamp
    /// order via the inline queue.
    fn wait_commit_inline(&self, ts: Ts) -> Result<()> {
        let mut st = self.state.lock();
        loop {
            Self::check_poison(&st)?;
            if st.durable_ts >= ts {
                return Ok(());
            }
            if st.leader_active || st.rewriting || st.inline.is_empty() {
                self.cv.wait(&mut st);
                continue;
            }
            st = self.flush_inline(st)?;
        }
    }

    /// `DurabilityLevel::None`: no durability to wait for; drain the
    /// batch only when it gets large, to bound memory.
    fn opportunistic_drain(&self) -> Result<()> {
        let st = self.state.lock();
        if st.buf.len() < NONE_FLUSH_THRESHOLD || st.leader_active || st.rewriting {
            return Ok(());
        }
        self.flush_batch(st).map(drop)
    }

    /// Leader path: take the batch, write it with the state lock
    /// released (so committers keep staging during the I/O), publish
    /// the new durable horizon, wake everyone covered.
    fn flush_batch<'a>(
        &'a self,
        mut st: parking_lot::MutexGuard<'a, GroupState>,
    ) -> Result<parking_lot::MutexGuard<'a, GroupState>> {
        st.leader_active = true;
        let buf = std::mem::take(&mut st.buf);
        let records = std::mem::take(&mut st.pending);
        let hi = st.enqueued;
        // Every commit frame <= drained_ts is in `buf` (or already on
        // disk), so a successful write makes the cursor's whole prefix
        // durable.
        let hi_ts = st.drained_ts;
        drop(st);
        let res = self
            .file
            .lock()
            .append_batch(&buf, records, self.durability);
        let mut st = self.state.lock();
        st.leader_active = false;
        match res {
            Ok(()) => {
                st.durable = st.durable.max(hi);
                st.durable_ts = st.durable_ts.max(hi_ts);
                self.batches_flushed.fetch_add(1, Ordering::Relaxed);
                self.records_flushed.fetch_add(records, Ordering::Relaxed);
                if self.durability == DurabilityLevel::Fsync {
                    self.fsyncs_saved
                        .fetch_add(records.saturating_sub(1), Ordering::Relaxed);
                }
                self.cv.notify_all();
                Ok(st)
            }
            Err(e) => Err(self.poison_with(&mut st, e)),
        }
    }

    /// Baseline-mode leader: write each drained frame as its own batch
    /// (own write, own sync) in timestamp order.
    fn flush_inline<'a>(
        &'a self,
        mut st: parking_lot::MutexGuard<'a, GroupState>,
    ) -> Result<parking_lot::MutexGuard<'a, GroupState>> {
        st.leader_active = true;
        let frames = std::mem::take(&mut st.inline);
        let hi_ts = st.drained_ts;
        drop(st);
        let mut res = Ok(());
        let mut written = 0u64;
        {
            let mut file = self.file.lock();
            for (_, frame) in &frames {
                res = file.append_batch(frame, 1, self.durability);
                if res.is_err() {
                    break;
                }
                written += 1;
            }
        }
        let mut st = self.state.lock();
        st.leader_active = false;
        self.batches_flushed.fetch_add(written, Ordering::Relaxed);
        self.records_flushed.fetch_add(written, Ordering::Relaxed);
        match res {
            Ok(()) => {
                st.durable_ts = st.durable_ts.max(hi_ts);
                self.cv.notify_all();
                Ok(st)
            }
            Err(e) => Err(self.poison_with(&mut st, e)),
        }
    }

    /// Checkpoint copy phase. Must be called with the commit pipeline
    /// quiesced (exclusive commit latch): every record staged so far
    /// was published before the latch was granted, so the table
    /// snapshot the caller is about to take captures all of them and
    /// the pending batch frames are redundant — they are discarded
    /// here. Quiesces any in-flight flush leader (a leader finishing
    /// *after* the swap would append pre-snapshot frames to the new
    /// file, duplicating records) and marks the log as rewriting, which
    /// parks flushes and inline writes until
    /// [`GroupWal::finish_rewrite`]. Staging in group mode stays free:
    /// the commit critical section never stalls on a checkpoint.
    ///
    /// Every `begin_rewrite` that returns `Ok` **must** be paired with a
    /// `finish_rewrite`, or the log wedges with `rewriting` set.
    pub fn begin_rewrite(&self) -> Result<()> {
        let mut st = self.state.lock();
        loop {
            Self::check_poison(&st)?;
            if !st.rewriting {
                break;
            }
            // Another checkpoint is mid-swap. Its finish_rewrite needs no
            // lock we hold, so waiting here cannot deadlock.
            self.cv.wait(&mut st);
        }
        st.rewriting = true;
        while st.leader_active {
            self.cv.wait(&mut st);
        }
        debug_assert!(
            st.staged.is_empty(),
            "rewrite began with commits mid-critical-section"
        );
        st.buf.clear();
        st.pending = 0;
        st.inline.clear();
        Ok(())
    }

    /// Checkpoint swap phase: rewrite the file to `records` atomically,
    /// then splice everything committed during the rewrite (it piled up
    /// in the batch buffer / inline queue) onto the new log's tail and
    /// release waiters. Called with **no** database locks held — the
    /// rewrite I/O is the expensive part and runs entirely off the
    /// commit path. Commits that happened mid-rewrite have timestamps
    /// after the snapshot's `Meta`, so replay order stays consistent:
    /// snapshot first, tail second.
    ///
    /// A crash before the rewrite's rename leaves the old log intact
    /// (pre-checkpoint state); after the rename, the new log replays the
    /// snapshot plus whatever prefix of the tail made it to disk — never
    /// a hybrid. That is why the durable horizon only advances here.
    pub fn finish_rewrite(&self, records: &[WalRecord]) -> Result<()> {
        let res = self.file.lock().rewrite(records);
        let mut st = self.state.lock();
        if let Err(e) = res {
            st.rewriting = false;
            return Err(self.poison_with(&mut st, e));
        }
        // Splice the mid-rewrite tail. `rewriting` is still set, so no
        // flush leader can interleave with this append.
        let buf = std::mem::take(&mut st.buf);
        let tail_records = std::mem::take(&mut st.pending);
        let inline = std::mem::take(&mut st.inline);
        let hi = st.enqueued;
        let hi_ts = st.drained_ts;
        drop(st);
        let mut splice = if buf.is_empty() {
            Ok(())
        } else {
            self.file
                .lock()
                .append_batch(&buf, tail_records, self.durability)
        };
        let mut inline_written = 0u64;
        if splice.is_ok() && !inline.is_empty() {
            let mut file = self.file.lock();
            for (_, frame) in &inline {
                splice = file.append_batch(frame, 1, self.durability);
                if splice.is_err() {
                    break;
                }
                inline_written += 1;
            }
        }
        let mut st = self.state.lock();
        st.rewriting = false;
        match splice {
            Ok(()) => {
                st.durable = st.durable.max(hi);
                st.durable_ts = st.durable_ts.max(hi_ts);
                if tail_records > 0 {
                    self.batches_flushed.fetch_add(1, Ordering::Relaxed);
                    self.records_flushed
                        .fetch_add(tail_records, Ordering::Relaxed);
                    if self.durability == DurabilityLevel::Fsync {
                        self.fsyncs_saved
                            .fetch_add(tail_records.saturating_sub(1), Ordering::Relaxed);
                    }
                }
                self.batches_flushed
                    .fetch_add(inline_written, Ordering::Relaxed);
                self.records_flushed
                    .fetch_add(inline_written, Ordering::Relaxed);
                self.cv.notify_all();
                Ok(())
            }
            Err(e) => Err(self.poison_with(&mut st, e)),
        }
    }

    /// Replace the log contents with a checkpoint snapshot: the copy and
    /// swap phases back to back. Must be called with the commit pipeline
    /// quiesced across the whole call (the stop-the-world variant; the
    /// database itself uses the split form to keep the quiesce short).
    pub fn checkpoint(&self, records: &[WalRecord]) -> Result<()> {
        self.begin_rewrite()?;
        self.finish_rewrite(records)
    }

    /// Number of records appended to the underlying file since open
    /// (not counting frames still in the batch buffer).
    pub fn records_written(&self) -> u64 {
        self.file.lock().records_written()
    }

    /// `(bytes, records)` written to the underlying file since it was
    /// opened or last rewritten — the growth the checkpoint budget caps.
    pub fn size(&self) -> (u64, u64) {
        let f = self.file.lock();
        (f.bytes_written(), f.records_written())
    }

    fn check_poison(st: &GroupState) -> Result<()> {
        match &st.poison {
            Some(msg) => Err(StorageError::WalUnavailable(msg.clone())),
            None => Ok(()),
        }
    }

    /// Record a flush failure: sticky-poison the log, wake all waiters
    /// (they observe the poison), and return the error to surface.
    fn poison_with(
        &self,
        st: &mut parking_lot::MutexGuard<'_, GroupState>,
        e: StorageError,
    ) -> StorageError {
        let msg = e.to_string();
        st.poison = Some(msg.clone());
        self.cv.notify_all();
        StorageError::WalUnavailable(msg)
    }
}

impl Drop for GroupWal {
    /// Best-effort drain of any frames still buffered (reachable only at
    /// `DurabilityLevel::None`, or if the database is dropped with
    /// commits mid-flight). Errors are ignored: there is no caller left
    /// to surface them to, and `None` promises nothing anyway.
    fn drop(&mut self) {
        let group = self.group;
        let st = self.state.get_mut();
        if st.poison.is_some() {
            return;
        }
        // Fold the contiguous staged prefix in first (frames parked
        // behind a committer that never resolved stay behind — writing
        // them would break the commit-order-prefix invariant).
        loop {
            let next = st.drained_ts + 1;
            match st.staged.remove(&next) {
                Some(Some(frame)) => {
                    if group {
                        st.buf.extend_from_slice(&frame);
                        st.pending += 1;
                    } else {
                        st.inline.push((next, frame));
                    }
                    st.drained_ts = next;
                }
                Some(None) => st.drained_ts = next,
                None => break,
            }
        }
        if !st.buf.is_empty() {
            let buf = std::mem::take(&mut st.buf);
            let records = std::mem::take(&mut st.pending);
            let _ = self
                .file
                .get_mut()
                .append_batch(&buf, records, self.durability);
        }
        for (_, frame) in std::mem::take(&mut st.inline) {
            let _ = self.file.get_mut().append_batch(&frame, 1, self.durability);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;
    use std::sync::Arc;

    use super::*;
    use crate::table::Ts;

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tendax-group-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    fn meta(ts: Ts) -> WalRecord {
        WalRecord::Meta {
            next_ts: ts,
            clock: 0,
        }
    }

    fn open_group(path: &PathBuf, durability: DurabilityLevel, group: bool) -> GroupWal {
        GroupWal::new(
            WalFile::open(path, durability).unwrap(),
            durability,
            group,
            0,
        )
    }

    #[test]
    fn single_record_is_flushed_and_replayable() {
        let path = tmpfile("single.wal");
        {
            let wal = open_group(&path, DurabilityLevel::Fsync, true);
            let t = wal.enqueue(&meta(7)).unwrap();
            wal.wait_durable(t).unwrap();
            let s = wal.stats();
            assert_eq!(s.batches_flushed, 1);
            assert_eq!(s.records_flushed, 1);
            assert_eq!(s.fsyncs_saved, 0);
        }
        assert_eq!(WalFile::replay(&path).unwrap(), vec![meta(7)]);
    }

    #[test]
    fn baseline_mode_flushes_inline_per_record() {
        let path = tmpfile("baseline.wal");
        let wal = open_group(&path, DurabilityLevel::Fsync, false);
        for i in 1..=3 {
            let t = wal.enqueue(&meta(i)).unwrap();
            wal.wait_durable(t).unwrap();
        }
        let s = wal.stats();
        assert_eq!(s.batches_flushed, 3);
        assert_eq!(s.records_flushed, 3);
        assert_eq!(s.fsyncs_saved, 0);
    }

    #[test]
    fn records_staged_before_wait_ride_one_batch() {
        let path = tmpfile("one-batch.wal");
        let wal = open_group(&path, DurabilityLevel::Fsync, true);
        let tickets: Vec<WalTicket> = (1..=5).map(|i| wal.enqueue(&meta(i)).unwrap()).collect();
        for t in tickets {
            wal.wait_durable(t).unwrap();
        }
        let s = wal.stats();
        assert_eq!(s.records_flushed, 5);
        assert_eq!(
            s.batches_flushed, 1,
            "pre-staged records must share a flush"
        );
        assert_eq!(s.fsyncs_saved, 4);
        assert_eq!(WalFile::replay(&path).unwrap().len(), 5);
    }

    #[test]
    fn concurrent_waiters_all_observe_durability() {
        let path = tmpfile("concurrent.wal");
        let wal = Arc::new(open_group(&path, DurabilityLevel::Fsync, true));
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let wal = wal.clone();
            handles.push(std::thread::spawn(move || {
                let t = wal.enqueue(&meta(i + 1)).unwrap();
                wal.wait_durable(t).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = wal.stats();
        assert_eq!(s.records_flushed, 8);
        assert!(s.batches_flushed <= 8);
        drop(wal);
        assert_eq!(WalFile::replay(&path).unwrap().len(), 8);
    }

    #[test]
    fn checkpoint_replaces_pending_and_advances_horizon() {
        let path = tmpfile("ckpt.wal");
        let wal = open_group(&path, DurabilityLevel::Buffered, true);
        // Staged but never waited on: the checkpoint snapshot supersedes it.
        let staged = wal.enqueue(&meta(1)).unwrap();
        wal.checkpoint(&[meta(42)]).unwrap();
        // The pre-checkpoint ticket is durable by inclusion in the snapshot.
        wal.wait_durable(staged).unwrap();
        drop(wal);
        assert_eq!(WalFile::replay(&path).unwrap(), vec![meta(42)]);
    }

    #[test]
    fn none_level_waits_return_immediately() {
        let path = tmpfile("none.wal");
        let wal = open_group(&path, DurabilityLevel::None, true);
        let t = wal.enqueue(&meta(1)).unwrap();
        wal.wait_durable(t).unwrap(); // must not block or flush
        assert_eq!(wal.stats().batches_flushed, 0);
        drop(wal); // drop drains the buffer best-effort
        assert_eq!(WalFile::replay(&path).unwrap(), vec![meta(1)]);
    }

    #[test]
    fn out_of_order_staging_hits_the_file_in_ts_order() {
        let path = tmpfile("ooo.wal");
        let wal = open_group(&path, DurabilityLevel::Buffered, true);
        // Stage commit ts 2 *before* ts 1 — arrival order inverted.
        let t2 = wal.stage_commit(2, &meta(2)).unwrap();
        let t1 = wal.stage_commit(1, &meta(1)).unwrap();
        wal.wait_durable(t2).unwrap();
        wal.wait_durable(t1).unwrap();
        drop(wal);
        // The file holds them in timestamp order regardless.
        assert_eq!(WalFile::replay(&path).unwrap(), vec![meta(1), meta(2)]);
    }

    #[test]
    fn skip_steps_cursor_over_aborted_ts() {
        let path = tmpfile("skip.wal");
        let wal = open_group(&path, DurabilityLevel::Buffered, true);
        // ts 2 stages; ts 1 aborts after allocation. Without the skip,
        // ts 2's frame (and its waiter) would be stuck forever.
        let t2 = wal.stage_commit(2, &meta(2)).unwrap();
        wal.skip_commit(1);
        wal.wait_durable(t2).unwrap();
        drop(wal);
        assert_eq!(WalFile::replay(&path).unwrap(), vec![meta(2)]);
    }

    #[test]
    fn baseline_mode_orders_and_flushes_per_record() {
        let path = tmpfile("baseline-ooo.wal");
        let wal = open_group(&path, DurabilityLevel::Fsync, false);
        let t3 = wal.stage_commit(3, &meta(3)).unwrap();
        let t1 = wal.stage_commit(1, &meta(1)).unwrap();
        let t2 = wal.stage_commit(2, &meta(2)).unwrap();
        for t in [t1, t2, t3] {
            wal.wait_durable(t).unwrap();
        }
        let s = wal.stats();
        assert_eq!(s.batches_flushed, 3, "baseline never batches");
        assert_eq!(s.records_flushed, 3);
        drop(wal);
        assert_eq!(
            WalFile::replay(&path).unwrap(),
            vec![meta(1), meta(2), meta(3)]
        );
    }

    #[test]
    fn concurrent_staggered_stages_preserve_ts_order() {
        let path = tmpfile("staggered.wal");
        let wal = Arc::new(open_group(&path, DurabilityLevel::Buffered, true));
        let mut handles = Vec::new();
        for ts in 1..=16u64 {
            let wal = wal.clone();
            handles.push(std::thread::spawn(move || {
                // Higher timestamps tend to stage earlier.
                std::thread::sleep(std::time::Duration::from_micros((17 - ts) * 100));
                let t = wal.stage_commit(ts, &meta(ts)).unwrap();
                wal.wait_durable(t).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        drop(wal);
        let replayed = WalFile::replay(&path).unwrap();
        let expected: Vec<WalRecord> = (1..=16).map(meta).collect();
        assert_eq!(replayed, expected);
    }

    /// Regression: in non-group mode, `enqueue` used to write DDL frames
    /// straight to the file while earlier-timestamped commit frames were
    /// still parked in the inline queue (their committers had drained but
    /// not yet reached `wait_durable`). Replay then saw the DDL record
    /// *before* commits that logically precede it — a DropTable ahead of
    /// a commit touching that table fails recovery with UnknownTableId.
    #[test]
    fn nongroup_enqueue_flushes_pending_inline_frames_first() {
        let path = tmpfile("ddl-order.wal");
        let wal = open_group(&path, DurabilityLevel::Fsync, false);
        // Stage + drain a commit, but don't wait_durable yet: its frame
        // sits in the inline queue, exactly the window between a committer
        // dropping the shared latch and parking on durability.
        let t1 = wal.stage_commit(1, &meta(1)).unwrap();
        // A DDL record enqueued in that window (exclusive latch held by
        // the caller) must land *after* the pending commit frame.
        let ddl = wal.enqueue(&meta(99)).unwrap();
        wal.wait_durable(ddl).unwrap();
        // The commit became durable as a side effect of the DDL flush.
        wal.wait_durable(t1).unwrap();
        drop(wal);
        assert_eq!(WalFile::replay(&path).unwrap(), vec![meta(1), meta(99)]);
    }

    #[test]
    fn drop_writes_only_the_contiguous_staged_prefix() {
        let path = tmpfile("drop-prefix.wal");
        {
            let wal = open_group(&path, DurabilityLevel::None, true);
            let _ = wal.stage_commit(1, &meta(1)).unwrap();
            // ts 2 never stages; ts 3 is parked behind the hole.
            let _ = wal.stage_commit(3, &meta(3)).unwrap();
        }
        // Only ts 1 may reach the file: writing ts 3 without ts 2 would
        // break the commit-order-prefix replay invariant.
        assert_eq!(WalFile::replay(&path).unwrap(), vec![meta(1)]);
    }
}
