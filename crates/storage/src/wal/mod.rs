//! Write-ahead logging and durability.
//!
//! Every committed transaction appends one [`WalRecord::Commit`] before its
//! effects become visible; on reopen the log is replayed in order. Records
//! are length-prefixed, CRC-32-checked binary (see [`codec`]); a torn tail
//! (partial final record after a crash) is detected and discarded rather
//! than treated as corruption.

pub mod codec;
mod group;
mod log;
mod shard;

pub use group::{GroupWal, WalStats, WalTicket};
pub use log::{WalFile, WalIter};
pub use shard::{
    discover_shards_on, recover_sharded_on, shard_path, ShardRecovery, ShardedWal, WalShardStats,
};

use crate::row::{RowId, SharedRow};
use crate::schema::{TableDef, TableId};
use crate::table::Ts;

/// How hard the engine pushes commits toward the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityLevel {
    /// No WAL at all (in-memory database).
    None,
    /// Write to the OS (survives process crash, not power loss).
    Buffered,
    /// `fsync` every commit (survives power loss).
    Fsync,
}

/// One write inside a committed transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct WalWrite {
    pub table: TableId,
    pub row: RowId,
    pub op: WalOp,
}

/// The operation a write performed. Put holds the same shared row the
/// version store publishes — encoding borrows it, nothing is copied.
///
/// `Patch` is the log form of a commutative described write: only the
/// columns the transaction actually wrote (by position, with the values
/// the commit published) plus its chain-neighborhood anchors. Replay
/// composes the delta onto the row's then-newest state, so a log that
/// survives only as a commit-order prefix still replays each merge
/// exactly as it published.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    Put(SharedRow),
    Delete,
    Patch {
        fields: Vec<u32>,
        values: Vec<crate::value::Value>,
        anchors: Vec<u64>,
    },
}

/// A log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Engine metadata written at checkpoint time: the next commit
    /// timestamp to hand out and the highest clock value observed.
    Meta { next_ts: Ts, clock: i64 },
    /// DDL: a table (re-)created with a fixed id.
    CreateTable { id: TableId, def: TableDef },
    /// DDL: a table dropped.
    DropTable { id: TableId },
    /// A committed transaction and all of its writes.
    Commit {
        txn: u64,
        commit_ts: Ts,
        writes: Vec<WalWrite>,
    },
    /// One row version emitted by a checkpoint (compacted history),
    /// carrying its original commit timestamp.
    SnapshotRow {
        table: TableId,
        row: RowId,
        commit_ts: Ts,
        op: WalOp,
    },
    /// Row-id allocator watermark for a table, written at checkpoint time
    /// so compacted-away (deleted) rows can never have their ids reused.
    Watermark { table: TableId, next_row_id: u64 },
    /// A commit timestamp that was allocated but never committed
    /// (validation failure, panic before publish). Only the sharded WAL
    /// writes these: its recovery replays the global contiguous ts
    /// prefix across files, so a silent hole would truncate recovery at
    /// the aborted ts forever. The marker makes the hole explicit —
    /// replay advances past it applying nothing. The single-file WAL
    /// keeps its markerless skip (file order carries no holes).
    AbortMarker { commit_ts: Ts },
    /// A non-commit record ordered against commits by timestamp: the
    /// sharded WAL wraps DDL and checkpoint-snapshot records in a
    /// barrier carrying the commit watermark they were written under
    /// (every commit ts ≤ `barrier_ts` is already durably staged, every
    /// commit ts > `barrier_ts` is not yet written). Merged replay
    /// sorts barriers after the commit with the same ts, so replay
    /// order equals original latch order. Barriers always live in
    /// shard 0, so file order disambiguates equal `barrier_ts`.
    Barrier {
        barrier_ts: Ts,
        inner: Box<WalRecord>,
    },
}
