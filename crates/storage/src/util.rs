//! Small self-contained utilities: CRC-32 (for WAL record integrity).

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
///
/// Hand-rolled so the WAL has zero external dependencies; matches the
/// standard `crc32` used by gzip/PNG, which makes records inspectable with
/// stock tooling.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = CRC_TABLE[idx] ^ (crc >> 8);
    }
    !crc
}

const CRC_TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
