//! Table schemas, index definitions, and the catalog.

use std::collections::BTreeMap;

use crate::error::{Result, StorageError};
use crate::value::{DataType, Value};

/// Stable identifier of a table within a database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

/// A column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    pub nullable: bool,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }
}

/// A secondary index over one or more columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    pub name: String,
    /// Column positions (into [`TableDef::columns`]) forming the key.
    pub columns: Vec<usize>,
    pub unique: bool,
}

/// A table declaration: columns plus secondary indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    pub indexes: Vec<IndexDef>,
}

impl TableDef {
    pub fn new(name: impl Into<String>) -> Self {
        TableDef {
            name: name.into(),
            columns: Vec::new(),
            indexes: Vec::new(),
        }
    }

    /// Add a `NOT NULL` column.
    pub fn column(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.columns.push(ColumnDef::new(name, ty));
        self
    }

    /// Add a nullable column.
    pub fn nullable_column(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.columns.push(ColumnDef::new(name, ty).nullable());
        self
    }

    /// Add a (non-unique) secondary index over the named columns.
    ///
    /// # Panics
    /// Panics at schema-definition time if a named column does not exist —
    /// schemas are static program text, so this is a programming error.
    pub fn index(self, name: impl Into<String>, columns: &[&str]) -> Self {
        self.index_inner(name, columns, false)
    }

    /// Add a unique secondary index over the named columns.
    pub fn unique_index(self, name: impl Into<String>, columns: &[&str]) -> Self {
        self.index_inner(name, columns, true)
    }

    fn index_inner(mut self, name: impl Into<String>, columns: &[&str], unique: bool) -> Self {
        let positions = columns
            .iter()
            .map(|c| {
                self.column_position(c)
                    .unwrap_or_else(|| panic!("index over unknown column `{c}`"))
            })
            .collect();
        self.indexes.push(IndexDef {
            name: name.into(),
            columns: positions,
            unique,
        });
        self
    }

    /// Position of `name` among the columns, if present.
    pub fn column_position(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Position of `name`, or an [`StorageError::UnknownColumn`] error.
    pub fn require_column(&self, name: &str) -> Result<usize> {
        self.column_position(name)
            .ok_or_else(|| StorageError::UnknownColumn {
                table: self.name.clone(),
                column: name.to_owned(),
            })
    }

    /// Find an index definition by name.
    pub fn find_index(&self, name: &str) -> Option<&IndexDef> {
        self.indexes.iter().find(|i| i.name == name)
    }

    /// Validate a row against this schema (arity, types, nullability).
    pub fn validate_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.columns.len(),
                actual: values.len(),
            });
        }
        for (col, v) in self.columns.iter().zip(values) {
            if v.is_null() {
                if !col.nullable {
                    return Err(StorageError::NullViolation {
                        table: self.name.clone(),
                        column: col.name.clone(),
                    });
                }
            } else if !v.conforms_to(col.ty) {
                return Err(StorageError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty,
                    actual: v.data_type().expect("non-null value has a type"),
                });
            }
        }
        Ok(())
    }
}

/// The catalog: name → id → definition mapping for all tables.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    by_id: BTreeMap<TableId, TableDef>,
    by_name: BTreeMap<String, TableId>,
    next_id: u32,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table, allocating its id.
    pub fn register(&mut self, def: TableDef) -> Result<TableId> {
        if self.by_name.contains_key(&def.name) {
            return Err(StorageError::TableExists(def.name));
        }
        let id = TableId(self.next_id);
        self.next_id += 1;
        self.by_name.insert(def.name.clone(), id);
        self.by_id.insert(id, def);
        Ok(id)
    }

    /// Re-register a table under a fixed id (used by recovery).
    pub fn register_with_id(&mut self, id: TableId, def: TableDef) -> Result<()> {
        if self.by_name.contains_key(&def.name) {
            return Err(StorageError::TableExists(def.name));
        }
        self.next_id = self.next_id.max(id.0 + 1);
        self.by_name.insert(def.name.clone(), id);
        self.by_id.insert(id, def);
        Ok(())
    }

    pub fn remove(&mut self, name: &str) -> Result<TableId> {
        let id = self
            .by_name
            .remove(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_owned()))?;
        self.by_id.remove(&id);
        Ok(id)
    }

    pub fn lookup(&self, name: &str) -> Result<TableId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    pub fn definition(&self, id: TableId) -> Result<&TableDef> {
        self.by_id.get(&id).ok_or(StorageError::UnknownTableId(id))
    }

    pub fn tables(&self) -> impl Iterator<Item = (TableId, &TableDef)> {
        self.by_id.iter().map(|(id, def)| (*id, def))
    }

    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableDef {
        TableDef::new("docs")
            .column("id", DataType::Id)
            .column("name", DataType::Text)
            .nullable_column("note", DataType::Text)
            .unique_index("docs_by_id", &["id"])
            .index("docs_by_name", &["name"])
    }

    #[test]
    fn builder_positions() {
        let t = sample();
        assert_eq!(t.column_position("id"), Some(0));
        assert_eq!(t.column_position("note"), Some(2));
        assert_eq!(t.column_position("missing"), None);
        assert_eq!(t.indexes[0].columns, vec![0]);
        assert!(t.indexes[0].unique);
        assert!(!t.indexes[1].unique);
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn index_over_unknown_column_panics() {
        TableDef::new("t")
            .column("a", DataType::Int)
            .index("bad", &["b"]);
    }

    #[test]
    fn validate_row_checks_arity_types_nulls() {
        let t = sample();
        let ok = vec![Value::Id(1), Value::Text("a".into()), Value::Null];
        assert!(t.validate_row(&ok).is_ok());

        let bad_arity = vec![Value::Id(1)];
        assert!(matches!(
            t.validate_row(&bad_arity),
            Err(StorageError::ArityMismatch {
                expected: 3,
                actual: 1
            })
        ));

        let bad_type = vec![Value::Int(1), Value::Text("a".into()), Value::Null];
        assert!(matches!(
            t.validate_row(&bad_type),
            Err(StorageError::TypeMismatch { .. })
        ));

        let bad_null = vec![Value::Id(1), Value::Null, Value::Null];
        assert!(matches!(
            t.validate_row(&bad_null),
            Err(StorageError::NullViolation { .. })
        ));
    }

    #[test]
    fn catalog_register_lookup_remove() {
        let mut c = Catalog::new();
        let id = c.register(sample()).unwrap();
        assert_eq!(c.lookup("docs").unwrap(), id);
        assert_eq!(c.definition(id).unwrap().name, "docs");
        assert!(matches!(
            c.register(sample()),
            Err(StorageError::TableExists(_))
        ));
        assert_eq!(c.len(), 1);
        c.remove("docs").unwrap();
        assert!(c.is_empty());
        assert!(c.lookup("docs").is_err());
    }

    #[test]
    fn catalog_register_with_id_keeps_counter_monotonic() {
        let mut c = Catalog::new();
        c.register_with_id(TableId(7), sample()).unwrap();
        let next = c
            .register(TableDef::new("other").column("x", DataType::Int))
            .unwrap();
        assert!(next.0 > 7);
    }
}
