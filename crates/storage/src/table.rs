//! Multi-versioned heap tables.
//!
//! Each row id owns a *version chain*: an append-only, commit-timestamp
//! ordered list of `Put`/`Delete` versions. A snapshot at timestamp `ts`
//! sees, for each row, the newest version with `commit_ts <= ts`; if that
//! version is a `Delete` (or no version qualifies) the row is invisible.
//! This is classic snapshot isolation — readers never block writers and
//! vice versa, which is what lets TeNDaX editors read documents while
//! others type into them.

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{Result, StorageError};
use crate::index::{IndexKey, IndexStore};
use crate::query::{plan_access, AccessPath, Predicate};
use crate::row::{RowId, SharedRow};
use crate::schema::{TableDef, TableId};

/// Commit timestamp. `0` is reserved: no committed data carries it.
pub type Ts = u64;

/// Visibility horizon that sees everything ever committed.
pub const TS_LATEST: Ts = u64::MAX;

/// A chain-neighborhood descriptor: what part of a row's *neighborhood*
/// a write semantically touched, at finer granularity than the row.
///
/// The text layer tags each character-row write with the directed chain
/// edges it rewires (`anchors`, encoded by the caller — e.g.
/// `char_id << 1 | 1` for a character's *next* edge) and the column
/// positions it set (`fields`). Two concurrent writes to the same row
/// *commute* when neither their anchors nor their fields intersect —
/// e.g. one splice updating a character's `prev` link while another
/// updates its `next` — and commit validation merges them instead of
/// aborting. Both vectors are kept sorted and deduplicated.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WriteDescriptor {
    /// Directed chain-edge tokens the write rewires.
    pub anchors: Vec<u64>,
    /// Column positions (schema order) the write set.
    pub fields: Vec<u32>,
}

impl WriteDescriptor {
    /// Build a descriptor, sorting and deduplicating both components.
    pub fn new(mut anchors: Vec<u64>, mut fields: Vec<u32>) -> Self {
        anchors.sort_unstable();
        anchors.dedup();
        fields.sort_unstable();
        fields.dedup();
        WriteDescriptor { anchors, fields }
    }

    /// Do two descriptors touch a common anchor or field?
    pub fn overlaps(&self, other: &WriteDescriptor) -> bool {
        sorted_intersect(&self.anchors, &other.anchors)
            || sorted_intersect(&self.fields, &other.fields)
    }

    /// Fold `other` into `self` (union of anchors and fields).
    pub fn merge_from(&mut self, other: &WriteDescriptor) {
        self.anchors.extend_from_slice(&other.anchors);
        self.anchors.sort_unstable();
        self.anchors.dedup();
        self.fields.extend_from_slice(&other.fields);
        self.fields.sort_unstable();
        self.fields.dedup();
    }
}

/// Linear intersection test over two sorted slices.
fn sorted_intersect<T: Ord>(a: &[T], b: &[T]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// One committed version of a row.
#[derive(Debug, Clone)]
pub struct Version {
    pub commit_ts: Ts,
    pub op: VersionOp,
    /// Chain-neighborhood descriptor of the write that produced this
    /// version, when the writer supplied one. Later concurrent commits
    /// whose descriptors don't overlap merge onto this version instead
    /// of aborting.
    pub desc: Option<Arc<WriteDescriptor>>,
}

/// What a version did to the row. Put versions hold a [`SharedRow`]: the
/// same allocation is handed to readers, the WAL encoder and index
/// maintenance without ever copying the values.
#[derive(Debug, Clone)]
pub enum VersionOp {
    Put(SharedRow),
    Delete,
}

/// Result of a pushed-down scan: matching rows plus read accounting.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Matching rows in row-id order (shared, zero-copy handles).
    pub rows: Vec<(RowId, SharedRow)>,
    /// Visible rows the scan examined.
    pub scanned: u64,
    /// Examined rows rejected by the predicate (never materialized).
    pub skipped: u64,
}

/// A table: schema, version chains, secondary indexes, row id allocator.
#[derive(Debug)]
pub struct TableStore {
    id: TableId,
    def: TableDef,
    chains: BTreeMap<RowId, Vec<Version>>,
    indexes: Vec<IndexStore>,
    next_row_id: AtomicU64,
}

impl TableStore {
    pub fn new(id: TableId, def: TableDef) -> Self {
        let indexes = def.indexes.iter().cloned().map(IndexStore::new).collect();
        TableStore {
            id,
            def,
            chains: BTreeMap::new(),
            indexes,
            next_row_id: AtomicU64::new(1),
        }
    }

    pub fn id(&self) -> TableId {
        self.id
    }

    pub fn definition(&self) -> &TableDef {
        &self.def
    }

    /// Allocate a fresh row id. Safe under a shared (read) lock.
    pub fn allocate_row_id(&self) -> RowId {
        RowId(self.next_row_id.fetch_add(1, Ordering::Relaxed))
    }

    /// The next row id this table would hand out (checkpoint watermark).
    pub fn row_id_watermark(&self) -> u64 {
        self.next_row_id.load(Ordering::Relaxed)
    }

    /// Bump the allocator so it never hands out ids ≤ `seen` (recovery).
    pub fn observe_row_id(&self, seen: RowId) {
        let mut cur = self.next_row_id.load(Ordering::Relaxed);
        while cur <= seen.0 {
            match self.next_row_id.compare_exchange(
                cur,
                seen.0 + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The row version visible at snapshot `ts`, if any.
    pub fn visible(&self, row: RowId, ts: Ts) -> Option<&SharedRow> {
        let chain = self.chains.get(&row)?;
        match newest_at(chain, ts)? {
            VersionOp::Put(r) => Some(r),
            VersionOp::Delete => None,
        }
    }

    /// Commit timestamp of the newest version of `row`, if the row has any.
    pub fn newest_commit_ts(&self, row: RowId) -> Option<Ts> {
        self.chains.get(&row)?.last().map(|v| v.commit_ts)
    }

    /// Append a committed version and maintain indexes.
    ///
    /// Callers guarantee `ts` is greater than every timestamp already in the
    /// chain (commit order is serialized by the transaction manager).
    pub fn apply(&mut self, row: RowId, ts: Ts, op: VersionOp) {
        self.apply_described(row, ts, op, None);
    }

    /// [`TableStore::apply`] with a chain-neighborhood descriptor
    /// attached to the new version.
    pub fn apply_described(
        &mut self,
        row: RowId,
        ts: Ts,
        op: VersionOp,
        desc: Option<Arc<WriteDescriptor>>,
    ) {
        debug_assert!(
            self.chains
                .get(&row)
                .and_then(|c| c.last())
                .is_none_or(|v| v.commit_ts < ts),
            "version timestamps must be monotonically increasing per row"
        );
        if let VersionOp::Put(r) = &op {
            for idx in &mut self.indexes {
                let key = idx.key_of(r);
                idx.insert(key, row);
            }
        }
        self.chains.entry(row).or_default().push(Version {
            commit_ts: ts,
            op,
            desc,
        });
        self.observe_row_id(row);
    }

    /// Every version of `row` committed strictly after `ts`, in commit
    /// order (the versions descriptor-granularity validation must prove
    /// commutativity against).
    pub fn versions_after(&self, row: RowId, ts: Ts) -> &[Version] {
        match self.chains.get(&row) {
            Some(chain) => {
                let from = chain.partition_point(|v| v.commit_ts <= ts);
                &chain[from..]
            }
            None => &[],
        }
    }

    /// Iterate all rows visible at `ts`.
    pub fn scan_visible(&self, ts: Ts) -> impl Iterator<Item = (RowId, &SharedRow)> + '_ {
        self.chains
            .iter()
            .filter_map(move |(id, chain)| match newest_at(chain, ts)? {
                VersionOp::Put(r) => Some((*id, r)),
                VersionOp::Delete => None,
            })
    }

    /// Pushed-down scan: plan an access path for `pred` against this
    /// table's schema, walk it, and return only the matching rows as
    /// shared handles. Non-matching rows are counted (`skipped`) but
    /// never cloned or collected — the predicate runs against the stored
    /// version in place.
    pub fn scan_matching(&self, ts: Ts, pred: &Predicate) -> Result<ScanOutcome> {
        let mut out = ScanOutcome::default();
        match plan_access(&self.def, pred) {
            AccessPath::FullScan => {
                for (rid, row) in self.scan_visible(ts) {
                    out.scanned += 1;
                    if pred.eval(&self.def, row)? {
                        out.rows.push((rid, row.clone()));
                    } else {
                        out.skipped += 1;
                    }
                }
            }
            AccessPath::IndexPrefix { index_pos, prefix } => {
                let idx = self
                    .indexes
                    .get(index_pos)
                    .ok_or_else(|| StorageError::Internal("planner chose missing index".into()))?;
                let mut seen = HashSet::new();
                for (_, rid) in idx.prefix(&prefix) {
                    if !seen.insert(rid) {
                        continue;
                    }
                    if let Some(row) = self.visible(rid, ts) {
                        out.scanned += 1;
                        if pred.eval(&self.def, row)? {
                            out.rows.push((rid, row.clone()));
                        } else {
                            out.skipped += 1;
                        }
                    }
                }
                // Index iteration is key-ordered; callers expect row-id
                // order for merge with the write-set overlay.
                out.rows.sort_unstable_by_key(|(rid, _)| *rid);
            }
        }
        Ok(out)
    }

    /// Iterate every version of every row (used by checkpointing).
    pub fn iter_versions(&self) -> impl Iterator<Item = (RowId, &Version)> + '_ {
        self.chains
            .iter()
            .flat_map(|(id, chain)| chain.iter().map(move |v| (*id, v)))
    }

    /// The index at position `pos` (schema order).
    pub fn index(&self, pos: usize) -> Option<&IndexStore> {
        self.indexes.get(pos)
    }

    /// Find an index by name.
    pub fn index_by_name(&self, name: &str) -> Option<(usize, &IndexStore)> {
        self.indexes
            .iter()
            .enumerate()
            .find(|(_, i)| i.definition().name == name)
    }

    pub fn indexes(&self) -> &[IndexStore] {
        &self.indexes
    }

    /// Would committing `key` into unique index `pos` at `TS_LATEST`
    /// conflict with a row other than the excluded ones?
    pub fn unique_conflict(
        &self,
        pos: usize,
        key: &IndexKey,
        excluded: &dyn Fn(RowId) -> bool,
    ) -> bool {
        let idx = &self.indexes[pos];
        idx.lookup(key).any(|rid| {
            if excluded(rid) {
                return false;
            }
            match self.visible(rid, TS_LATEST) {
                Some(row) => &idx.key_of(row) == key,
                None => false,
            }
        })
    }

    /// Number of rows visible at `ts`.
    pub fn count_visible(&self, ts: Ts) -> usize {
        self.scan_visible(ts).count()
    }

    /// Total number of stored versions (live + superseded).
    pub fn version_count(&self) -> usize {
        self.chains.values().map(Vec::len).sum()
    }

    /// Number of distinct rows with at least one stored version.
    /// `version_count() - chain_count()` bounds what vacuum can reclaim.
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// Prune versions no snapshot at or after `horizon` can see, then
    /// rebuild indexes from the surviving versions.
    ///
    /// A version is prunable if a newer version exists with
    /// `commit_ts <= horizon` (it is superseded for every live snapshot).
    /// A chain whose sole survivor is a `Delete` older than the horizon is
    /// removed entirely.
    pub fn vacuum(&mut self, horizon: Ts) -> usize {
        let mut pruned = 0;
        self.chains.retain(|_, chain| {
            // Index of the newest version visible at the horizon.
            // Everything newer than the horizon (None) keeps all: 0.
            let keep_from = chain
                .iter()
                .rposition(|v| v.commit_ts <= horizon)
                .unwrap_or_default();
            if keep_from > 0 {
                pruned += keep_from;
                chain.drain(..keep_from);
            }
            let sole_dead = chain.len() == 1
                && chain[0].commit_ts <= horizon
                && matches!(chain[0].op, VersionOp::Delete);
            if sole_dead {
                pruned += 1;
            }
            !sole_dead
        });
        if pruned > 0 {
            self.rebuild_indexes();
        }
        pruned
    }

    /// Newest version of `row` with `commit_ts <= ts`, tombstones
    /// included. The tiered read path needs the raw version (not just
    /// [`TableStore::visible`]): a RAM tombstone at or below the
    /// snapshot is *authoritative* — the row is absent and the cold
    /// tier must not be consulted.
    pub fn newest_version_at(&self, row: RowId, ts: Ts) -> Option<&Version> {
        self.chains
            .get(&row)?
            .iter()
            .rev()
            .find(|v| v.commit_ts <= ts)
    }

    /// Newest version per row with `commit_ts <= ts`, tombstones
    /// included — the RAM side of a tiered scan merge.
    pub fn newest_versions_at(&self, ts: Ts) -> impl Iterator<Item = (RowId, &Version)> {
        self.chains.iter().filter_map(move |(rid, chain)| {
            chain
                .iter()
                .rev()
                .find(|v| v.commit_ts <= ts)
                .map(|v| (*rid, v))
        })
    }

    /// Collect exactly what [`TableStore::vacuum`] at `horizon` would
    /// prune, as WAL ops ready for cold demotion, skipping versions the
    /// cold tier already holds (those superseded by a version at or
    /// below `already_cold` — the cold floor — plus sole tombstones at
    /// or below it).
    ///
    /// With `horizon` = the commit watermark this doubles as the
    /// checkpoint's history collector: every non-newest version plus
    /// newest tombstones, minus what previous demotions covered.
    pub(crate) fn collect_demotable(
        &self,
        horizon: Ts,
        already_cold: Ts,
        out: &mut Vec<(TableId, RowId, Ts, crate::wal::WalOp)>,
    ) {
        use crate::wal::WalOp;
        for (rid, chain) in &self.chains {
            let keep_from = chain
                .iter()
                .rposition(|v| v.commit_ts <= horizon)
                .unwrap_or_default();
            for i in 0..keep_from {
                if chain[i + 1].commit_ts <= already_cold {
                    continue;
                }
                let op = match &chain[i].op {
                    VersionOp::Put(r) => WalOp::Put(r.clone()),
                    VersionOp::Delete => WalOp::Delete,
                };
                out.push((self.id, *rid, chain[i].commit_ts, op));
            }
            let Some(last) = chain.last() else { continue };
            let sole_dead = keep_from == chain.len() - 1
                && last.commit_ts <= horizon
                && matches!(last.op, VersionOp::Delete);
            if sole_dead && last.commit_ts > already_cold {
                out.push((self.id, *rid, last.commit_ts, WalOp::Delete));
            }
        }
    }

    fn rebuild_indexes(&mut self) {
        for idx in &mut self.indexes {
            idx.clear();
        }
        for (rid, chain) in &self.chains {
            for v in chain {
                if let VersionOp::Put(row) = &v.op {
                    for idx in &mut self.indexes {
                        let key = idx.key_of(row);
                        idx.insert(key, *rid);
                    }
                }
            }
        }
    }
}

/// Newest version in `chain` with `commit_ts <= ts`.
fn newest_at(chain: &[Version], ts: Ts) -> Option<&VersionOp> {
    chain
        .iter()
        .rev()
        .find(|v| v.commit_ts <= ts)
        .map(|v| &v.op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::value::{DataType, Value};

    fn table() -> TableStore {
        let def = TableDef::new("t")
            .column("k", DataType::Id)
            .column("v", DataType::Text)
            .index("by_k", &["k"])
            .unique_index("by_v", &["v"]);
        TableStore::new(TableId(0), def)
    }

    fn put(k: u64, v: &str) -> VersionOp {
        VersionOp::Put(Row::new(vec![Value::Id(k), Value::Text(v.into())]).into_shared())
    }

    #[test]
    fn visibility_follows_snapshots() {
        let mut t = table();
        let r = t.allocate_row_id();
        t.apply(r, 5, put(1, "a"));
        t.apply(r, 9, put(1, "b"));
        assert!(t.visible(r, 4).is_none());
        assert_eq!(
            t.visible(r, 5).unwrap().get(1).unwrap().as_text(),
            Some("a")
        );
        assert_eq!(
            t.visible(r, 8).unwrap().get(1).unwrap().as_text(),
            Some("a")
        );
        assert_eq!(
            t.visible(r, 9).unwrap().get(1).unwrap().as_text(),
            Some("b")
        );
        t.apply(r, 12, VersionOp::Delete);
        assert!(t.visible(r, 12).is_none());
        assert!(t.visible(r, 11).is_some());
        assert_eq!(t.newest_commit_ts(r), Some(12));
    }

    #[test]
    fn scan_visible_filters_deleted() {
        let mut t = table();
        let a = t.allocate_row_id();
        let b = t.allocate_row_id();
        t.apply(a, 1, put(1, "a"));
        t.apply(b, 2, put(2, "b"));
        t.apply(a, 3, VersionOp::Delete);
        assert_eq!(t.count_visible(2), 2);
        assert_eq!(t.count_visible(3), 1);
        let alive: Vec<RowId> = t.scan_visible(3).map(|(id, _)| id).collect();
        assert_eq!(alive, vec![b]);
    }

    #[test]
    fn row_id_allocation_is_monotonic_and_recovers() {
        let t = table();
        let a = t.allocate_row_id();
        let b = t.allocate_row_id();
        assert!(b > a);
        t.observe_row_id(RowId(100));
        assert!(t.allocate_row_id() > RowId(100));
        // Observing an old id does not move the allocator backwards.
        t.observe_row_id(RowId(3));
        assert!(t.allocate_row_id() > RowId(100));
    }

    #[test]
    fn index_entries_cover_all_versions() {
        let mut t = table();
        let r = t.allocate_row_id();
        t.apply(r, 1, put(1, "a"));
        t.apply(r, 2, put(2, "a2"));
        let (pos, idx) = t.index_by_name("by_k").unwrap();
        assert_eq!(pos, 0);
        // Both the old and new key point at the row (superset semantics).
        assert_eq!(idx.lookup(&vec![Value::Id(1)]).count(), 1);
        assert_eq!(idx.lookup(&vec![Value::Id(2)]).count(), 1);
    }

    #[test]
    fn unique_conflict_sees_only_latest_state() {
        let mut t = table();
        let a = t.allocate_row_id();
        t.apply(a, 1, put(1, "taken"));
        let key = vec![Value::Text("taken".into())];
        let (upos, _) = t.index_by_name("by_v").unwrap();
        assert!(t.unique_conflict(upos, &key, &|_| false));
        // Excluding the row that holds the key clears the conflict.
        assert!(!t.unique_conflict(upos, &key, &|r| r == a));
        // After the row is updated away from the key, no conflict remains.
        t.apply(a, 2, put(1, "other"));
        assert!(!t.unique_conflict(upos, &key, &|_| false));
        // Deleted rows do not hold keys.
        t.apply(a, 3, VersionOp::Delete);
        assert!(!t.unique_conflict(upos, &vec![Value::Text("other".into())], &|_| false));
    }

    #[test]
    fn vacuum_prunes_superseded_versions() {
        let mut t = table();
        let r = t.allocate_row_id();
        t.apply(r, 1, put(1, "a"));
        t.apply(r, 2, put(1, "b"));
        t.apply(r, 3, put(1, "c"));
        assert_eq!(t.version_count(), 3);
        let pruned = t.vacuum(2);
        assert_eq!(pruned, 1); // version @1 superseded by @2 <= horizon
        assert_eq!(t.version_count(), 2);
        // Visibility at/after the horizon is unchanged.
        assert_eq!(
            t.visible(r, 2).unwrap().get(1).unwrap().as_text(),
            Some("b")
        );
        assert_eq!(
            t.visible(r, 3).unwrap().get(1).unwrap().as_text(),
            Some("c")
        );
    }

    #[test]
    fn vacuum_removes_dead_rows_and_rebuilds_indexes() {
        let mut t = table();
        let r = t.allocate_row_id();
        t.apply(r, 1, put(1, "a"));
        t.apply(r, 2, VersionOp::Delete);
        let pruned = t.vacuum(10);
        assert_eq!(pruned, 2);
        assert_eq!(t.version_count(), 0);
        let (_, idx) = t.index_by_name("by_k").unwrap();
        assert_eq!(idx.entry_count(), 0);
    }

    #[test]
    fn vacuum_keeps_versions_newer_than_horizon() {
        let mut t = table();
        let r = t.allocate_row_id();
        t.apply(r, 5, put(1, "a"));
        t.apply(r, 9, put(1, "b"));
        assert_eq!(t.vacuum(3), 0);
        assert_eq!(t.version_count(), 2);
        // A snapshot between the two versions still reads the old one.
        assert_eq!(
            t.visible(r, 7).unwrap().get(1).unwrap().as_text(),
            Some("a")
        );
    }
}
