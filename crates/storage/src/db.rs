//! The database: catalog, tables, transaction manager, WAL, recovery.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};

use crate::clock::{Clock, ClockMode};
use crate::cold::{ColdOptions, ColdStore};
use crate::commit::{CommitLatch, CommitSequencer};
use crate::error::{Result, StorageError};
use crate::maintenance::{MaintenanceOptions, MaintenanceTask};
use crate::row::{Row, RowId};
use crate::schema::{Catalog, TableDef, TableId};
use crate::table::{TableStore, Ts, VersionOp, WriteDescriptor, TS_LATEST};
use crate::txn::{validate_writes, MergePlan, Transaction, TxnId, WriteOp};
use crate::vfs::{os_vfs, Vfs};
use crate::wal::{
    discover_shards_on, recover_sharded_on, shard_path, DurabilityLevel, GroupWal, ShardedWal,
    WalFile, WalOp, WalRecord, WalShardStats, WalStats, WalTicket, WalWrite,
};

/// Database configuration.
#[derive(Debug, Clone)]
pub struct Options {
    pub durability: DurabilityLevel,
    pub clock: ClockMode,
    /// Batch concurrent commits into one WAL write + one fsync (group
    /// commit). `false` flushes per record inside the commit section —
    /// the pre-group-commit behaviour, kept for A/B measurement.
    pub group_commit: bool,
    /// Run a background maintenance thread (auto-vacuum + auto-
    /// checkpoint). `None` (the default) spawns nothing and leaves the
    /// engine's behaviour exactly as without the subsystem.
    pub maintenance: Option<MaintenanceOptions>,
    /// The file-system backend every durability-relevant operation goes
    /// through. The default, [`os_vfs`], is `std::fs` with behaviour
    /// byte-identical to the pre-VFS engine; tests substitute
    /// [`crate::vfs::SimVfs`] to simulate crashes and injected faults.
    pub vfs: Arc<dyn Vfs>,
    /// Number of WAL shard files. `1` (the default) is the single-file
    /// WAL, byte-identical on disk and in behaviour to the pre-sharding
    /// engine. `n > 1` partitions the log across `n` files (the base
    /// path plus `.shard1`..`.shard<n-1>` siblings): commits over
    /// disjoint tables land on different files and their group-commit
    /// fsyncs run in parallel. An existing database whose on-disk
    /// layout has a different shard count opens in that layout and
    /// converges at the next checkpoint — re-shard on checkpoint, never
    /// on open. The default reads `TENDAX_WAL_SHARDS` (clamped to
    /// `1..=64`) so test/CI matrices can flip the layout without code
    /// changes.
    pub wal_shards: usize,
    /// Tiered cold storage. `None` (the default) keeps every version in
    /// RAM until vacuum drops it — byte-identical to the pre-cold
    /// engine. `Some` attaches bloom-filtered sorted-run files next to
    /// the WAL: vacuum and checkpoint *demote* versions below the
    /// snapshot horizon into runs instead of discarding them, bounding
    /// RAM residency while keeping all history readable via
    /// [`Database::begin_at`]. Ignored by in-memory databases. The
    /// default reads `TENDAX_COLD` (`1`/`true` enables the default
    /// [`ColdOptions`]) so test/CI matrices can flip the tier without
    /// code changes.
    pub cold_storage: Option<ColdOptions>,
}

impl Default for Options {
    fn default() -> Self {
        let wal_shards = std::env::var("TENDAX_WAL_SHARDS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .map(|n| n.clamp(1, 64))
            .unwrap_or(1);
        let cold_storage = match std::env::var("TENDAX_COLD") {
            Ok(v) if matches!(v.trim(), "1" | "true" | "on") => Some(ColdOptions::default()),
            _ => None,
        };
        Options {
            durability: DurabilityLevel::Buffered,
            clock: ClockMode::Logical,
            group_commit: true,
            maintenance: None,
            vfs: os_vfs(),
            wal_shards,
            cold_storage,
        }
    }
}

/// Aggregate engine statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Transactions begun (`begin` + `begin_at`). With `commits` and
    /// `aborts` this gives the retry amplification a workload pays:
    /// `txns_begun / commits` > 1 means optimistic losers re-ran.
    pub txns_begun: u64,
    pub commits: u64,
    pub aborts: u64,
    pub conflicts: u64,
    pub active_txns: usize,
    pub tables: usize,
    pub last_commit_ts: Ts,
    /// WAL batches written by group-commit flush leaders.
    pub wal_batches_flushed: u64,
    /// WAL records covered by those batches (mean batch size =
    /// `wal_records_flushed / wal_batches_flushed`).
    pub wal_records_flushed: u64,
    /// At `Fsync`, syncs avoided versus one-fsync-per-commit.
    pub wal_fsyncs_saved: u64,
    /// Shard files the active WAL writes to (1 = single-file layout,
    /// 0 = in-memory database). Per-shard counters are in
    /// [`Database::wal_shard_stats`].
    pub wal_shard_count: usize,
    /// Visible rows examined by scans (matching + skipped).
    pub rows_scanned: u64,
    /// Scanned rows rejected by a pushed-down predicate (never
    /// materialized into a result set).
    pub rows_skipped_by_predicate: u64,
    /// `Transaction::get` calls.
    pub point_gets: u64,
    /// Index lookups/range scans/cursor steps.
    pub index_lookups: u64,
    /// Vacuums run by the background maintenance thread.
    pub maintenance_vacuums: u64,
    /// Checkpoints run by the background maintenance thread.
    pub maintenance_checkpoints: u64,
    /// Versions reclaimed by vacuum (manual and automatic).
    pub versions_pruned: u64,
    /// Total nanoseconds commits spent blocked on the pipeline: waiting
    /// out DDL / checkpoint quiesce on the commit latch, plus the
    /// commit wait for the watermark to cover the new timestamp.
    pub commit_wait_ns: u64,
    /// Max gap observed between a freshly allocated commit timestamp
    /// and the snapshot watermark: how far commits have run ahead of
    /// the slowest in-flight publisher.
    pub watermark_lag_max: u64,
    /// DDL / checkpoint quiesces that had to wait for in-flight
    /// commits to drain.
    pub ddl_stalls: u64,
    /// Commits that would have aborted under row-granularity
    /// first-committer-wins but merged cleanly because every conflicting
    /// write carried a non-overlapping chain-neighborhood descriptor.
    pub commits_merged: u64,
    /// Individual row fields composed onto newer committed versions by
    /// merged commits.
    pub merge_fields_applied: u64,
    /// Write conflicts where descriptor-granularity validation was
    /// consulted and still found a true overlap (shared field, shared
    /// anchor, or a concurrent delete) — the aborts that remain
    /// semantically necessary. Always ≤ `conflicts`.
    pub write_conflicts_true_overlap: u64,
    /// Live cold-tier run files (0 when the tier is disabled or empty).
    pub cold_runs: usize,
    /// Versions currently resident in cold runs.
    pub cold_versions: u64,
    /// Demotion batches published (vacuum + checkpoint).
    pub cold_demotions: u64,
    /// Versions written to cold runs by those demotions.
    pub cold_versions_demoted: u64,
    /// Point reads served from a cold run (RAM missed, cold hit).
    pub cold_reads: u64,
    /// Run probes skipped because the bloom filter excluded the row.
    pub cold_bloom_skips: u64,
    /// Run probes where the bloom filter passed but the run held no
    /// eligible version.
    pub cold_bloom_false_positives: u64,
    /// Cold-tier compactions (run merges) completed.
    pub cold_compactions: u64,
}

/// Per-table statistics (monitoring, planner diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableStats {
    pub name: String,
    /// Rows visible at the latest snapshot.
    pub live_rows: usize,
    /// Stored versions including superseded/tombstoned ones.
    pub versions: usize,
    /// `(index name, distinct keys, entries)` per secondary index.
    pub indexes: Vec<(String, usize, usize)>,
}

#[derive(Debug, Default)]
struct Counters {
    txns_begun: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    conflicts: AtomicU64,
    rows_scanned: AtomicU64,
    rows_skipped: AtomicU64,
    point_gets: AtomicU64,
    index_lookups: AtomicU64,
    maintenance_vacuums: AtomicU64,
    maintenance_checkpoints: AtomicU64,
    versions_pruned: AtomicU64,
    commits_merged: AtomicU64,
    merge_fields_applied: AtomicU64,
    true_overlap_conflicts: AtomicU64,
}

/// The WAL implementation behind [`WalBackend`]: exactly one of the two
/// coordinators. `Single` is the pre-sharding [`GroupWal`], used for
/// every 1-file layout so `wal_shards = 1` stays byte-identical in
/// behaviour and on disk; `Sharded` is the multi-file parallel-fsync
/// coordinator (never constructed with fewer than two files).
#[derive(Debug)]
enum WalMode {
    Single(GroupWal),
    Sharded(ShardedWal),
}

/// A durability ticket tagged with the layout generation it was issued
/// under. A re-shard checkpoint swaps the [`WalMode`] and bumps the
/// generation; everything staged under an older generation was made
/// durable by that checkpoint's snapshot rename, so a stale ticket
/// acks immediately instead of being misread by the new coordinator
/// (whose barrier sequence numbers restart at zero).
#[derive(Debug, Clone, Copy)]
struct BackendTicket {
    gen: u64,
    ticket: WalTicket,
}

/// The database's WAL: a [`WalMode`] behind a mode lock, plus the shard
/// count the layout should converge to. Commits and DDL take the mode
/// lock shared; only a re-shard checkpoint (layout transition) takes it
/// exclusively, under the exclusive commit latch, so the swap observes
/// a fully quiesced pipeline.
#[derive(Debug)]
struct WalBackend {
    mode: RwLock<(u64, WalMode)>,
    /// Shard count from [`Options::wal_shards`]; applied at the next
    /// checkpoint if the on-disk layout differs.
    target_shards: usize,
    group_commit: bool,
    durability: DurabilityLevel,
    vfs: Arc<dyn Vfs>,
    base: PathBuf,
}

impl WalBackend {
    fn enqueue(&self, rec: &WalRecord) -> Result<BackendTicket> {
        let guard = self.mode.read();
        let ticket = match &guard.1 {
            WalMode::Single(w) => w.enqueue(rec)?,
            WalMode::Sharded(w) => w.enqueue(rec)?,
        };
        Ok(BackendTicket {
            gen: guard.0,
            ticket,
        })
    }

    fn stage_commit(&self, ts: Ts, rec: &WalRecord, route: u64) -> Result<BackendTicket> {
        let guard = self.mode.read();
        let ticket = match &guard.1 {
            WalMode::Single(w) => w.stage_commit(ts, rec)?,
            WalMode::Sharded(w) => w.stage_commit(ts, rec, route)?,
        };
        Ok(BackendTicket {
            gen: guard.0,
            ticket,
        })
    }

    fn skip_commit(&self, ts: Ts) {
        match &self.mode.read().1 {
            WalMode::Single(w) => w.skip_commit(ts),
            WalMode::Sharded(w) => w.skip_commit(ts),
        }
    }

    fn wait_durable(&self, ticket: BackendTicket) -> Result<()> {
        let guard = self.mode.read();
        if guard.0 != ticket.gen {
            // Issued under a layout that a re-shard checkpoint has since
            // replaced: the snapshot rename made it durable.
            return Ok(());
        }
        match &guard.1 {
            WalMode::Single(w) => w.wait_durable(ticket.ticket),
            WalMode::Sharded(w) => w.wait_durable(ticket.ticket),
        }
    }

    fn stats(&self) -> WalStats {
        match &self.mode.read().1 {
            WalMode::Single(w) => w.stats(),
            WalMode::Sharded(w) => w.stats(),
        }
    }

    fn shard_count(&self) -> usize {
        match &self.mode.read().1 {
            WalMode::Single(_) => 1,
            WalMode::Sharded(w) => w.shard_count(),
        }
    }

    fn shard_stats(&self) -> Vec<WalShardStats> {
        match &self.mode.read().1 {
            // The single-file WAL keeps aggregate counters only; shape
            // them as the one shard they describe (at `Fsync` every
            // batch is exactly one sync).
            WalMode::Single(w) => {
                let s = w.stats();
                vec![WalShardStats {
                    shard: 0,
                    batches_flushed: s.batches_flushed,
                    records_flushed: s.records_flushed,
                    fsyncs: if w.durability() == DurabilityLevel::Fsync {
                        s.batches_flushed
                    } else {
                        0
                    },
                    bytes_flushed: 0,
                    flush_wait_ns: w.flush_wait_ns(),
                }]
            }
            WalMode::Sharded(w) => w.shard_stats(),
        }
    }

    fn max_concurrent_leaders(&self) -> u64 {
        match &self.mode.read().1 {
            WalMode::Single(w) => (w.stats().batches_flushed > 0) as u64,
            WalMode::Sharded(w) => w.max_concurrent_leaders(),
        }
    }

    fn size(&self) -> (u64, u64) {
        match &self.mode.read().1 {
            WalMode::Single(w) => w.size(),
            WalMode::Sharded(w) => w.size(),
        }
    }

    fn begin_rewrite(&self) -> Result<()> {
        match &self.mode.read().1 {
            WalMode::Single(w) => w.begin_rewrite(),
            WalMode::Sharded(w) => w.begin_rewrite(),
        }
    }

    fn finish_rewrite(&self, records: &[WalRecord]) -> Result<()> {
        match &self.mode.read().1 {
            WalMode::Single(w) => w.finish_rewrite(records),
            WalMode::Sharded(w) => w.finish_rewrite(records),
        }
    }

    /// Whether the next checkpoint must be a layout transition.
    fn needs_reshard(&self) -> bool {
        self.shard_count() != self.target_shards
    }

    /// Re-shard checkpoint: checkpoint in the **old** layout first (one
    /// atomic tmp+rename commit point, siblings emptied), then converge
    /// the file set to `target_shards` and swap coordinators. Must be
    /// called with the commit pipeline quiesced (exclusive commit
    /// latch); `watermark` is the commit watermark the snapshot
    /// captures.
    ///
    /// Crash ordering: growing creates siblings ascending *after* the
    /// snapshot rename — a crash between leaves the old layout with a
    /// valid snapshot. Shrinking removes the highest-numbered sibling
    /// first — discovery stops at the first missing sibling, so a
    /// partial removal still presents a contiguous (empty) tail.
    fn reshard(&self, records: &[WalRecord], watermark: Ts) -> Result<()> {
        let mut guard = self.mode.write();
        match &guard.1 {
            WalMode::Single(w) => w.checkpoint(records)?,
            WalMode::Sharded(w) => w.checkpoint(records)?,
        }
        let old_n = match &guard.1 {
            WalMode::Single(_) => 1,
            WalMode::Sharded(w) => w.shard_count(),
        };
        let new_n = self.target_shards;
        let dir = self
            .base
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."));
        if new_n > old_n {
            for k in old_n..new_n {
                drop(WalFile::open_on(
                    self.vfs.clone(),
                    shard_path(&self.base, k),
                    self.durability,
                )?);
            }
            self.vfs.sync_dir(&dir)?;
        } else {
            for k in (new_n..old_n).rev() {
                self.vfs.remove(&shard_path(&self.base, k))?;
            }
            self.vfs.sync_dir(&dir)?;
        }
        let files: Result<Vec<WalFile>> = (0..new_n)
            .map(|k| WalFile::open_on(self.vfs.clone(), shard_path(&self.base, k), self.durability))
            .collect();
        let files = files?;
        guard.1 = if new_n == 1 {
            let file = files.into_iter().next().expect("new_n == 1");
            WalMode::Single(GroupWal::new(
                file,
                self.durability,
                self.group_commit,
                watermark,
            ))
        } else {
            WalMode::Sharded(ShardedWal::new(files, self.durability, watermark))
        };
        guard.0 += 1;
        Ok(())
    }
}

#[derive(Debug)]
pub(crate) struct DbInner {
    catalog: RwLock<Catalog>,
    tables: RwLock<BTreeMap<TableId, Arc<RwLock<TableStore>>>>,
    clock: Clock,
    /// Commit-timestamp allocator + contiguous-prefix watermark. The
    /// watermark (not a raw "last commit ts") is what snapshots read:
    /// it advances only when every lower timestamp has published, so a
    /// snapshot never has a gap even while commits publish out of
    /// timestamp order.
    sequencer: CommitSequencer,
    next_txn_id: AtomicU64,
    /// Active transactions and their snapshots (for the vacuum horizon).
    active: Mutex<BTreeMap<TxnId, Ts>>,
    /// Shared/exclusive pipeline latch: commits enter shared and run
    /// concurrently (serializing only on the per-table locks they
    /// write); DDL and the checkpoint copy phase enter exclusive,
    /// quiescing the pipeline.
    commit_latch: CommitLatch,
    /// Set once at open for durable databases; never set for in-memory.
    wal: OnceLock<WalBackend>,
    /// Serializes whole checkpoints (manual + maintenance). Taken
    /// *before* the exclusive commit latch so a checkpoint never waits
    /// out another checkpoint's swap-phase I/O while holding the latch
    /// — commits keep flowing until the pipeline quiesce proper.
    checkpoint_lock: Mutex<()>,
    counters: Counters,
    path: Option<PathBuf>,
    /// Background maintenance thread, if started.
    maintenance: Mutex<Option<MaintenanceTask>>,
    /// Highest vacuum horizon ever applied: versions visible strictly
    /// below it may be pruned, so `begin_at` refuses older snapshots.
    /// With a cold tier attached this tracks the *lineage retention*
    /// floor instead — demoted history above it stays readable from
    /// cold runs, so vacuum no longer raises it.
    vacuum_floor: AtomicU64,
    /// Tiered cold storage; set once at open for durable databases with
    /// `Options::cold_storage`, never for in-memory.
    cold: OnceLock<ColdStore>,
}

impl Drop for DbInner {
    fn drop(&mut self) {
        if let Some(task) = self.maintenance.get_mut().take() {
            task.shutdown();
        }
    }
}

/// A TeNDaX storage database. Cheap to clone (shared handle).
#[derive(Debug, Clone)]
pub struct Database {
    inner: Arc<DbInner>,
}

impl Database {
    /// A fresh, purely in-memory database (no WAL).
    pub fn open_in_memory() -> Database {
        Self::empty(None, ClockMode::Logical)
    }

    /// In-memory database with an explicit clock mode.
    pub fn open_in_memory_with(clock: ClockMode) -> Database {
        Self::empty(None, clock)
    }

    fn empty(path: Option<PathBuf>, clock: ClockMode) -> Database {
        Database {
            inner: Arc::new(DbInner {
                catalog: RwLock::new(Catalog::new()),
                tables: RwLock::new(BTreeMap::new()),
                clock: Clock::new(clock),
                sequencer: CommitSequencer::new(0),
                next_txn_id: AtomicU64::new(1),
                active: Mutex::new(BTreeMap::new()),
                commit_latch: CommitLatch::new(),
                wal: OnceLock::new(),
                checkpoint_lock: Mutex::new(()),
                counters: Counters::default(),
                path,
                maintenance: Mutex::new(None),
                vacuum_floor: AtomicU64::new(0),
                cold: OnceLock::new(),
            }),
        }
    }

    /// Rebuild a handle from the shared inner (maintenance-thread path).
    pub(crate) fn from_inner(inner: Arc<DbInner>) -> Database {
        Database { inner }
    }

    /// Open (or create) a durable database whose WAL lives at `path`.
    /// Replays the log, recovering all committed state.
    ///
    /// The shard layout is discovered from disk, not taken from
    /// [`Options::wal_shards`]: an existing database always opens in
    /// the layout it crashed in (sibling files carry live frames) and
    /// converges to the requested shard count at the next checkpoint.
    /// Only a brand-new database is created in the target layout
    /// directly.
    pub fn open(path: impl AsRef<Path>, options: Options) -> Result<Database> {
        let path = path.as_ref().to_path_buf();
        let db = Self::empty(Some(path.clone()), options.clock);
        let target = options.wal_shards.max(1);
        let on_disk = discover_shards_on(&*options.vfs, &path);
        let fresh = !options.vfs.exists(&path);
        let mode = if on_disk > 1 {
            // Sharded layout on disk: merge-replay the global contiguous
            // commit prefix and repair every file's tail.
            let rec = recover_sharded_on(&*options.vfs, &path, on_disk)?;
            db.apply_log(rec.records)?;
            // Aborted timestamps are elided from the replayed records
            // but still consumed durable slots; the sequencer must
            // start past them or it would re-allocate a timestamp that
            // already has a frame in the log.
            db.inner.sequencer.observe(rec.last_ts);
            let files: Result<Vec<WalFile>> = (0..on_disk)
                .map(|k| {
                    WalFile::open_on(
                        options.vfs.clone(),
                        shard_path(&path, k),
                        options.durability,
                    )
                })
                .collect();
            WalMode::Sharded(ShardedWal::new(files?, options.durability, rec.last_ts))
        } else if fresh && target > 1 {
            // Brand new database with a sharded target: create the full
            // layout up front (nothing to replay, nothing to converge).
            let files: Result<Vec<WalFile>> = (0..target)
                .map(|k| {
                    WalFile::open_on(
                        options.vfs.clone(),
                        shard_path(&path, k),
                        options.durability,
                    )
                })
                .collect();
            WalMode::Sharded(ShardedWal::new(files?, options.durability, 0))
        } else {
            let (records, valid_len) = WalFile::replay_with_valid_len_on(&*options.vfs, &path)?;
            db.apply_log(records)?;
            // Repair a torn tail before appending: anything past the last
            // valid frame is a crashed partial write.
            WalFile::truncate_on(&*options.vfs, &path, valid_len)?;
            let wal = WalFile::open_on(options.vfs.clone(), &path, options.durability)?;
            // The WAL's drain cursor starts at the recovered watermark so
            // the first post-restart commit (watermark + 1) drains first.
            WalMode::Single(GroupWal::new(
                wal,
                options.durability,
                options.group_commit,
                db.last_commit_ts(),
            ))
        };
        db.inner
            .wal
            .set(WalBackend {
                mode: RwLock::new((0, mode)),
                target_shards: target,
                group_commit: options.group_commit,
                durability: options.durability,
                vfs: options.vfs.clone(),
                base: path.clone(),
            })
            .expect("wal set once at open");
        if let Some(copts) = options.cold_storage {
            let cold = ColdStore::open(options.vfs.clone(), &path, copts)?;
            // `begin_at` below the lineage retention floor must keep
            // failing after a restart — compaction may already have
            // dropped that history.
            db.inner
                .vacuum_floor
                .fetch_max(cold.retention_floor(), Ordering::Relaxed);
            db.inner.cold.set(cold).expect("cold set once at open");
        }
        if let Some(m) = options.maintenance {
            db.start_maintenance(m);
        }
        Ok(db)
    }

    fn apply_log(&self, records: Vec<WalRecord>) -> Result<()> {
        let mut catalog = self.inner.catalog.write();
        let mut tables = self.inner.tables.write();
        for rec in records {
            self.apply_record(&mut catalog, &mut tables, rec)?;
        }
        Ok(())
    }

    fn apply_record(
        &self,
        catalog: &mut Catalog,
        tables: &mut BTreeMap<TableId, Arc<RwLock<TableStore>>>,
        rec: WalRecord,
    ) -> Result<()> {
        match rec {
            WalRecord::Meta { next_ts, clock } => {
                self.inner.sequencer.observe(next_ts.saturating_sub(1));
                self.inner.clock.observe(clock);
            }
            WalRecord::CreateTable { id, def } => {
                catalog.register_with_id(id, def.clone())?;
                tables.insert(id, Arc::new(RwLock::new(TableStore::new(id, def))));
            }
            WalRecord::DropTable { id } => {
                if let Ok(def) = catalog.definition(id) {
                    let name = def.name.clone();
                    catalog.remove(&name)?;
                }
                tables.remove(&id);
            }
            WalRecord::Commit {
                commit_ts, writes, ..
            } => {
                for w in writes {
                    let store = tables
                        .get(&w.table)
                        .ok_or(StorageError::UnknownTableId(w.table))?;
                    let (op, desc) = match w.op {
                        WalOp::Put(row) => {
                            self.observe_row_clock(row.values());
                            (VersionOp::Put(row), None)
                        }
                        WalOp::Delete => (VersionOp::Delete, None),
                        // Compose the logged delta onto the row's
                        // newest replayed state: this is commit order,
                        // so the result is exactly the merged row the
                        // commit published — and a torn log replays
                        // the surviving prefix of merges faithfully.
                        WalOp::Patch {
                            fields,
                            values,
                            anchors,
                        } => {
                            self.observe_row_clock(&values);
                            let guard = store.read();
                            let base =
                                guard.visible(w.row, TS_LATEST).cloned().ok_or_else(|| {
                                    StorageError::Internal(format!(
                                        "WAL patch for row {:?} with no base version",
                                        w.row
                                    ))
                                })?;
                            drop(guard);
                            let mut merged = Row::clone(&base);
                            for (&pos, val) in fields.iter().zip(values) {
                                merged.set(pos as usize, val);
                            }
                            (
                                VersionOp::Put(merged.into_shared()),
                                Some(Arc::new(WriteDescriptor::new(anchors, fields))),
                            )
                        }
                    };
                    store.write().apply_described(w.row, commit_ts, op, desc);
                }
                self.inner.sequencer.observe(commit_ts);
            }
            WalRecord::SnapshotRow {
                table,
                row,
                commit_ts,
                op,
            } => {
                let store = tables
                    .get(&table)
                    .ok_or(StorageError::UnknownTableId(table))?;
                let op = match op {
                    WalOp::Put(r) => {
                        self.observe_row_clock(r.values());
                        VersionOp::Put(r)
                    }
                    WalOp::Delete => VersionOp::Delete,
                    // Checkpoints compact to full rows; a patch here
                    // means the log writer and reader disagree.
                    WalOp::Patch { .. } => {
                        return Err(StorageError::Internal(
                            "snapshot row cannot be a patch".into(),
                        ))
                    }
                };
                store.write().apply(row, commit_ts, op);
                self.inner.sequencer.observe(commit_ts);
            }
            WalRecord::Watermark { table, next_row_id } => {
                if let Some(store) = tables.get(&table) {
                    store
                        .read()
                        .observe_row_id(RowId(next_row_id.saturating_sub(1)));
                }
            }
            // A timestamp that was allocated, durably marked, but
            // never committed (sharded WAL only): nothing to apply,
            // but the sequencer must not hand the slot out again.
            WalRecord::AbortMarker { commit_ts } => {
                self.inner.sequencer.observe(commit_ts);
            }
            // Single-file replay of a log written by (or descended
            // from) the sharded WAL — e.g. after a 4→1 re-shard
            // checkpoint: unwrap and apply the inner record. Merged
            // sharded recovery unwraps these itself.
            WalRecord::Barrier { inner, .. } => {
                self.apply_record(catalog, tables, *inner)?;
            }
        }
        Ok(())
    }

    /// During recovery, fast-forward the engine clock past every
    /// timestamp found in recovered rows: post-restart timestamps must
    /// stay strictly greater than anything already persisted, even when
    /// no checkpoint Meta record exists.
    fn observe_row_clock(&self, values: &[crate::value::Value]) {
        for v in values {
            if let crate::value::Value::Timestamp(t) = v {
                self.inner.clock.observe(*t);
            }
        }
    }

    // ------------------------------------------------------------------ DDL

    /// Create a table. DDL is durable; it quiesces the commit pipeline
    /// (exclusive latch) so the catalog never changes under a commit's
    /// feet and its WAL record lands between commit frames.
    pub fn create_table(&self, def: TableDef) -> Result<TableId> {
        let ddl = self.inner.commit_latch.exclusive();
        let mut catalog = self.inner.catalog.write();
        let id = catalog.register(def.clone())?;
        self.inner
            .tables
            .write()
            .insert(id, Arc::new(RwLock::new(TableStore::new(id, def.clone()))));
        let ticket = self.wal_enqueue(&WalRecord::CreateTable { id, def })?;
        drop(catalog);
        drop(ddl);
        self.wal_wait(ticket)?;
        Ok(id)
    }

    /// Drop a table and all of its data.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let ddl = self.inner.commit_latch.exclusive();
        let mut catalog = self.inner.catalog.write();
        let id = catalog.remove(name)?;
        self.inner.tables.write().remove(&id);
        let ticket = self.wal_enqueue(&WalRecord::DropTable { id })?;
        drop(catalog);
        drop(ddl);
        self.wal_wait(ticket)
    }

    /// Resolve a table name to its id.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.inner.catalog.read().lookup(name)
    }

    /// A clone of the table's schema.
    pub fn table_def(&self, id: TableId) -> Result<TableDef> {
        Ok(self.inner.catalog.read().definition(id)?.clone())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let catalog = self.inner.catalog.read();
        let mut names: Vec<String> = catalog.tables().map(|(_, d)| d.name.clone()).collect();
        names.sort();
        names
    }

    // --------------------------------------------------------- transactions

    /// Begin a snapshot-isolated transaction.
    pub fn begin(&self) -> Transaction {
        let id = TxnId(self.inner.next_txn_id.fetch_add(1, Ordering::Relaxed));
        self.inner
            .counters
            .txns_begun
            .fetch_add(1, Ordering::Relaxed);
        // The snapshot must be loaded *while holding* the `active` lock:
        // vacuum computes its horizon under this same lock, so a snapshot
        // read before registration could otherwise be overtaken by a
        // concurrent commit + vacuum, pruning versions this transaction
        // is entitled to see.
        let snapshot = {
            let mut active = self.inner.active.lock();
            // The watermark, not the newest allocated ts: every commit
            // at or below it has fully published, across all tables, so
            // the snapshot is gap-free by construction.
            let snapshot = self.inner.sequencer.watermark();
            active.insert(id, snapshot);
            snapshot
        };
        Transaction::new(self.clone(), id, snapshot)
    }

    /// Begin a transaction pinned to an explicit snapshot timestamp —
    /// the base version a disconnected or lagging replica last synced.
    /// Reads see the database as of `snapshot` (clamped to the current
    /// watermark), and first-committer-wins validation runs against that
    /// base, so commutative-descriptor writes merge across everything
    /// committed since. Fails with [`StorageError::SnapshotTooOld`] if
    /// vacuum has already pruned versions the snapshot is entitled to.
    pub fn begin_at(&self, snapshot: Ts) -> Result<Transaction> {
        let id = TxnId(self.inner.next_txn_id.fetch_add(1, Ordering::Relaxed));
        self.inner
            .counters
            .txns_begun
            .fetch_add(1, Ordering::Relaxed);
        let snapshot = {
            let mut active = self.inner.active.lock();
            let snapshot = snapshot.min(self.inner.sequencer.watermark());
            // Checked under the `active` lock for the same reason as
            // `begin`: vacuum computes its horizon (and raises the
            // floor) under this lock, so the floor cannot overtake a
            // snapshot between the check and registration.
            let floor = self.inner.vacuum_floor.load(Ordering::Relaxed);
            if snapshot < floor {
                return Err(StorageError::SnapshotTooOld {
                    requested: snapshot,
                    floor,
                });
            }
            active.insert(id, snapshot);
            snapshot
        };
        Ok(Transaction::new(self.clone(), id, snapshot))
    }

    pub(crate) fn abort_txn(&self, id: TxnId, counts_as_abort: bool) {
        self.inner.active.lock().remove(&id);
        if counts_as_abort {
            self.inner.counters.aborts.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn commit_txn(&self, txn: &mut Transaction) -> Result<Ts> {
        let writes = std::mem::take(&mut txn.writes);
        let created = std::mem::take(&mut txn.created);
        if writes.values().all(BTreeMap::is_empty) {
            self.inner.active.lock().remove(&txn.id());
            self.inner.counters.commits.fetch_add(1, Ordering::Relaxed);
            return Ok(txn.snapshot_ts());
        }

        // Enter the pipeline in shared mode: commits to disjoint tables
        // run this entire section concurrently, serializing only on the
        // write locks of the tables they actually touch. DDL and the
        // checkpoint copy phase are the exclusive mode that quiesces us.
        let commit = self.inner.commit_latch.shared();
        // Collect handles, then lock the affected tables in id order
        // (BTreeMap iteration is sorted, so lock order is globally fixed).
        let handles: Vec<(TableId, Arc<RwLock<TableStore>>)> = {
            let tables = self.inner.tables.read();
            let mut hs = Vec::with_capacity(writes.len());
            for &tid in writes.keys() {
                let h = tables
                    .get(&tid)
                    .ok_or(StorageError::UnknownTableId(tid))?
                    .clone();
                hs.push((tid, h));
            }
            hs
        };
        let mut guards: Vec<_> = handles.iter().map(|(_, h)| h.write()).collect();
        let plan: MergePlan = {
            let mut refs: BTreeMap<TableId, &mut TableStore> = BTreeMap::new();
            for ((tid, _), guard) in handles.iter().zip(guards.iter_mut()) {
                refs.insert(*tid, &mut **guard);
            }
            let mut true_overlap = false;
            let check = validate_writes(
                &writes,
                &created,
                txn.snapshot_ts(),
                txn.id(),
                &refs,
                &mut true_overlap,
            );
            match check {
                Ok(plan) => plan,
                Err(e) => {
                    if matches!(e, StorageError::WriteConflict { .. }) {
                        self.inner
                            .counters
                            .conflicts
                            .fetch_add(1, Ordering::Relaxed);
                        if true_overlap {
                            self.inner
                                .counters
                                .true_overlap_conflicts
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    return Err(e);
                }
            }
        };

        // The timestamp is allocated only *after* validation: a commit
        // that fails first-committer-wins never occupies a slot in the
        // watermark's pending window, so conflict aborts by construction
        // cannot stall snapshots. Allocation happens while we hold the
        // write locks of every table we touch, which is what keeps each
        // individual table's version chains applied in timestamp order.
        let commit_ts = self.inner.sequencer.allocate();

        // From allocation until `complete`, *every* exit — error return
        // or panic anywhere in staging/publication — must resolve the
        // timestamp slot, or the watermark wedges at `commit_ts - 1`
        // forever: every later begin() gets a stale snapshot and every
        // later commit hangs in wait_visible. This guard releases the
        // slot (and steps the WAL drain cursor past it) on unwind; the
        // success path disarms it just before `complete`.
        struct TsGuard<'a> {
            inner: &'a DbInner,
            ts: Ts,
        }
        impl Drop for TsGuard<'_> {
            fn drop(&mut self) {
                if let Some(wal) = self.inner.wal.get() {
                    wal.skip_commit(self.ts);
                }
                self.inner.sequencer.release(self.ts);
            }
        }
        let ts_guard = TsGuard {
            inner: &self.inner,
            ts: commit_ts,
        };

        // WAL staging before publication: if staging fails (e.g. the log
        // is poisoned), nothing became visible and the transaction
        // aborts cleanly — the guard hands the timestamp back so neither
        // the WAL drain cursor nor the watermark waits forever on a
        // commit that never published. Frames are staged by timestamp
        // and drained to the file in timestamp order, so the log replays
        // as a commit-order prefix without a global lock.
        // The WAL record and the published version share the buffered
        // row's allocation: a written row is never copied again after
        // the client handed it to `insert`.
        let wal_writes: Vec<WalWrite> = writes
            .iter()
            .flat_map(|(&table, ws)| {
                let plan = &plan;
                ws.iter().map(move |(&row, op)| WalWrite {
                    table,
                    row,
                    op: match op {
                        WriteOp::Put(r) => WalOp::Put(r.clone()),
                        WriteOp::Delete => WalOp::Delete,
                        // A patch logs only its delta (columns + anchors):
                        // replay composes it onto the row's then-newest
                        // state, which reproduces the merge outcome in
                        // commit order even if only a prefix of the log
                        // survives a crash. Values are taken from the
                        // merged row so the frame equals what published.
                        WriteOp::Patch { row: r, desc } => {
                            let eff = plan.rewrites.get(&(table, row)).unwrap_or(r);
                            WalOp::Patch {
                                fields: desc.fields.clone(),
                                values: desc
                                    .fields
                                    .iter()
                                    .map(|&p| eff.values()[p as usize].clone())
                                    .collect(),
                                anchors: desc.anchors.clone(),
                            }
                        }
                    },
                })
            })
            .collect();
        let rec = WalRecord::Commit {
            txn: txn.id().0,
            commit_ts,
            writes: wal_writes,
        };
        // Shard routing key: the lowest table id this commit touches.
        // Commits over disjoint tables thus land on different WAL shard
        // files and their fsyncs overlap; commits sharing their lowest
        // table serialize on one file, preserving that file's ts order.
        let route = writes.keys().next().expect("non-empty writes").0 as u64;
        let ticket = self.wal_stage(commit_ts, &rec, route)?;

        for ((tid, _), guard) in handles.iter().zip(guards.iter_mut()) {
            let ws = writes
                .get(tid)
                .expect("handle exists only for written table");
            for (&rid, op) in ws {
                let (vop, desc) = match op {
                    // Same shared allocation the WAL record holds.
                    WriteOp::Put(r) => (VersionOp::Put(r.clone()), None),
                    WriteOp::Delete => (VersionOp::Delete, None),
                    // Publish the merged row when validation rewrote the
                    // patch, and keep the descriptor on the version either
                    // way: later laggards merge across *this* commit by
                    // reading it.
                    WriteOp::Patch { row: r, desc } => {
                        let eff = plan.rewrites.get(&(*tid, rid)).unwrap_or(r);
                        (VersionOp::Put(eff.clone()), Some(desc.clone()))
                    }
                };
                guard.apply_described(rid, commit_ts, vop, desc);
            }
        }
        if !plan.rewrites.is_empty() {
            self.inner
                .counters
                .commits_merged
                .fetch_add(1, Ordering::Relaxed);
            self.inner
                .counters
                .merge_fields_applied
                .fetch_add(plan.fields_applied, Ordering::Relaxed);
        }
        // Past this point the commit cannot be retracted: its versions
        // are visible to new snapshots once the watermark folds them in.
        // A durability failure below must not be reported as an abort.
        txn.published = true;
        std::mem::forget(ts_guard);
        self.inner.sequencer.complete(commit_ts);
        self.inner.active.lock().remove(&txn.id());
        self.inner.counters.commits.fetch_add(1, Ordering::Relaxed);

        // Release every lock before waiting on the disk: followers piggy-
        // back on the leader's fsync while new committers stream through
        // the (now free) serial section.
        drop(guards);
        drop(commit);
        // Commit wait: don't return until the watermark covers our
        // timestamp, so any transaction begun after commit() returns is
        // guaranteed to see this commit (read-your-writes across
        // transactions, exactly the old global-lock contract). Bounded
        // by concurrent lower-ts publications — memory work — because
        // every committer resolves its sequencer slot before parking on
        // durability below.
        self.inner.sequencer.wait_visible(commit_ts);
        self.wal_wait(ticket)?;
        Ok(commit_ts)
    }

    /// Stage a non-commit record with the group-commit coordinator
    /// (no-op for an in-memory database). Caller must hold the commit
    /// latch in exclusive mode.
    fn wal_enqueue(&self, rec: &WalRecord) -> Result<Option<BackendTicket>> {
        match self.inner.wal.get() {
            Some(wal) => Ok(Some(wal.enqueue(rec)?)),
            None => Ok(None),
        }
    }

    /// Stage a commit record under its timestamp (no-op for an
    /// in-memory database). Called while holding the written tables'
    /// locks; the WAL drains frames in timestamp order on its own.
    /// `route` — the lowest table id the commit touches — picks the
    /// shard file in a sharded layout; the single-file WAL ignores it.
    fn wal_stage(
        &self,
        commit_ts: Ts,
        rec: &WalRecord,
        route: u64,
    ) -> Result<Option<BackendTicket>> {
        match self.inner.wal.get() {
            Some(wal) => Ok(Some(wal.stage_commit(commit_ts, rec, route)?)),
            None => Ok(None),
        }
    }

    /// Block until the staged record is durable at the configured level.
    /// Must be called with no locks held.
    fn wal_wait(&self, ticket: Option<BackendTicket>) -> Result<()> {
        match (self.inner.wal.get(), ticket) {
            (Some(wal), Some(t)) => wal.wait_durable(t),
            _ => Ok(()),
        }
    }

    // ----------------------------------------------------------- facilities

    /// The shared store handle for a table (cached by transactions so the
    /// per-read global map lookup disappears from hot loops).
    pub(crate) fn table_handle(&self, id: TableId) -> Result<Arc<RwLock<TableStore>>> {
        self.inner
            .tables
            .read()
            .get(&id)
            .cloned()
            .ok_or(StorageError::UnknownTableId(id))
    }

    // Read-path accounting (relaxed: monitoring only, never ordering).

    pub(crate) fn note_scan(&self, scanned: u64, skipped: u64) {
        self.inner
            .counters
            .rows_scanned
            .fetch_add(scanned, Ordering::Relaxed);
        self.inner
            .counters
            .rows_skipped
            .fetch_add(skipped, Ordering::Relaxed);
    }

    pub(crate) fn note_point_get(&self) {
        self.inner
            .counters
            .point_gets
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_index_lookup(&self) {
        self.inner
            .counters
            .index_lookups
            .fetch_add(1, Ordering::Relaxed);
    }

    /// A timestamp from the engine clock (used for row metadata).
    pub fn now(&self) -> i64 {
        self.inner.clock.now()
    }

    /// The newest gap-free commit timestamp (the snapshot watermark):
    /// every commit at or below it has fully published.
    pub fn last_commit_ts(&self) -> Ts {
        self.inner.sequencer.watermark()
    }

    /// Prune versions no live snapshot can see. Returns versions pruned.
    ///
    /// With a cold tier attached this *demotes* instead of discarding:
    /// the prunable versions are written to a durable cold run first,
    /// and only once the run is published does RAM let go of them — so
    /// the horizon can be the watermark itself (pinned snapshots read
    /// demoted history through the cold path) and `begin_at` keeps
    /// working all the way down to the lineage retention floor.
    pub fn vacuum(&self) -> usize {
        if let Some(cold) = self.inner.cold.get() {
            return self.vacuum_demote(cold);
        }
        let horizon = {
            let active = self.inner.active.lock();
            let horizon = active
                .values()
                .copied()
                .min()
                .unwrap_or_else(|| self.inner.sequencer.watermark());
            // Record the floor while still holding `active`, so a
            // concurrent `begin_at` cannot slip a pinned snapshot under
            // the horizon this vacuum is about to prune to.
            self.inner
                .vacuum_floor
                .fetch_max(horizon, Ordering::Relaxed);
            horizon
        };
        let tables = self.inner.tables.read();
        let mut pruned = 0;
        for handle in tables.values() {
            pruned += handle.write().vacuum(horizon);
        }
        self.inner
            .counters
            .versions_pruned
            .fetch_add(pruned as u64, Ordering::Relaxed);
        pruned
    }

    /// The demoting vacuum: collect → publish cold → prune RAM.
    ///
    /// Ordering is the whole story. The batch is written and the run
    /// published (manifest swap, cold floor raised) *before* any table
    /// write lock is taken; readers do RAM-first-then-cold with the
    /// floor checked after the RAM miss, so whichever side of the prune
    /// a reader lands on, it sees the version — from RAM before, from
    /// the run after. On any demotion error nothing is pruned.
    fn vacuum_demote(&self, cold: &ColdStore) -> usize {
        // One demotion/compaction/checkpoint-capture at a time.
        let _demote = cold.exclusive();
        // The watermark, not the min active snapshot: pinned readers no
        // longer pin RAM, they follow their versions into the cold tier.
        let horizon = self.inner.sequencer.watermark();
        let already_cold = cold.floor();
        let tables = self.inner.tables.read();
        let mut batch = Vec::new();
        for handle in tables.values() {
            handle
                .read()
                .collect_demotable(horizon, already_cold, &mut batch);
        }
        if self.note_cold_error(cold.demote(batch, horizon)).is_none() {
            return 0;
        }
        let mut pruned = 0;
        for handle in tables.values() {
            pruned += handle.write().vacuum(horizon);
        }
        self.inner
            .counters
            .versions_pruned
            .fetch_add(pruned as u64, Ordering::Relaxed);
        pruned
    }

    /// Swallow a cold-tier maintenance error: demotion failing means
    /// "keep everything in RAM", which is always safe — and under fault
    /// injection (power cuts mid-demotion) it is the *expected* outcome,
    /// so the error must not escalate. At worst an orphan run file is
    /// left behind, swept on the next open.
    fn note_cold_error<T>(&self, r: Result<T>) -> Option<T> {
        r.ok()
    }

    /// Raise the lineage retention floor: history at or below `ts`
    /// stops being reachable via [`Database::begin_at`] and becomes
    /// droppable by cold-tier compaction. Clamped so it never overtakes
    /// an active snapshot. Monotonic; lowering is a no-op. Without a
    /// cold tier this is equivalent to what vacuum already enforces.
    pub fn set_lineage_retention(&self, ts: Ts) -> Result<()> {
        let effective = {
            let active = self.inner.active.lock();
            let cap = active
                .values()
                .copied()
                .min()
                .unwrap_or_else(|| self.inner.sequencer.watermark());
            let effective = ts.min(cap);
            self.inner
                .vacuum_floor
                .fetch_max(effective, Ordering::Relaxed);
            effective
        };
        if let Some(cold) = self.inner.cold.get() {
            let _demote = cold.exclusive();
            cold.set_retention_floor(effective)?;
        }
        Ok(())
    }

    /// Merge cold runs when enough have accumulated, dropping history
    /// the lineage retention floor supersedes. Returns whether a
    /// compaction ran. A no-op without a cold tier.
    pub fn cold_compact_if_needed(&self) -> Result<bool> {
        match self.inner.cold.get() {
            Some(cold) => cold.compact_if_needed(),
            None => Ok(false),
        }
    }

    /// Versions currently resident in RAM across all tables — the
    /// number the cold tier's memtable budget bounds.
    pub fn ram_version_count(&self) -> usize {
        let tables = self.inner.tables.read();
        tables.values().map(|h| h.read().version_count()).sum()
    }

    /// Whether RAM residency exceeds the cold tier's memtable budget
    /// and a demoting vacuum could shed versions. Drives the
    /// maintenance thread's demotion arm.
    pub(crate) fn cold_over_budget(&self) -> bool {
        match self.inner.cold.get() {
            Some(cold) => {
                self.pruneable_estimate() > 0 && self.ram_version_count() > cold.memtable_budget()
            }
            None => false,
        }
    }

    pub(crate) fn cold_store(&self) -> Option<&ColdStore> {
        self.inner.cold.get()
    }

    /// Whether the tiered cold storage is attached to this database.
    pub fn cold_storage_enabled(&self) -> bool {
        self.inner.cold.get().is_some()
    }

    /// Compact the WAL to a snapshot of the latest committed state.
    ///
    /// Two phases. The **copy phase** quiesces the commit pipeline
    /// (exclusive latch) just long enough to mark the WAL as rewriting
    /// and collect one record per live row — `SharedRow` handles, so
    /// "copying" a table is cloning Arcs, not rows. The **swap phase**
    /// serializes those records, atomically replaces the log file, and
    /// splices everything committed during the rewrite onto the new
    /// tail — all with the latch *released*, so committers stream
    /// through the pipeline the entire time the checkpoint does I/O.
    pub fn checkpoint(&self) -> Result<()> {
        let Some(wal) = self.inner.wal.get() else {
            return Ok(()); // in-memory database: nothing to do
        };
        // Serialize on other checkpoints *before* quiescing the pipeline:
        // waiting out a concurrent checkpoint's swap-phase I/O must not
        // happen while holding the exclusive latch, or every commit
        // stalls for the duration of a full file rewrite.
        let _ckpt = self.inner.checkpoint_lock.lock();
        // With a cold tier, checkpoint demotes every version the hot
        // snapshot would discard (all non-newest versions plus newest
        // tombstones, minus what earlier demotions already cover), so
        // compacting the WAL stops erasing durable history. Hold the
        // demote lock across the whole checkpoint: the history captured
        // under the latch must still be what gets demoted after it.
        let cold = self.inner.cold.get();
        let _demote = cold.map(ColdStore::exclusive);
        if wal.needs_reshard() {
            // Layout transition (`Options::wal_shards` differs from the
            // on-disk shard count): stop-the-world under the exclusive
            // latch — checkpoint in the old layout, converge the file
            // set, swap coordinators. Rare (once per re-configuration),
            // so the lost copy/swap overlap doesn't matter.
            let _quiesce = self.inner.commit_latch.exclusive();
            let watermark = self.inner.sequencer.watermark();
            let batch = match cold {
                Some(cold) => self.collect_cold_history(cold, watermark),
                None => Vec::new(),
            };
            let records = match cold {
                Some(cold)
                    if self
                        .note_cold_error(cold.demote(batch.clone(), watermark))
                        .is_some() =>
                {
                    self.snapshot_records_with(&[])
                }
                // Demotion failed (or no cold tier): history rides in
                // the rewritten WAL instead.
                _ => self.snapshot_records_with(&batch),
            };
            return wal.reshard(&records, watermark);
        }
        // ---------------------------------------------------- copy phase
        let (hot, batch, watermark) = {
            let _quiesce = self.inner.commit_latch.exclusive();
            wal.begin_rewrite()?;
            let watermark = self.inner.sequencer.watermark();
            let batch = match cold {
                Some(cold) => self.collect_cold_history(cold, watermark),
                None => Vec::new(),
            };
            (self.snapshot_records_with(&[]), batch, watermark)
        };
        // ---------------------------------------------------- swap phase
        // Demote off-latch (commits flow during the run write). On
        // demotion failure, fall back to splicing the history into the
        // rewritten WAL — the batch was captured under the latch, so
        // the spliced records are exactly the quiesced state.
        match cold {
            Some(cold) if !batch.is_empty() => {
                if self
                    .note_cold_error(cold.demote(batch.clone(), watermark))
                    .is_some()
                {
                    wal.finish_rewrite(&hot)
                } else {
                    let full = splice_history(hot, &batch);
                    wal.finish_rewrite(&full)
                }
            }
            _ => wal.finish_rewrite(&hot),
        }
    }

    /// Everything a checkpoint at `watermark` would discard from the
    /// WAL but the cold tier should keep: per table, every non-newest
    /// version plus newest tombstones, minus versions already demoted.
    /// Caller holds the exclusive commit latch and the demote lock.
    fn collect_cold_history(
        &self,
        cold: &ColdStore,
        watermark: Ts,
    ) -> Vec<(TableId, RowId, Ts, WalOp)> {
        let already_cold = cold.floor();
        let tables = self.inner.tables.read();
        let mut batch = Vec::new();
        for handle in tables.values() {
            handle
                .read()
                .collect_demotable(watermark, already_cold, &mut batch);
        }
        batch
    }

    /// [`Database::snapshot_records`] plus `history` spliced in as
    /// [`WalRecord::SnapshotRow`]s — the cold-demotion-failed fallback,
    /// where discarded-from-WAL history must ride in the rewritten log
    /// instead of a cold run.
    fn snapshot_records_with(&self, history: &[(TableId, RowId, Ts, WalOp)]) -> Vec<WalRecord> {
        splice_history(self.snapshot_records(), history)
    }

    /// One record per piece of durable state at the current watermark:
    /// the checkpoint snapshot. Caller must hold the exclusive commit
    /// latch (quiesced: the watermark equals the newest allocated
    /// timestamp).
    fn snapshot_records(&self) -> Vec<WalRecord> {
        {
            let catalog = self.inner.catalog.read();
            let tables = self.inner.tables.read();
            // Quiesced: no commit is in flight, so the watermark equals
            // the newest allocated timestamp.
            let mut records = vec![WalRecord::Meta {
                next_ts: self.inner.sequencer.watermark() + 1,
                clock: self.inner.clock.peek(),
            }];
            for (id, def) in catalog.tables() {
                records.push(WalRecord::CreateTable {
                    id,
                    def: def.clone(),
                });
            }
            for (&id, handle) in tables.iter() {
                let store = handle.read();
                records.push(WalRecord::Watermark {
                    table: id,
                    next_row_id: store.row_id_watermark(),
                });
                // Emit only each row's newest version; dropped history is
                // invisible to every post-restart snapshot anyway.
                let mut newest: BTreeMap<RowId, (Ts, &VersionOp)> = BTreeMap::new();
                for (rid, v) in store.iter_versions() {
                    let entry = newest.entry(rid).or_insert((v.commit_ts, &v.op));
                    if v.commit_ts >= entry.0 {
                        *entry = (v.commit_ts, &v.op);
                    }
                }
                for (rid, (ts, op)) in newest {
                    if matches!(op, VersionOp::Delete) {
                        continue; // watermark already protects the id space
                    }
                    let wal_op = match op {
                        VersionOp::Put(r) => WalOp::Put(r.clone()),
                        VersionOp::Delete => unreachable!("filtered above"),
                    };
                    records.push(WalRecord::SnapshotRow {
                        table: id,
                        row: rid,
                        commit_ts: ts,
                        op: wal_op,
                    });
                }
            }
            records
        }
    }

    /// Start the background maintenance thread. Returns `false` (and
    /// does nothing) if one is already running. Works for in-memory
    /// databases too — checkpointing is a no-op there, but auto-vacuum
    /// still bounds version-chain growth.
    pub fn start_maintenance(&self, opts: MaintenanceOptions) -> bool {
        let mut slot = self.inner.maintenance.lock();
        if slot.is_some() {
            return false;
        }
        *slot = Some(MaintenanceTask::spawn(Arc::downgrade(&self.inner), opts));
        true
    }

    /// Stop the background maintenance thread, waiting for any tick in
    /// progress. Returns `false` if none was running.
    pub fn stop_maintenance(&self) -> bool {
        let task = self.inner.maintenance.lock().take();
        match task {
            Some(task) => {
                task.shutdown();
                true
            }
            None => false,
        }
    }

    /// `(bytes, records)` written to the WAL since open or the last
    /// checkpoint, summed across all shard files; `(0, 0)` for
    /// in-memory databases.
    pub fn wal_size(&self) -> (u64, u64) {
        self.inner.wal.get().map(WalBackend::size).unwrap_or((0, 0))
    }

    /// Shard files the active WAL writes to (1 = single-file layout,
    /// 0 = in-memory database).
    pub fn wal_shard_count(&self) -> usize {
        self.inner
            .wal
            .get()
            .map(WalBackend::shard_count)
            .unwrap_or(0)
    }

    /// Per-shard WAL flush counters (batches, records, fsyncs, bytes,
    /// and the time committers routed to the shard spent waiting for
    /// durability). Empty for in-memory databases; a single entry in
    /// the single-file layout.
    pub fn wal_shard_stats(&self) -> Vec<WalShardStats> {
        self.inner
            .wal
            .get()
            .map(WalBackend::shard_stats)
            .unwrap_or_default()
    }

    /// High-water mark of WAL flush leaders concurrently in flight —
    /// the "parallel fsync actually happened" receipt. At most 1 in the
    /// single-file layout.
    pub fn wal_max_concurrent_flush_leaders(&self) -> u64 {
        self.inner
            .wal
            .get()
            .map(WalBackend::max_concurrent_leaders)
            .unwrap_or(0)
    }

    /// Estimated versions a vacuum could reclaim right now: stored
    /// versions minus distinct rows, summed over all tables. An upper
    /// bound (long-lived snapshots may pin some), cheap to compute.
    pub fn pruneable_estimate(&self) -> usize {
        let tables = self.inner.tables.read();
        tables
            .values()
            .map(|h| {
                let store = h.read();
                store.version_count().saturating_sub(store.chain_count())
            })
            .sum()
    }

    pub(crate) fn note_auto_vacuum(&self) {
        self.inner
            .counters
            .maintenance_vacuums
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_auto_checkpoint(&self) {
        self.inner
            .counters
            .maintenance_checkpoints
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Engine statistics snapshot.
    pub fn stats(&self) -> Stats {
        let wal = self
            .inner
            .wal
            .get()
            .map(WalBackend::stats)
            .unwrap_or_default();
        let cold = self
            .inner
            .cold
            .get()
            .map(ColdStore::counters)
            .unwrap_or_default();
        Stats {
            txns_begun: self.inner.counters.txns_begun.load(Ordering::Relaxed),
            commits: self.inner.counters.commits.load(Ordering::Relaxed),
            aborts: self.inner.counters.aborts.load(Ordering::Relaxed),
            conflicts: self.inner.counters.conflicts.load(Ordering::Relaxed),
            active_txns: self.inner.active.lock().len(),
            tables: self.inner.catalog.read().len(),
            last_commit_ts: self.last_commit_ts(),
            wal_batches_flushed: wal.batches_flushed,
            wal_records_flushed: wal.records_flushed,
            wal_fsyncs_saved: wal.fsyncs_saved,
            wal_shard_count: self
                .inner
                .wal
                .get()
                .map(WalBackend::shard_count)
                .unwrap_or(0),
            rows_scanned: self.inner.counters.rows_scanned.load(Ordering::Relaxed),
            rows_skipped_by_predicate: self.inner.counters.rows_skipped.load(Ordering::Relaxed),
            point_gets: self.inner.counters.point_gets.load(Ordering::Relaxed),
            index_lookups: self.inner.counters.index_lookups.load(Ordering::Relaxed),
            maintenance_vacuums: self
                .inner
                .counters
                .maintenance_vacuums
                .load(Ordering::Relaxed),
            maintenance_checkpoints: self
                .inner
                .counters
                .maintenance_checkpoints
                .load(Ordering::Relaxed),
            versions_pruned: self.inner.counters.versions_pruned.load(Ordering::Relaxed),
            commit_wait_ns: self.inner.commit_latch.shared_wait_ns()
                + self.inner.sequencer.visibility_wait_ns(),
            watermark_lag_max: self.inner.sequencer.lag_max(),
            ddl_stalls: self.inner.commit_latch.exclusive_stalls(),
            commits_merged: self.inner.counters.commits_merged.load(Ordering::Relaxed),
            merge_fields_applied: self
                .inner
                .counters
                .merge_fields_applied
                .load(Ordering::Relaxed),
            write_conflicts_true_overlap: self
                .inner
                .counters
                .true_overlap_conflicts
                .load(Ordering::Relaxed),
            cold_runs: cold.runs,
            cold_versions: cold.cold_versions,
            cold_demotions: cold.demotions,
            cold_versions_demoted: cold.versions_demoted,
            cold_reads: cold.reads,
            cold_bloom_skips: cold.bloom_skips,
            cold_bloom_false_positives: cold.bloom_false_positives,
            cold_compactions: cold.compactions,
        }
    }

    /// Per-table statistics, sorted by table name.
    pub fn table_stats(&self) -> Vec<TableStats> {
        let catalog = self.inner.catalog.read();
        let tables = self.inner.tables.read();
        let latest = self.last_commit_ts();
        let mut out = Vec::new();
        for (id, def) in catalog.tables() {
            let Some(handle) = tables.get(&id) else {
                continue;
            };
            let store = handle.read();
            out.push(TableStats {
                name: def.name.clone(),
                live_rows: store.count_visible(latest),
                versions: store.version_count(),
                indexes: store
                    .indexes()
                    .iter()
                    .map(|i| (i.definition().name.clone(), i.key_count(), i.entry_count()))
                    .collect(),
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// The WAL path, if this database is durable.
    pub fn path(&self) -> Option<&Path> {
        self.inner.path.as_deref()
    }
}

/// Splice demotable history into a checkpoint record set as
/// [`WalRecord::SnapshotRow`]s, placed after the DDL prologue and
/// before every newest-version row so per-row replay stays
/// timestamp-monotonic (history versions always predate the newest
/// record of their row, and rows with a newest tombstone have no hot
/// record at all).
fn splice_history(
    mut records: Vec<WalRecord>,
    history: &[(TableId, RowId, Ts, WalOp)],
) -> Vec<WalRecord> {
    if history.is_empty() {
        return records;
    }
    let mut hist = history.to_vec();
    hist.sort_unstable_by_key(|(t, r, ts, _)| (t.0, r.0, *ts));
    let pos = records
        .iter()
        .rposition(|r| matches!(r, WalRecord::CreateTable { .. }))
        .map_or(records.len(), |i| i + 1);
    let rows: Vec<WalRecord> = hist
        .into_iter()
        .map(|(table, row, commit_ts, op)| WalRecord::SnapshotRow {
            table,
            row,
            commit_ts,
            op,
        })
        .collect();
    records.splice(pos..pos, rows);
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;
    use crate::row::Row;
    use crate::value::{DataType, Value};

    fn docs_def() -> TableDef {
        TableDef::new("docs")
            .column("name", DataType::Text)
            .column("author", DataType::Id)
            .nullable_column("note", DataType::Text)
            .unique_index("docs_by_name", &["name"])
            .index("docs_by_author", &["author"])
    }

    fn doc_row(name: &str, author: u64) -> Row {
        Row::new(vec![
            Value::Text(name.into()),
            Value::Id(author),
            Value::Null,
        ])
    }

    #[test]
    fn insert_commit_read_back() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut txn = db.begin();
        let rid = txn.insert(t, doc_row("a", 1)).unwrap();
        // Uncommitted: other transactions don't see it.
        let other = db.begin();
        assert!(other.get(t, rid).unwrap().is_none());
        // But the writer does (read-own-writes).
        assert!(txn.get(t, rid).unwrap().is_some());
        let ts = txn.commit().unwrap();
        assert!(ts > 0);
        let after = db.begin();
        assert_eq!(
            after
                .get(t, rid)
                .unwrap()
                .unwrap()
                .get(0)
                .unwrap()
                .as_text(),
            Some("a")
        );
        // The old snapshot still can't see it.
        assert!(other.get(t, rid).unwrap().is_none());
    }

    #[test]
    fn snapshot_isolation_for_scans() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut w = db.begin();
        w.insert(t, doc_row("a", 1)).unwrap();
        w.commit().unwrap();

        let reader = db.begin(); // snapshot: 1 row
        let mut w2 = db.begin();
        w2.insert(t, doc_row("b", 1)).unwrap();
        w2.commit().unwrap();

        assert_eq!(reader.count(t, &Predicate::True).unwrap(), 1);
        assert_eq!(db.begin().count(t, &Predicate::True).unwrap(), 2);
    }

    #[test]
    fn write_write_conflict_first_committer_wins() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut setup = db.begin();
        let rid = setup.insert(t, doc_row("a", 1)).unwrap();
        setup.commit().unwrap();

        let mut t1 = db.begin();
        let mut t2 = db.begin();
        t1.set(t, rid, &[("author", Value::Id(10))]).unwrap();
        t2.set(t, rid, &[("author", Value::Id(20))]).unwrap();
        t1.commit().unwrap();
        let err = t2.commit().unwrap_err();
        assert!(matches!(err, StorageError::WriteConflict { .. }));
        assert_eq!(db.stats().conflicts, 1);
        // The first committer's value stands.
        let r = db.begin().get(t, rid).unwrap().unwrap();
        assert_eq!(r.get(1).unwrap().as_id(), Some(10));
    }

    #[test]
    fn disjoint_writes_do_not_conflict() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut setup = db.begin();
        let r1 = setup.insert(t, doc_row("a", 1)).unwrap();
        let r2 = setup.insert(t, doc_row("b", 1)).unwrap();
        setup.commit().unwrap();

        let mut t1 = db.begin();
        let mut t2 = db.begin();
        t1.set(t, r1, &[("author", Value::Id(10))]).unwrap();
        t2.set(t, r2, &[("author", Value::Id(20))]).unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap(); // no conflict: different rows
    }

    #[test]
    fn unique_index_rejects_duplicates_across_txns() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut a = db.begin();
        a.insert(t, doc_row("same", 1)).unwrap();
        a.commit().unwrap();
        let mut b = db.begin();
        b.insert(t, doc_row("same", 2)).unwrap();
        assert!(matches!(
            b.commit().unwrap_err(),
            StorageError::UniqueViolation { .. }
        ));
    }

    #[test]
    fn unique_index_rejects_duplicates_within_txn() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut a = db.begin();
        a.insert(t, doc_row("same", 1)).unwrap();
        a.insert(t, doc_row("same", 2)).unwrap();
        assert!(matches!(
            a.commit().unwrap_err(),
            StorageError::UniqueViolation { .. }
        ));
    }

    #[test]
    fn unique_key_can_move_between_rows_in_one_txn() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut setup = db.begin();
        let rid = setup.insert(t, doc_row("taken", 1)).unwrap();
        setup.commit().unwrap();
        // Delete the holder and re-insert the key in the same transaction.
        let mut mv = db.begin();
        mv.delete(t, rid).unwrap();
        mv.insert(t, doc_row("taken", 2)).unwrap();
        mv.commit().unwrap();
        let rows = db
            .begin()
            .scan(
                t,
                &Predicate::Eq("name".into(), Value::Text("taken".into())),
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.get(1).unwrap().as_id(), Some(2));
    }

    #[test]
    fn delete_of_own_insert_vanishes() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut txn = db.begin();
        let rid = txn.insert(t, doc_row("ephemeral", 1)).unwrap();
        txn.delete(t, rid).unwrap();
        txn.commit().unwrap();
        assert_eq!(db.begin().count(t, &Predicate::True).unwrap(), 0);
    }

    #[test]
    fn update_missing_row_errors() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut txn = db.begin();
        assert!(matches!(
            txn.set(t, RowId(999), &[("author", Value::Id(1))]),
            Err(StorageError::RowNotFound { .. })
        ));
        assert!(matches!(
            txn.delete(t, RowId(999)),
            Err(StorageError::RowNotFound { .. })
        ));
    }

    #[test]
    fn abort_discards_writes() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut txn = db.begin();
        txn.insert(t, doc_row("x", 1)).unwrap();
        txn.abort();
        assert_eq!(db.begin().count(t, &Predicate::True).unwrap(), 0);
        assert_eq!(db.stats().aborts, 1);
    }

    #[test]
    fn drop_aborts_active_txn() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        {
            let mut txn = db.begin();
            txn.insert(t, doc_row("x", 1)).unwrap();
            // dropped here without commit
        }
        assert_eq!(db.begin().count(t, &Predicate::True).unwrap(), 0);
        // The dropped writer and the temporary reader are both deregistered.
        assert_eq!(db.stats().active_txns, 0);
        assert_eq!(db.stats().aborts, 1);
    }

    #[test]
    fn closed_txn_rejects_operations() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut txn = db.begin();
        txn.insert(t, doc_row("x", 1)).unwrap();
        let _ = &txn;
        let txn2 = db.begin();
        drop(txn);
        // A dropped/aborted handle can't be used (compile-time: moved).
        // Verify TxnClosed via commit-after-state-change path instead:
        assert!(txn2.get(t, RowId(1)).unwrap().is_none());
    }

    #[test]
    fn index_scan_and_planner_agree_with_full_scan() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut txn = db.begin();
        for i in 0..50u64 {
            txn.insert(t, doc_row(&format!("d{i}"), i % 5)).unwrap();
        }
        txn.commit().unwrap();
        let reader = db.begin();
        let via_index = reader
            .scan(t, &Predicate::Eq("author".into(), Value::Id(3)))
            .unwrap();
        assert_eq!(via_index.len(), 10);
        let via_full = reader
            .scan(
                t,
                &Predicate::Contains("name".into(), "d".into())
                    .and(Predicate::Eq("author".into(), Value::Id(3))),
            )
            .unwrap();
        assert_eq!(via_index.len(), via_full.len());
    }

    #[test]
    fn index_range_orders_by_key() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut txn = db.begin();
        for (name, author) in [("c", 3u64), ("a", 1), ("b", 2)] {
            txn.insert(t, doc_row(name, author)).unwrap();
        }
        txn.commit().unwrap();
        let reader = db.begin();
        let rows = reader
            .index_range(
                t,
                "docs_by_name",
                std::ops::Bound::Unbounded,
                std::ops::Bound::Unbounded,
            )
            .unwrap();
        let names: Vec<&str> = rows
            .iter()
            .map(|(_, r)| r.get(0).unwrap().as_text().unwrap())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn index_range_sees_own_writes() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut setup = db.begin();
        let rid = setup.insert(t, doc_row("m", 1)).unwrap();
        setup.commit().unwrap();

        let mut txn = db.begin();
        txn.insert(t, doc_row("a", 1)).unwrap();
        txn.set(t, rid, &[("name", Value::Text("z".into()))])
            .unwrap();
        let rows = txn
            .index_range(
                t,
                "docs_by_name",
                std::ops::Bound::Unbounded,
                std::ops::Bound::Unbounded,
            )
            .unwrap();
        let names: Vec<&str> = rows
            .iter()
            .map(|(_, r)| r.get(0).unwrap().as_text().unwrap())
            .collect();
        assert_eq!(names, vec!["a", "z"]);
    }

    #[test]
    fn index_prev_walks_newest_first() {
        let db = Database::open_in_memory();
        let t = db
            .create_table(
                TableDef::new("log")
                    .column("doc", DataType::Id)
                    .column("ts", DataType::Timestamp)
                    .index("by_doc_ts", &["doc", "ts"]),
            )
            .unwrap();
        let mut setup = db.begin();
        for (doc, ts) in [(1u64, 10i64), (1, 30), (1, 20), (2, 99)] {
            setup
                .insert(t, Row::new(vec![Value::Id(doc), Value::Timestamp(ts)]))
                .unwrap();
        }
        setup.commit().unwrap();

        let txn = db.begin();
        let prefix = [Value::Id(1)];
        let (k1, _, r1) = txn
            .index_prev(t, "by_doc_ts", &prefix, None)
            .unwrap()
            .unwrap();
        assert_eq!(r1.get(1).unwrap().as_timestamp(), Some(30));
        let (k2, _, r2) = txn
            .index_prev(t, "by_doc_ts", &prefix, Some(&k1))
            .unwrap()
            .unwrap();
        assert_eq!(r2.get(1).unwrap().as_timestamp(), Some(20));
        let (k3, _, r3) = txn
            .index_prev(t, "by_doc_ts", &prefix, Some(&k2))
            .unwrap()
            .unwrap();
        assert_eq!(r3.get(1).unwrap().as_timestamp(), Some(10));
        assert!(txn
            .index_prev(t, "by_doc_ts", &prefix, Some(&k3))
            .unwrap()
            .is_none());
        // A different prefix never bleeds in.
        let (_, _, r) = txn
            .index_prev(t, "by_doc_ts", &[Value::Id(2)], None)
            .unwrap()
            .unwrap();
        assert_eq!(r.get(1).unwrap().as_timestamp(), Some(99));
        assert!(txn
            .index_prev(t, "by_doc_ts", &[Value::Id(3)], None)
            .unwrap()
            .is_none());
    }

    #[test]
    fn index_prev_sees_own_writes_and_skips_overwritten() {
        let db = Database::open_in_memory();
        let t = db
            .create_table(
                TableDef::new("log")
                    .column("doc", DataType::Id)
                    .column("ts", DataType::Timestamp)
                    .index("by_doc_ts", &["doc", "ts"]),
            )
            .unwrap();
        let mut setup = db.begin();
        let old = setup
            .insert(t, Row::new(vec![Value::Id(1), Value::Timestamp(50)]))
            .unwrap();
        setup.commit().unwrap();

        let mut txn = db.begin();
        // Own insert with a newer ts wins.
        txn.insert(t, Row::new(vec![Value::Id(1), Value::Timestamp(70)]))
            .unwrap();
        let (_, _, r) = txn
            .index_prev(t, "by_doc_ts", &[Value::Id(1)], None)
            .unwrap()
            .unwrap();
        assert_eq!(r.get(1).unwrap().as_timestamp(), Some(70));
        // Overwriting the committed row moves it in the cursor's view.
        txn.set(t, old, &[("ts", Value::Timestamp(90))]).unwrap();
        let (_, rid, r) = txn
            .index_prev(t, "by_doc_ts", &[Value::Id(1)], None)
            .unwrap()
            .unwrap();
        assert_eq!(rid, old);
        assert_eq!(r.get(1).unwrap().as_timestamp(), Some(90));
        // Deleting it hides it.
        txn.delete(t, old).unwrap();
        let (_, _, r) = txn
            .index_prev(t, "by_doc_ts", &[Value::Id(1)], None)
            .unwrap()
            .unwrap();
        assert_eq!(r.get(1).unwrap().as_timestamp(), Some(70));
    }

    #[test]
    fn ddl_lifecycle() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        assert_eq!(db.table_id("docs").unwrap(), t);
        assert_eq!(db.table_names(), vec!["docs".to_string()]);
        assert!(matches!(
            db.create_table(docs_def()),
            Err(StorageError::TableExists(_))
        ));
        db.drop_table("docs").unwrap();
        assert!(db.table_id("docs").is_err());
        assert!(db.table_names().is_empty());
    }

    #[test]
    fn vacuum_respects_active_snapshots() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut txn = db.begin();
        let rid = txn.insert(t, doc_row("v", 1)).unwrap();
        txn.commit().unwrap();
        let old_reader = db.begin(); // pins the current snapshot
        for i in 0..5u64 {
            let mut w = db.begin();
            w.set(t, rid, &[("author", Value::Id(i + 10))]).unwrap();
            w.commit().unwrap();
        }
        // With the old reader live, its snapshot's version must survive.
        db.vacuum();
        let r = old_reader.get(t, rid).unwrap().unwrap();
        assert_eq!(r.get(1).unwrap().as_id(), Some(1));
        drop(old_reader);
        let pruned = db.vacuum();
        assert!(pruned > 0);
        let r = db.begin().get(t, rid).unwrap().unwrap();
        assert_eq!(r.get(1).unwrap().as_id(), Some(14));
    }

    /// Regression: `begin` used to load `last_commit_ts` *before*
    /// registering in `active`. In that window a concurrent commit +
    /// vacuum computed a horizon past the already-loaded snapshot and
    /// pruned the only version it could see — the reader then observed a
    /// row vanish (`get` returned `None` for a row that existed in its
    /// snapshot). With the snapshot now allocated under the `active`
    /// lock, the horizon can never overtake an unregistered snapshot.
    #[test]
    fn begin_snapshot_cannot_be_overtaken_by_vacuum() {
        use std::sync::atomic::AtomicBool;

        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut setup = db.begin();
        let rid = setup.insert(t, doc_row("contended", 1)).unwrap();
        setup.commit().unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        // Writer: keeps superseding the row so there is always a version
        // for vacuum to prune.
        let writer = {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let mut w = db.begin();
                    w.set(t, rid, &[("author", Value::Id(i % 100 + 1))])
                        .unwrap();
                    w.commit().unwrap();
                    i += 1;
                }
            })
        };
        // Vacuumer: tightens the horizon as aggressively as possible.
        let vacuumer = {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    db.vacuum();
                }
            })
        };
        // Readers racing begin() against the writer+vacuumer: the row
        // has existed since before any thread started, so every snapshot
        // must see *some* version of it.
        for _ in 0..2_000 {
            let r = db.begin();
            assert!(
                r.get(t, rid).unwrap().is_some(),
                "snapshot observed a vacuumed-away row: begin/vacuum race"
            );
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        vacuumer.join().unwrap();
    }

    #[test]
    fn maintenance_auto_vacuums_in_memory_db() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut setup = db.begin();
        let rid = setup.insert(t, doc_row("hot", 1)).unwrap();
        setup.commit().unwrap();
        for i in 0..50u64 {
            let mut w = db.begin();
            w.set(t, rid, &[("author", Value::Id(i + 2))]).unwrap();
            w.commit().unwrap();
        }
        assert!(db.pruneable_estimate() >= 50);
        assert!(db.start_maintenance(MaintenanceOptions {
            interval: std::time::Duration::from_millis(1),
            vacuum_pruneable: 10,
            ..MaintenanceOptions::default()
        }));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while db.stats().maintenance_vacuums == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "auto-vacuum never ran"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(db.stats().versions_pruned >= 50);
        assert_eq!(db.pruneable_estimate(), 0);
        assert!(db.stop_maintenance());
        assert!(!db.stop_maintenance(), "second stop must be a no-op");
    }

    #[test]
    fn maintenance_thread_exits_when_database_drops() {
        let db = Database::open_in_memory();
        assert!(db.start_maintenance(MaintenanceOptions {
            interval: std::time::Duration::from_millis(1),
            ..MaintenanceOptions::default()
        }));
        assert!(!db.start_maintenance(MaintenanceOptions::default()));
        // DbInner::drop joins the thread; returning from this test
        // without hanging is the assertion.
        drop(db);
    }

    #[test]
    fn savepoints_roll_back_partial_work() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut setup = db.begin();
        let keep = setup.insert(t, doc_row("keep", 1)).unwrap();
        setup.commit().unwrap();

        let mut txn = db.begin();
        txn.set(t, keep, &[("author", Value::Id(2))]).unwrap();
        let sp = txn.savepoint();
        let temp = txn.insert(t, doc_row("temp", 3)).unwrap();
        txn.set(t, keep, &[("author", Value::Id(99))]).unwrap();
        // Roll back the inner work; the outer update survives.
        txn.rollback_to(&sp).unwrap();
        assert!(txn.get(t, temp).unwrap().is_none());
        assert_eq!(
            txn.get(t, keep).unwrap().unwrap().get(1).unwrap().as_id(),
            Some(2)
        );
        txn.commit().unwrap();

        let reader = db.begin();
        assert_eq!(reader.count(t, &Predicate::True).unwrap(), 1);
        let row = reader.get(t, keep).unwrap().unwrap();
        assert_eq!(row.get(1).unwrap().as_id(), Some(2));
    }

    #[test]
    fn nested_savepoints() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut txn = db.begin();
        txn.insert(t, doc_row("a", 1)).unwrap();
        let sp1 = txn.savepoint();
        txn.insert(t, doc_row("b", 1)).unwrap();
        let sp2 = txn.savepoint();
        txn.insert(t, doc_row("c", 1)).unwrap();
        txn.rollback_to(&sp2).unwrap();
        assert_eq!(txn.write_count(), 2); // a, b
        txn.rollback_to(&sp1).unwrap();
        assert_eq!(txn.write_count(), 1); // a
        txn.commit().unwrap();
        assert_eq!(db.begin().count(t, &Predicate::True).unwrap(), 1);
    }

    #[test]
    fn empty_commit_is_cheap_and_valid() {
        let db = Database::open_in_memory();
        let txn = db.begin();
        let ts = txn.commit().unwrap();
        assert_eq!(ts, 0);
        assert_eq!(db.stats().commits, 1);
    }

    #[test]
    fn table_stats_report_live_and_versioned() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut txn = db.begin();
        let a = txn.insert(t, doc_row("a", 1)).unwrap();
        txn.insert(t, doc_row("b", 2)).unwrap();
        txn.commit().unwrap();
        let mut w = db.begin();
        w.set(t, a, &[("author", Value::Id(9))]).unwrap();
        w.commit().unwrap();
        let mut d = db.begin();
        d.delete(t, a).unwrap();
        d.commit().unwrap();

        let stats = db.table_stats();
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.name, "docs");
        assert_eq!(s.live_rows, 1);
        assert_eq!(s.versions, 4); // 2 inserts + update + delete
        assert_eq!(s.indexes.len(), 2);
        let by_name = s
            .indexes
            .iter()
            .find(|(n, _, _)| n == "docs_by_name")
            .unwrap();
        assert_eq!(by_name.1, 2); // keys "a", "b" (superset over versions)
    }

    #[test]
    fn clock_modes() {
        let db = Database::open_in_memory();
        assert_eq!(db.now(), 1);
        assert_eq!(db.now(), 2);
        let db = Database::open_in_memory_with(ClockMode::System);
        let a = db.now();
        assert!(a > 1_000_000_000); // some real epoch-ish value
        assert!(db.now() > a);
    }

    // ------------------------------------------------------ durability tests

    fn tmp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tendax-db-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn recovery_restores_tables_and_rows() {
        let path = tmp_wal("recover.wal");
        let rid;
        let t;
        {
            let db = Database::open(&path, Options::default()).unwrap();
            t = db.create_table(docs_def()).unwrap();
            let mut txn = db.begin();
            rid = txn.insert(t, doc_row("persisted", 7)).unwrap();
            txn.commit().unwrap();
        }
        let db = Database::open(&path, Options::default()).unwrap();
        let t2 = db.table_id("docs").unwrap();
        assert_eq!(t2, t);
        let row = db.begin().get(t2, rid).unwrap().unwrap();
        assert_eq!(row.get(0).unwrap().as_text(), Some("persisted"));
        assert_eq!(row.get(1).unwrap().as_id(), Some(7));
    }

    #[test]
    fn recovery_preserves_row_id_allocation() {
        let path = tmp_wal("rowids.wal");
        let first;
        {
            let db = Database::open(&path, Options::default()).unwrap();
            let t = db.create_table(docs_def()).unwrap();
            let mut txn = db.begin();
            first = txn.insert(t, doc_row("a", 1)).unwrap();
            txn.commit().unwrap();
        }
        let db = Database::open(&path, Options::default()).unwrap();
        let t = db.table_id("docs").unwrap();
        let mut txn = db.begin();
        let second = txn.insert(t, doc_row("b", 1)).unwrap();
        txn.commit().unwrap();
        assert!(second > first, "row ids must never be reused");
    }

    #[test]
    fn recovery_restores_logical_clock_from_row_timestamps() {
        let path = tmp_wal("clock.wal");
        let high_ts;
        {
            let db = Database::open(&path, Options::default()).unwrap();
            let t = db
                .create_table(TableDef::new("evts").column("at", DataType::Timestamp))
                .unwrap();
            for _ in 0..50 {
                db.now();
            }
            high_ts = db.now();
            let mut txn = db.begin();
            txn.insert(t, Row::new(vec![Value::Timestamp(high_ts)]))
                .unwrap();
            txn.commit().unwrap();
            // No checkpoint: crash without a Meta record.
        }
        let db = Database::open(&path, Options::default()).unwrap();
        // The next timestamp must exceed everything persisted, or undo
        // ordering (and any ts-ordered metadata) would break.
        assert!(db.now() > high_ts, "clock regressed across recovery");
    }

    #[test]
    fn checkpoint_compacts_and_recovers() {
        let path = tmp_wal("checkpoint.wal");
        let rid;
        {
            let db = Database::open(&path, Options::default()).unwrap();
            let t = db.create_table(docs_def()).unwrap();
            let mut txn = db.begin();
            rid = txn.insert(t, doc_row("keep", 1)).unwrap();
            let gone = txn.insert(t, doc_row("gone", 2)).unwrap();
            txn.commit().unwrap();
            for i in 0..10u64 {
                let mut w = db.begin();
                w.set(t, rid, &[("author", Value::Id(i))]).unwrap();
                w.commit().unwrap();
            }
            let mut d = db.begin();
            d.delete(t, gone).unwrap();
            d.commit().unwrap();
            db.checkpoint().unwrap();
        }
        let size_after = std::fs::metadata(&path).unwrap().len();
        let db = Database::open(&path, Options::default()).unwrap();
        let t = db.table_id("docs").unwrap();
        let reader = db.begin();
        assert_eq!(reader.count(t, &Predicate::True).unwrap(), 1);
        let row = reader.get(t, rid).unwrap().unwrap();
        assert_eq!(row.get(1).unwrap().as_id(), Some(9));
        // Deleted row's id is not reused after checkpoint+restart.
        let mut txn = db.begin();
        let fresh = txn.insert(t, doc_row("fresh", 1)).unwrap();
        txn.commit().unwrap();
        assert!(fresh.0 > rid.0 + 1);
        assert!(size_after > 0);
    }

    #[test]
    fn recovery_after_drop_table() {
        let path = tmp_wal("droptable.wal");
        {
            let db = Database::open(&path, Options::default()).unwrap();
            db.create_table(docs_def()).unwrap();
            db.create_table(TableDef::new("other").column("x", DataType::Int))
                .unwrap();
            db.drop_table("docs").unwrap();
        }
        let db = Database::open(&path, Options::default()).unwrap();
        assert!(db.table_id("docs").is_err());
        assert!(db.table_id("other").is_ok());
    }

    #[test]
    fn torn_tail_drops_only_last_txn() {
        let path = tmp_wal("torn.wal");
        {
            let db = Database::open(&path, Options::default()).unwrap();
            let t = db.create_table(docs_def()).unwrap();
            for i in 0..3u64 {
                let mut txn = db.begin();
                txn.insert(t, doc_row(&format!("d{i}"), i)).unwrap();
                txn.commit().unwrap();
            }
        }
        // Tear the final record.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let db = Database::open(&path, Options::default()).unwrap();
        let t = db.table_id("docs").unwrap();
        assert_eq!(db.begin().count(t, &Predicate::True).unwrap(), 2);
    }

    #[test]
    fn concurrent_inserters_all_commit() {
        let db = Database::open_in_memory();
        let t = db.create_table(docs_def()).unwrap();
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let mut txn = db.begin();
                    txn.insert(t, doc_row(&format!("w{w}-i{i}"), w)).unwrap();
                    txn.commit().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.begin().count(t, &Predicate::True).unwrap(), 400);
        assert_eq!(db.stats().commits, 400);
        assert_eq!(db.stats().conflicts, 0);
    }
}
