//! Engine clock.
//!
//! TeNDaX stamps every character and document with creation metadata.
//! Tests and benches need deterministic timestamps, so the engine clock is
//! pluggable: a strictly monotonic logical clock (default for tests) or the
//! system clock (microseconds since the Unix epoch).

use std::sync::atomic::{AtomicI64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Clock behaviour selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Strictly monotonic counter starting at 1; deterministic.
    Logical,
    /// Wall-clock microseconds, made strictly monotonic by never repeating.
    System,
}

/// The engine clock; all timestamps in the database come from here.
#[derive(Debug)]
pub struct Clock {
    mode: ClockMode,
    last: AtomicI64,
}

impl Clock {
    pub fn new(mode: ClockMode) -> Self {
        Clock {
            mode,
            last: AtomicI64::new(0),
        }
    }

    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// Next timestamp: strictly greater than every previously returned one.
    pub fn now(&self) -> i64 {
        match self.mode {
            ClockMode::Logical => self.last.fetch_add(1, Ordering::Relaxed) + 1,
            ClockMode::System => {
                let wall = SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_micros() as i64)
                    .unwrap_or(0);
                // Take max(wall, last+1) atomically.
                let mut prev = self.last.load(Ordering::Relaxed);
                loop {
                    let next = wall.max(prev + 1);
                    match self.last.compare_exchange_weak(
                        prev,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return next,
                        Err(p) => prev = p,
                    }
                }
            }
        }
    }

    /// The most recently returned timestamp (0 if none yet).
    pub fn peek(&self) -> i64 {
        self.last.load(Ordering::Relaxed)
    }

    /// Fast-forward so the next timestamp exceeds `seen` (recovery).
    pub fn observe(&self, seen: i64) {
        let mut prev = self.last.load(Ordering::Relaxed);
        while prev < seen {
            match self
                .last
                .compare_exchange_weak(prev, seen, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(p) => prev = p,
            }
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new(ClockMode::Logical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_is_strictly_monotonic() {
        let c = Clock::new(ClockMode::Logical);
        let a = c.now();
        let b = c.now();
        let d = c.now();
        assert!(a < b && b < d);
        assert_eq!(a, 1);
    }

    #[test]
    fn system_clock_never_repeats() {
        let c = Clock::new(ClockMode::System);
        let mut prev = c.now();
        for _ in 0..1000 {
            let t = c.now();
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn observe_fast_forwards() {
        let c = Clock::new(ClockMode::Logical);
        c.observe(500);
        assert!(c.now() > 500);
        c.observe(10); // never moves backwards
        assert!(c.now() > 501);
    }

    #[test]
    fn threads_see_unique_timestamps() {
        let c = std::sync::Arc::new(Clock::new(ClockMode::Logical));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.now()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<i64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
    }
}
