//! # tendax-storage
//!
//! The DBMS substrate for the TeNDaX reproduction: an embedded,
//! multi-user, multi-versioned storage engine.
//!
//! TeNDaX ("Text Native Database eXtension", Leone et al., EDBT 2006)
//! stores every character of every document as a database tuple, and turns
//! every editing action into ACID transactions. This crate provides the
//! database those transactions run against:
//!
//! * typed rows and schemas ([`value`], [`schema`], [`mod@row`])
//! * multi-versioned tables with secondary indexes ([`table`], [`index`])
//! * snapshot-isolation transactions with first-committer-wins conflict
//!   detection ([`txn`], [`db`])
//! * a typed predicate/query layer with an index-aware planner ([`query`])
//! * a CRC-checked binary write-ahead log with crash recovery and
//!   checkpoint compaction ([`wal`])
//!
//! ## Quick example
//!
//! ```
//! use tendax_storage::{Database, TableDef, DataType, Predicate, Value, row};
//!
//! let db = Database::open_in_memory();
//! let docs = db
//!     .create_table(
//!         TableDef::new("docs")
//!             .column("name", DataType::Text)
//!             .column("author", DataType::Id)
//!             .index("docs_by_author", &["author"]),
//!     )
//!     .unwrap();
//!
//! let mut txn = db.begin();
//! txn.insert(docs, row!["report", 42u64]).unwrap();
//! txn.commit().unwrap();
//!
//! let reader = db.begin();
//! let hits = reader
//!     .scan(docs, &Predicate::Eq("author".into(), Value::Id(42)))
//!     .unwrap();
//! assert_eq!(hits.len(), 1);
//! ```

pub mod aggregate;
pub mod clock;
pub mod cold;
pub(crate) mod commit;
pub mod db;
pub mod error;
pub mod index;
pub mod maintenance;
pub mod query;
pub mod row;
pub mod schema;
pub mod table;
pub mod txn;
pub mod util;
pub mod value;
pub mod vfs;
pub mod wal;

pub use aggregate::Aggregate;
pub use clock::ClockMode;
pub use cold::ColdOptions;
pub use db::{Database, Options, Stats, TableStats};
pub use error::{Result, StorageError};
pub use maintenance::MaintenanceOptions;
pub use query::{explain, plan_access, AccessPath, Predicate};
pub use row::{Row, RowId, SharedRow};
pub use schema::{ColumnDef, IndexDef, TableDef, TableId};
pub use table::{Ts, WriteDescriptor, TS_LATEST};
pub use txn::{Transaction, TxnId};
pub use value::{DataType, Value};
pub use vfs::{os_vfs, OsVfs, SimVfs, Vfs, VfsFile};
pub use wal::{shard_path, DurabilityLevel, WalShardStats, WalStats};
