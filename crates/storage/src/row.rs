//! Rows and row identifiers.

use std::sync::Arc;

use crate::value::Value;

/// A committed row shared between the version store, readers, the WAL
/// encoder and index maintenance. Reads hand out `SharedRow` clones
/// (one atomic increment) instead of deep-copying the `Vec<Value>`;
/// rows are immutable once committed, so sharing is safe. Callers that
/// need to mutate materialize an owned copy with `Row::clone(&shared)`.
pub type SharedRow = Arc<Row>;

/// Stable identifier of a row within one table. Never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RowId(pub u64);

impl RowId {
    pub const fn new(v: u64) -> Self {
        RowId(v)
    }
}

impl std::fmt::Display for RowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A materialized row: the values in schema column order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Wrap this row for shared, zero-copy hand-out.
    pub fn into_shared(self) -> SharedRow {
        Arc::new(self)
    }

    pub fn get(&self, pos: usize) -> Option<&Value> {
        self.values.get(pos)
    }

    /// Replace the value at `pos`. Panics if out of range (caller validated
    /// the position against the schema).
    pub fn set(&mut self, pos: usize, value: Value) {
        self.values[pos] = value;
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Rough heap footprint of this row in bytes: the value slots plus
    /// owned string/byte payloads. Used for RAM-residency accounting
    /// (e.g. the cold-tier memtable budget experiments), not billing —
    /// allocator overhead is deliberately ignored.
    pub fn approx_bytes(&self) -> usize {
        let mut n = std::mem::size_of::<Value>() * self.values.len();
        for v in &self.values {
            n += match v {
                Value::Text(s) => s.len(),
                Value::Bytes(b) => b.len(),
                _ => 0,
            };
        }
        n
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

/// Macro building a row from heterogeneous literals: `row![Value::Id(1), "x", 3i64]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::row::Row::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_accessors() {
        let mut r = Row::new(vec![Value::Id(1), Value::Text("a".into())]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(0), Some(&Value::Id(1)));
        assert_eq!(r.get(5), None);
        r.set(1, Value::Text("b".into()));
        assert_eq!(r.get(1).unwrap().as_text(), Some("b"));
        assert!(!r.is_empty());
    }

    #[test]
    fn row_macro_converts_literals() {
        let r = row![1u64, "hello", true, 42i64];
        assert_eq!(
            r.values(),
            &[
                Value::Id(1),
                Value::Text("hello".into()),
                Value::Bool(true),
                Value::Int(42)
            ]
        );
    }

    #[test]
    fn rowid_display() {
        assert_eq!(RowId(9).to_string(), "r9");
    }
}
