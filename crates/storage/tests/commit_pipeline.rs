//! Invariant and stress tests for the sharded commit pipeline.
//!
//! The pipeline replaces the global commit mutex with an atomic
//! timestamp sequencer, per-table publication, and a contiguous-prefix
//! watermark that governs snapshot visibility. Each test here targets
//! an invariant that the naive lock-free design ("atomic timestamp, no
//! watermark") breaks:
//!
//! * **gap-freedom** — a snapshot at timestamp `s` sees *every* commit
//!   with `ts <= s`, even while commits to other tables are mid-publish;
//! * **first-committer-wins** — conflict accounting and the error
//!   surface are unchanged, and losers never occupy a timestamp slot;
//! * **WAL prefix replay** — the log replays as a commit-order prefix
//!   at every truncation point, at every durability level, even when
//!   the frames were staged out of timestamp order by racing threads;
//! * **DDL/maintenance interleaving** — exclusive-mode operations
//!   (create/drop table, the checkpoint copy phase, auto-maintenance)
//!   stay correct while the shared-mode commit pipeline runs hot.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use tendax_storage::{
    DataType, Database, DurabilityLevel, MaintenanceOptions, Options, Predicate, Row, RowId,
    StorageError, TableDef, TableId, Ts, Value,
};

mod common;
use common::TestDir;

fn tmp(name: &str) -> (TestDir, PathBuf) {
    let dir = TestDir::new("tendax-pipeline");
    let p = dir.file(name);
    (dir, p)
}

fn seq_table(name: &str) -> TableDef {
    TableDef::new(name).column("seq", DataType::Int)
}

fn int_at(db: &Database, t: TableId, rid: RowId) -> i64 {
    db.begin()
        .get(t, rid)
        .unwrap()
        .unwrap()
        .get(0)
        .unwrap()
        .as_int()
        .unwrap()
}

/// Gap-freedom: while four writers commit to four disjoint tables, a
/// reader's snapshot must cover the *contiguous* prefix of commit
/// timestamps. With a naive "snapshot = newest allocated ts" scheme a
/// reader can be handed a timestamp whose predecessors have not
/// published yet and miss their writes; the watermark makes that
/// impossible. Verified post-hoc against the exact commit log.
#[test]
fn snapshots_never_expose_timestamp_gaps() {
    const WRITERS: usize = 4;
    const COMMITS: i64 = 300;

    let db = Database::open_in_memory();
    let mut tables = Vec::new();
    let mut rids = Vec::new();
    for k in 0..WRITERS {
        let t = db.create_table(seq_table(&format!("t{k}"))).unwrap();
        let mut setup = db.begin();
        let rid = setup.insert(t, Row::new(vec![Value::Int(0)])).unwrap();
        setup.commit().unwrap();
        tables.push(t);
        rids.push(rid);
    }

    // (commit_ts, table index, value) — pushed after commit() returns,
    // so post-join the log holds every successful commit exactly once.
    let log: Arc<Mutex<Vec<(Ts, usize, i64)>>> = Arc::default();
    let done = Arc::new(AtomicBool::new(false));
    // Writers + readers rendezvous here; the main thread does not.
    let start = Arc::new(Barrier::new(WRITERS + 2));

    let writers: Vec<_> = (0..WRITERS)
        .map(|k| {
            let db = db.clone();
            let log = log.clone();
            let start = start.clone();
            let (t, rid) = (tables[k], rids[k]);
            std::thread::spawn(move || {
                start.wait();
                for i in 1..=COMMITS {
                    let mut txn = db.begin();
                    txn.set(t, rid, &[("seq", Value::Int(i))]).unwrap();
                    let ts = txn.commit().unwrap();
                    log.lock().unwrap().push((ts, k, i));
                }
            })
        })
        .collect();

    // Two readers: each records (snapshot_ts, [value per table]).
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let db = db.clone();
            let done = done.clone();
            let start = start.clone();
            let tables = tables.clone();
            let rids = rids.clone();
            std::thread::spawn(move || {
                start.wait();
                let mut observed: Vec<(Ts, Vec<i64>)> = Vec::new();
                while !done.load(Ordering::Relaxed) {
                    let txn = db.begin();
                    let s = txn.snapshot_ts();
                    let vals: Vec<i64> = (0..WRITERS)
                        .map(|k| {
                            txn.get(tables[k], rids[k])
                                .unwrap()
                                .unwrap()
                                .get(0)
                                .unwrap()
                                .as_int()
                                .unwrap()
                        })
                        .collect();
                    observed.push((s, vals));
                }
                observed
            })
        })
        .collect();

    for h in writers {
        h.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);

    let log = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
    assert_eq!(log.len(), WRITERS * COMMITS as usize);

    let mut checked = 0u64;
    for reader in readers {
        for (s, vals) in reader.join().unwrap() {
            // Nothing *newer* than the snapshot leaked in, and nothing
            // at-or-below the snapshot is missing. Each writer's values
            // are monotone in ts, so per table both directions reduce
            // to: the observed value is the largest one committed <= s.
            for (ts, k, v) in &log {
                if *ts <= s {
                    assert!(
                        vals[*k] >= *v,
                        "snapshot {s} missed commit ts {ts} (table {k}, \
                         value {v}, saw {}): watermark exposed a gap",
                        vals[*k]
                    );
                }
            }
            // The strict future-leak check: the value seen must itself
            // have been committed at or below s.
            for k in 0..WRITERS {
                if vals[k] > 0 {
                    let ts_of = log
                        .iter()
                        .find(|(_, lk, lv)| *lk == k && *lv == vals[k])
                        .map(|(ts, _, _)| *ts)
                        .expect("observed value was committed");
                    assert!(
                        ts_of <= s,
                        "snapshot {s} saw value {} from future ts {ts_of}",
                        vals[k]
                    );
                }
            }
            checked += 1;
        }
    }
    assert!(checked > 0, "readers never observed anything");
}

/// First-committer-wins under the parallel pipeline: single-attempt
/// racers on one row lose with `WriteConflict`, losses are counted in
/// `Stats::conflicts`, and — the part a naive sequencer gets wrong —
/// losers never occupy a timestamp slot, so the watermark lands at
/// exactly setup + wins and fresh snapshots never wait on (or miss)
/// a timestamp that nobody will publish.
#[test]
fn conflict_losers_release_no_timestamps_and_are_counted() {
    const THREADS: usize = 4;
    const ATTEMPTS: usize = 50;

    let db = Database::open_in_memory();
    let t = db.create_table(seq_table("t")).unwrap();
    let mut setup = db.begin();
    let rid = setup.insert(t, Row::new(vec![Value::Int(0)])).unwrap();
    let setup_ts = setup.commit().unwrap();

    let start = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let db = db.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                start.wait();
                let mut wins = 0u64;
                let mut losses = 0u64;
                for _ in 0..ATTEMPTS {
                    let mut txn = db.begin();
                    let cur = txn
                        .get(t, rid)
                        .unwrap()
                        .unwrap()
                        .get(0)
                        .unwrap()
                        .as_int()
                        .unwrap();
                    txn.set(t, rid, &[("seq", Value::Int(cur + 1))]).unwrap();
                    match txn.commit() {
                        Ok(_) => wins += 1,
                        Err(StorageError::WriteConflict { .. }) => losses += 1,
                        Err(e) => panic!("unexpected commit error: {e:?}"),
                    }
                }
                (wins, losses)
            })
        })
        .collect();

    let mut wins = 0u64;
    let mut losses = 0u64;
    for h in handles {
        let (w, l) = h.join().unwrap();
        wins += w;
        losses += l;
    }
    assert_eq!(wins + losses, (THREADS * ATTEMPTS) as u64);
    assert!(wins > 0, "nobody ever committed");

    let stats = db.stats();
    assert_eq!(stats.conflicts, losses, "conflict accounting drifted");
    // Successful increments serialize, so the row counts the winners.
    assert_eq!(int_at(&db, t, rid), wins as i64);
    // Dense timestamps: every win took exactly one slot, every loss
    // took none, and the watermark reached the end of the sequence —
    // an unreleased loser slot would leave last_commit_ts stuck below.
    assert_eq!(db.last_commit_ts(), setup_ts + wins);
    assert_eq!(db.begin().snapshot_ts(), setup_ts + wins);
}

/// Commit wait: a session's next transaction must always see its own
/// previous commit. Without the watermark wait in `commit()`, a thread
/// racing other (disjoint!) committers can begin its next transaction
/// below its own commit timestamp and spuriously conflict with itself
/// — this test is the distilled form of exactly that failure, first
/// observed in the A7 scaling bench at 8 threads.
#[test]
fn own_commit_is_visible_to_the_next_transaction() {
    const THREADS: usize = 8;
    const UPDATES: i64 = 400;

    let db = Database::open_in_memory();
    let targets: Vec<(TableId, RowId)> = (0..THREADS)
        .map(|k| {
            let t = db.create_table(seq_table(&format!("t{k}"))).unwrap();
            let mut setup = db.begin();
            let rid = setup.insert(t, Row::new(vec![Value::Int(0)])).unwrap();
            setup.commit().unwrap();
            (t, rid)
        })
        .collect();

    let start = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = targets
        .into_iter()
        .map(|(t, rid)| {
            let db = db.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                start.wait();
                let mut last_ts = 0;
                for i in 1..=UPDATES {
                    let mut txn = db.begin();
                    assert!(
                        txn.snapshot_ts() >= last_ts,
                        "snapshot {} below own previous commit {last_ts}",
                        txn.snapshot_ts()
                    );
                    // The previous write must be visible — and the
                    // commit must never lose first-committer-wins
                    // against *ourselves* (nobody else touches this
                    // table).
                    let seen = txn
                        .get(t, rid)
                        .unwrap()
                        .unwrap()
                        .get(0)
                        .unwrap()
                        .as_int()
                        .unwrap();
                    assert_eq!(seen, i - 1, "own previous write invisible");
                    txn.set(t, rid, &[("seq", Value::Int(i))]).unwrap();
                    last_ts = txn.commit().expect("self-conflict");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(db.stats().conflicts, 0, "disjoint writers conflicted");
}

/// DDL takes the commit latch in exclusive mode while committers stream
/// through shared mode. Racing the two must neither deadlock nor lose
/// commits, and the WAL replay of the interleaving must reconstruct
/// the surviving schema and every row.
///
/// Swept over both WAL modes: in non-group (per-record-flush) mode,
/// `enqueue` used to write the DDL frame to the file while earlier-
/// timestamped commit frames were still parked in the inline queue
/// (their committers had dropped the shared latch but not yet reached
/// `wait_durable`), so replay could hit a DropTable before a commit
/// touching that table and fail with UnknownTableId.
fn ddl_race(group_commit: bool, path_name: &str) {
    const WRITERS: usize = 3;
    const COMMITS: i64 = 60;
    const DDL_CYCLES: usize = 15;

    let (_dir, path) = tmp(path_name);
    let opts = Options {
        group_commit,
        ..Options::default()
    };
    {
        let db = Database::open(&path, opts.clone()).unwrap();
        let mut tables = Vec::new();
        for k in 0..WRITERS {
            tables.push(db.create_table(seq_table(&format!("t{k}"))).unwrap());
        }

        let start = Arc::new(Barrier::new(WRITERS + 1));
        let writers: Vec<_> = (0..WRITERS)
            .map(|k| {
                let db = db.clone();
                let start = start.clone();
                let t = tables[k];
                std::thread::spawn(move || {
                    start.wait();
                    for i in 0..COMMITS {
                        let mut txn = db.begin();
                        txn.insert(t, Row::new(vec![Value::Int(i)])).unwrap();
                        txn.commit().unwrap();
                    }
                })
            })
            .collect();
        let ddl = {
            let db = db.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                start.wait();
                for c in 0..DDL_CYCLES {
                    let name = format!("scratch{c}");
                    let t = db.create_table(seq_table(&name)).unwrap();
                    let mut txn = db.begin();
                    txn.insert(t, Row::new(vec![Value::Int(c as i64)])).unwrap();
                    txn.commit().unwrap();
                    db.drop_table(&name).unwrap();
                }
            })
        };
        for h in writers {
            h.join().unwrap();
        }
        ddl.join().unwrap();

        assert_eq!(db.table_names().len(), WRITERS);
        for &t in &tables {
            assert_eq!(
                db.begin().count(t, &Predicate::True).unwrap() as i64,
                COMMITS
            );
        }
    }

    // Replay the interleaved log: schema and rows both survive.
    let db = Database::open(&path, opts).unwrap();
    assert_eq!(db.table_names().len(), WRITERS);
    for k in 0..WRITERS {
        let t = db.table_id(&format!("t{k}")).unwrap();
        assert_eq!(
            db.begin().count(t, &Predicate::True).unwrap() as i64,
            COMMITS
        );
        // And still writable after the replay.
        let mut txn = db.begin();
        txn.insert(t, Row::new(vec![Value::Int(999)])).unwrap();
        txn.commit().unwrap();
    }
}

#[test]
fn ddl_races_parallel_committers() {
    ddl_race(true, "ddl-race.wal");
}

#[test]
fn ddl_races_parallel_committers_nongroup_wal() {
    ddl_race(false, "ddl-race-nongroup.wal");
}

/// Regression for the non-group WAL ordering bug in its nastiest form:
/// a committer drops the shared latch and parks its inline frame, then
/// `drop_table` on the *same* table takes the exclusive latch and used
/// to write its DropTable frame ahead of the parked commit. Replay then
/// hit the commit after the DropTable and failed with UnknownTableId —
/// the database would not reopen until a checkpoint happened to rewrite
/// the log.
#[test]
fn drop_table_racing_nongroup_committers_keeps_log_replayable() {
    let (_dir, path) = tmp("drop-race-nongroup.wal");
    let opts = Options {
        group_commit: false,
        ..Options::default()
    };
    {
        let db = Database::open(&path, opts.clone()).unwrap();
        for round in 0..20 {
            let name = format!("doc{round}");
            let t = db.create_table(seq_table(&name)).unwrap();
            let writers: Vec<_> = (0..2)
                .map(|_| {
                    let db = db.clone();
                    std::thread::spawn(move || loop {
                        let mut txn = db.begin();
                        // The table can vanish under us at any point;
                        // any error just means the race is over.
                        if txn.insert(t, Row::new(vec![Value::Int(1)])).is_err() {
                            break;
                        }
                        if txn.commit().is_err() {
                            break;
                        }
                    })
                })
                .collect();
            std::thread::sleep(Duration::from_millis(2));
            db.drop_table(&name).unwrap();
            for h in writers {
                h.join().unwrap();
            }
        }
    }
    // The interleaved log must replay as a consistent prefix: every
    // commit frame precedes the DropTable of the table it touches.
    Database::open(&path, opts).unwrap();
}

/// The WAL-ordering half of the pipeline: four threads commit to four
/// disjoint tables so their frames are *staged* in racy arrival order,
/// yet the file must receive them in timestamp order. Truncating the
/// log at every cut point and replaying must always yield exactly the
/// set of commits with `ts <= recovered last_commit_ts` — a commit-
/// order prefix, never a subset with holes. Swept at every durability
/// level because each drains the staging buffer differently.
///
/// Pinned to `wal_shards: 1` (immune to the `TENDAX_WAL_SHARDS` matrix
/// leg): the sweep truncates one file, but a sharded layout spreads
/// these four tables across sibling files, and a base file copied
/// without its siblings is indistinguishable from a legitimate 1-shard
/// layout — sibling discovery, not the base file, is the layout source.
/// Multi-file cut coverage lives in `sim_crash.rs` (per-op power cuts
/// over every shard) and `reshard.rs` (torn sibling tails).
#[test]
fn wal_replays_as_commit_order_prefix_at_every_cut() {
    for durability in [
        DurabilityLevel::None,
        DurabilityLevel::Buffered,
        DurabilityLevel::Fsync,
    ] {
        const WRITERS: usize = 4;
        const COMMITS: i64 = 25;

        let (_dir, path) = tmp(&format!("prefix-{durability:?}.wal"));
        let log: Arc<Mutex<Vec<(Ts, usize, i64)>>> = Arc::default();
        {
            let opts = Options {
                durability,
                wal_shards: 1,
                ..Options::default()
            };
            let db = Database::open(&path, opts).unwrap();
            let tables: Vec<TableId> = (0..WRITERS)
                .map(|k| db.create_table(seq_table(&format!("t{k}"))).unwrap())
                .collect();
            let start = Arc::new(Barrier::new(WRITERS));
            let handles: Vec<_> = (0..WRITERS)
                .map(|k| {
                    let db = db.clone();
                    let log = log.clone();
                    let start = start.clone();
                    let t = tables[k];
                    std::thread::spawn(move || {
                        start.wait();
                        for i in 0..COMMITS {
                            let mut txn = db.begin();
                            txn.insert(t, Row::new(vec![Value::Int(i)])).unwrap();
                            let ts = txn.commit().unwrap();
                            log.lock().unwrap().push((ts, k, i));
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            // Dropping the database drains whatever the durability level
            // left buffered, so the full log is on disk afterwards.
        }
        let log = log.lock().unwrap().clone();
        assert_eq!(log.len(), WRITERS * COMMITS as usize);

        let full = std::fs::read(&path).unwrap();
        let step = (full.len() / 40).max(1);
        let mut cuts: Vec<usize> = (0..full.len()).step_by(step).collect();
        cuts.push(full.len());
        for (n, cut) in cuts.into_iter().enumerate() {
            let (_cut_dir, cut_path) = tmp(&format!("prefix-{durability:?}-cut{n}.wal"));
            std::fs::write(&cut_path, &full[..cut]).unwrap();

            let db = Database::open(
                &cut_path,
                Options {
                    wal_shards: 1,
                    ..Options::default()
                },
            )
            .unwrap();
            let horizon = db.last_commit_ts();
            for k in 0..WRITERS {
                let recovered: BTreeSet<i64> = match db.table_id(&format!("t{k}")) {
                    Ok(t) => db
                        .begin()
                        .scan(t, &Predicate::True)
                        .unwrap()
                        .iter()
                        .map(|(_, r)| r.get(0).unwrap().as_int().unwrap())
                        .collect(),
                    // The cut fell before this table's DDL record.
                    Err(_) => BTreeSet::new(),
                };
                let expected: BTreeSet<i64> = log
                    .iter()
                    .filter(|(ts, lk, _)| *lk == k && *ts <= horizon)
                    .map(|(_, _, v)| *v)
                    .collect();
                assert_eq!(
                    recovered,
                    expected,
                    "{durability:?} cut {cut}/{}: table {k} is not the \
                     ts<={horizon} prefix — the log was written out of \
                     commit order",
                    full.len()
                );
            }
        }
    }
}

/// Checkpoints (manual and auto) quiesce the pipeline via the exclusive
/// latch while disjoint writers hammer shared mode. Every acknowledged
/// commit survives live, after the storm, and across a reopen; the
/// background thread's budgets actually fire under the new pipeline.
#[test]
fn checkpoints_and_auto_maintenance_under_parallel_writers() {
    const WRITERS: usize = 4;
    const UPDATES: i64 = 150;

    let (_dir, path) = tmp("maint-pipeline.wal");
    let opts = Options {
        maintenance: Some(MaintenanceOptions {
            interval: Duration::from_millis(1),
            vacuum_pruneable: 64,
            checkpoint_wal_bytes: 16 * 1024,
            checkpoint_wal_records: 400,
            ..MaintenanceOptions::default()
        }),
        ..Options::default()
    };
    {
        let db = Database::open(&path, opts).unwrap();
        let mut tables = Vec::new();
        let mut rids = Vec::new();
        for k in 0..WRITERS {
            let t = db.create_table(seq_table(&format!("t{k}"))).unwrap();
            let mut setup = db.begin();
            rids.push(setup.insert(t, Row::new(vec![Value::Int(0)])).unwrap());
            setup.commit().unwrap();
            tables.push(t);
        }

        let start = Arc::new(Barrier::new(WRITERS + 1));
        let handles: Vec<_> = (0..WRITERS)
            .map(|k| {
                let db = db.clone();
                let start = start.clone();
                let (t, rid) = (tables[k], rids[k]);
                std::thread::spawn(move || {
                    start.wait();
                    for i in 1..=UPDATES {
                        let mut txn = db.begin();
                        txn.set(t, rid, &[("seq", Value::Int(i))]).unwrap();
                        txn.commit().unwrap();
                    }
                })
            })
            .collect();
        // A manual checkpointer on top of the background one: both use
        // the same exclusive latch path.
        let ckpt = {
            let db = db.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                start.wait();
                for _ in 0..10 {
                    db.checkpoint().unwrap();
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        ckpt.join().unwrap();

        for k in 0..WRITERS {
            assert_eq!(int_at(&db, tables[k], rids[k]), UPDATES);
        }
        // Give the background thread a bounded window to demonstrate it
        // still fires under the new pipeline.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let stats = db.stats();
            if stats.maintenance_vacuums > 0 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "auto-maintenance never ran under the pipeline: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    let db = Database::open(&path, Options::default()).unwrap();
    for k in 0..WRITERS {
        let t = db.table_id(&format!("t{k}")).unwrap();
        let rows = db.begin().scan(t, &Predicate::True).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.get(0).unwrap().as_int(), Some(UPDATES));
    }
}

/// The commit-wait and watermark-lag counters surface through
/// `Database::stats()` and move under a contended workload.
#[test]
fn pipeline_stats_are_surfaced() {
    let db = Database::open_in_memory();
    let t = db.create_table(seq_table("t")).unwrap();
    let start = Arc::new(Barrier::new(4));
    let handles: Vec<_> = (0..4)
        .map(|w| {
            let db = db.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                start.wait();
                for i in 0..50i64 {
                    let mut txn = db.begin();
                    txn.insert(t, Row::new(vec![Value::Int(w * 1000 + i)]))
                        .unwrap();
                    txn.commit().unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = db.stats();
    assert_eq!(stats.commits, 200);
    // Concurrent allocation means at least one committer saw the
    // watermark trail its own timestamp.
    assert!(
        stats.watermark_lag_max >= 1,
        "no watermark lag observed under 4 concurrent writers: {stats:?}"
    );
    // DDL on a busy database registers an exclusive stall only when it
    // actually contends; just assert the counter is wired (readable).
    let _ = stats.ddl_stalls;
    let _ = stats.commit_wait_ns;
}
