//! Crash-injection and stress tests for the copy/swap checkpoint and the
//! background maintenance subsystem.
//!
//! The checkpoint has two phases: a *copy* phase (snapshot the engine
//! state under the exclusive commit latch, start a rewrite) and a *swap*
//! phase
//! (write the snapshot to a temp file, atomically rename it over the
//! log, splice commits that landed mid-rewrite onto the new tail). A
//! crash at any point must leave the log recoverable to either the
//! pre-checkpoint state or the post-checkpoint state — never a hybrid.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tendax_storage::{
    DataType, Database, MaintenanceOptions, Options, Predicate, Row, TableDef, Value,
};

mod common;
use common::TestDir;

fn tmp(name: &str) -> (TestDir, PathBuf) {
    let dir = TestDir::new("tendax-maint");
    let p = dir.file(name);
    (dir, p)
}

fn table_def() -> TableDef {
    TableDef::new("t").column("seq", DataType::Int)
}

fn commit_seq(db: &Database, t: tendax_storage::TableId, seq: i64) {
    let mut txn = db.begin();
    txn.insert(t, Row::new(vec![Value::Int(seq)])).unwrap();
    txn.commit().unwrap();
}

fn seqs(db: &Database, t: tendax_storage::TableId) -> Vec<i64> {
    let mut out: Vec<i64> = db
        .begin()
        .scan(t, &Predicate::True)
        .unwrap()
        .iter()
        .map(|(_, r)| r.get(0).unwrap().as_int().unwrap())
        .collect();
    out.sort_unstable();
    out
}

/// Crash in the swap phase *before* the rename: the temp file exists
/// (possibly torn) but the old log is untouched. Recovery must ignore
/// the temp file and yield exactly the pre-checkpoint state.
#[test]
fn crash_before_rename_recovers_pre_checkpoint_state() {
    let (_dir, path) = tmp("pre-rename.wal");
    let n = 10i64;
    {
        let db = Database::open(&path, Options::default()).unwrap();
        let t = db.create_table(table_def()).unwrap();
        for i in 0..n {
            commit_seq(&db, t, i);
        }
    }
    // Back up the log as it stood before the checkpoint, then run a
    // checkpoint so we have realistic snapshot bytes for the temp file.
    let pre_checkpoint = std::fs::read(&path).unwrap();
    {
        let db = Database::open(&path, Options::default()).unwrap();
        db.checkpoint().unwrap();
    }
    let snapshot = std::fs::read(&path).unwrap();

    // Simulate the crash: old log restored, temp file present and torn
    // (the rewrite wrote part of the snapshot, then the process died
    // before the atomic rename).
    std::fs::write(&path, &pre_checkpoint).unwrap();
    let tmp_path = path.with_extension("wal.tmp");
    std::fs::write(&tmp_path, &snapshot[..snapshot.len() / 2]).unwrap();

    let db = Database::open(&path, Options::default()).unwrap();
    let t = db.table_id("t").unwrap();
    assert_eq!(seqs(&db, t), (0..n).collect::<Vec<_>>());

    // The recovered database is writable and a further checkpoint (which
    // reuses the same temp path) succeeds despite the stale temp file.
    commit_seq(&db, t, n);
    db.checkpoint().unwrap();
    drop(db);
    let db = Database::open(&path, Options::default()).unwrap();
    let t = db.table_id("t").unwrap();
    assert_eq!(seqs(&db, t), (0..=n).collect::<Vec<_>>());
}

/// Crash *after* the rename, while splicing mid-rewrite commits onto
/// the new tail: any truncation at or past the snapshot boundary must
/// recover the full checkpointed state plus a prefix of the spliced
/// commits — never less than the checkpoint, never a corrupt hybrid.
#[test]
fn torn_splice_after_rename_recovers_checkpoint_plus_prefix() {
    let (_dir, path) = tmp("torn-splice.wal");
    let n = 8i64;
    let extra = 5i64;
    {
        let db = Database::open(&path, Options::default()).unwrap();
        let t = db.create_table(table_def()).unwrap();
        for i in 0..n {
            commit_seq(&db, t, i);
        }
        db.checkpoint().unwrap();
        let snapshot_len = std::fs::metadata(&path).unwrap().len() as usize;
        for i in 0..extra {
            commit_seq(&db, t, n + i);
        }
        drop(db);

        let full = std::fs::read(&path).unwrap();
        let tail = full.len() - snapshot_len;
        // Cut the log at a sweep of points in the spliced tail,
        // including both boundaries.
        for step in 0..=4usize {
            let cut = snapshot_len + tail * step / 4;
            let (_cut_dir, cut_path) = tmp(&format!("torn-splice-cut{step}.wal"));
            std::fs::write(&cut_path, &full[..cut]).unwrap();

            let db = Database::open(&cut_path, Options::default()).unwrap();
            let t = db.table_id("t").unwrap();
            let got = seqs(&db, t);
            assert!(
                got.len() as i64 >= n,
                "checkpointed rows lost at cut {step}: {got:?}"
            );
            assert!(got.len() as i64 <= n + extra);
            // Exactly the checkpoint plus a commit-order prefix of the
            // spliced tail.
            assert_eq!(got, (0..got.len() as i64).collect::<Vec<_>>());
            // And still writable.
            commit_seq(&db, t, 999);
        }
    }
}

/// Writers keep committing while checkpoints run concurrently; every
/// acknowledged commit must be present live and after a reopen.
#[test]
fn concurrent_commits_survive_repeated_checkpoints() {
    let (_dir, path) = tmp("concurrent-ckpt.wal");
    let writers = 4i64;
    let per_writer = 50i64;
    {
        let db = Database::open(&path, Options::default()).unwrap();
        let t = db.create_table(table_def()).unwrap();
        let done = Arc::new(AtomicBool::new(false));

        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..per_writer {
                        commit_seq(&db, t, w * 1_000 + i);
                    }
                })
            })
            .collect();
        let checkpointer = {
            let db = db.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut runs = 0u32;
                while !done.load(Ordering::Relaxed) {
                    db.checkpoint().unwrap();
                    runs += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
                runs
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        let runs = checkpointer.join().unwrap();
        assert!(runs > 0, "checkpointer never ran");

        let expected: Vec<i64> = (0..writers)
            .flat_map(|w| (0..per_writer).map(move |i| w * 1_000 + i))
            .collect();
        assert_eq!(seqs(&db, t), expected);
    }
    let db = Database::open(&path, Options::default()).unwrap();
    let t = db.table_id("t").unwrap();
    assert_eq!(
        db.begin().count(t, &Predicate::True).unwrap() as i64,
        writers * per_writer
    );
}

/// A transaction's snapshot stays repeatable while a writer storm and
/// an aggressive vacuum run underneath it: two reads of the same row
/// inside one transaction always agree.
#[test]
fn vacuum_under_load_keeps_snapshots_repeatable() {
    let db = Database::open_in_memory();
    let t = db.create_table(table_def()).unwrap();
    let rid = {
        let mut txn = db.begin();
        let rid = txn.insert(t, Row::new(vec![Value::Int(0)])).unwrap();
        txn.commit().unwrap();
        rid
    };

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut i = 1i64;
            while !stop.load(Ordering::Relaxed) {
                let mut w = db.begin();
                w.set(t, rid, &[("seq", Value::Int(i))]).unwrap();
                w.commit().unwrap();
                i += 1;
            }
        })
    };
    let vacuumer = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                db.vacuum();
            }
        })
    };

    for _ in 0..500 {
        let reader = db.begin();
        let first = reader
            .get(t, rid)
            .unwrap()
            .expect("row predates every snapshot")
            .get(0)
            .unwrap()
            .as_int()
            .unwrap();
        std::thread::yield_now();
        let second = reader
            .get(t, rid)
            .unwrap()
            .expect("pinned version vanished mid-transaction")
            .get(0)
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(first, second, "snapshot read was not repeatable");
    }

    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    vacuumer.join().unwrap();
}

/// End-to-end: with tiny budgets the background thread checkpoints and
/// vacuums on its own, the log stays bounded (far smaller than the
/// unmaintained twin), and a reopen recovers everything.
#[test]
fn auto_maintenance_bounds_wal_and_preserves_data() {
    let updates = 2_500i64;

    // Twin run without maintenance: how big the log grows unattended.
    let (_bare_dir, bare_path) = tmp("auto-maint-bare.wal");
    {
        let db = Database::open(&bare_path, Options::default()).unwrap();
        let t = db.create_table(table_def()).unwrap();
        let rid = {
            let mut txn = db.begin();
            let rid = txn.insert(t, Row::new(vec![Value::Int(0)])).unwrap();
            txn.commit().unwrap();
            rid
        };
        for i in 1..=updates {
            let mut txn = db.begin();
            txn.set(t, rid, &[("seq", Value::Int(i))]).unwrap();
            txn.commit().unwrap();
        }
    }
    let bare_len = std::fs::metadata(&bare_path).unwrap().len();

    let (_dir, path) = tmp("auto-maint.wal");
    let opts = Options {
        maintenance: Some(MaintenanceOptions {
            interval: Duration::from_millis(1),
            vacuum_pruneable: 32,
            checkpoint_wal_bytes: 8 * 1024,
            checkpoint_wal_records: 200,
            ..MaintenanceOptions::default()
        }),
        ..Options::default()
    };
    {
        let db = Database::open(&path, opts.clone()).unwrap();
        let t = db.create_table(table_def()).unwrap();
        let rid = {
            let mut txn = db.begin();
            let rid = txn.insert(t, Row::new(vec![Value::Int(0)])).unwrap();
            txn.commit().unwrap();
            rid
        };
        for i in 1..=updates {
            let mut txn = db.begin();
            txn.set(t, rid, &[("seq", Value::Int(i))]).unwrap();
            txn.commit().unwrap();
        }
        // The thread runs on its own schedule; give it a bounded window
        // to catch up with the backlog.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let stats = db.stats();
            if stats.maintenance_checkpoints > 0 && stats.maintenance_vacuums > 0 {
                assert!(stats.versions_pruned > 0);
                break;
            }
            assert!(
                Instant::now() < deadline,
                "background maintenance never caught up: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    // The tail since the last auto-checkpoint can approach the byte
    // budget, so assert a conservative bound: well under half the
    // unmaintained twin (which grows linearly with updates).
    let maintained_len = std::fs::metadata(&path).unwrap().len();
    assert!(
        maintained_len * 2 < bare_len,
        "maintained log not bounded: {maintained_len} vs bare {bare_len}"
    );

    let db = Database::open(&path, Options::default()).unwrap();
    let t = db.table_id("t").unwrap();
    let rows = db.begin().scan(t, &Predicate::True).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(
        rows[0].1.get(0).unwrap().as_int().unwrap(),
        updates,
        "latest committed value lost across reopen"
    );
}
