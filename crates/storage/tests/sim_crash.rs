//! Crash-simulation suite: real workloads on [`SimVfs`], crashed at
//! injected points, reopened, and checked against the commit-order-
//! prefix invariant at every durability level.
//!
//! What truncation sweeps (`recovery_faults.rs`) cannot model, this
//! suite does: unsynced page-cache bytes vanishing wholesale, fsyncs
//! that error and *drop* the dirty pages, torn final sectors, and
//! directory entries (creations, renames) whose durability lags the
//! file data they point at.
//!
//! Seed discipline: every test derives its schedule from explicit
//! seeds, and every assertion message carries the reproducing seed.
//! On a failure, rerun exactly that schedule with
//! `TENDAX_SIM_SEED=<n> cargo test -p tendax-storage --test sim_crash`.

use std::sync::{Arc, Barrier, Mutex};

use tendax_storage::{
    ColdOptions, DataType, Database, DurabilityLevel, MaintenanceOptions, Options, Predicate, Row,
    RowId, SimVfs, StorageError, TableDef, TableId, Ts, Value,
};

const WAL: &str = "/sim/db.wal";

/// The seeds to sweep. `TENDAX_SIM_SEED=<n>` narrows the sweep to one
/// failing schedule; the default covers 32.
fn seeds() -> Vec<u64> {
    match std::env::var("TENDAX_SIM_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("TENDAX_SIM_SEED must be an integer, got {s:?}"))],
        Err(_) => (0..32).collect(),
    }
}

fn sim_opts_sharded(
    vfs: &SimVfs,
    durability: DurabilityLevel,
    group_commit: bool,
    wal_shards: usize,
) -> Options {
    Options {
        durability,
        group_commit,
        vfs: Arc::new(vfs.clone()),
        wal_shards,
        ..Options::default()
    }
}

fn table_def(name: &str) -> TableDef {
    TableDef::new(name).column("seq", DataType::Int)
}

/// Every durability level × both single-file WAL modes (group and
/// per-record flush), plus each durability level over 4 WAL shard
/// files. The sharded coordinator always batches, so the
/// per-record-flush baseline (`group = false`) only exists at 1 shard.
const SHARD_COMBOS: [(DurabilityLevel, bool, usize); 9] = [
    (DurabilityLevel::None, true, 1),
    (DurabilityLevel::None, false, 1),
    (DurabilityLevel::Buffered, true, 1),
    (DurabilityLevel::Buffered, false, 1),
    (DurabilityLevel::Fsync, true, 1),
    (DurabilityLevel::Fsync, false, 1),
    (DurabilityLevel::None, true, 4),
    (DurabilityLevel::Buffered, true, 4),
    (DurabilityLevel::Fsync, true, 4),
];

/// Commit seq = 0..n single-row transactions sequentially; returns how
/// many commits were acknowledged. Stops at the first error (the
/// injected power cut) — later calls would all fail anyway.
fn run_sequential_sharded(
    vfs: &SimVfs,
    durability: DurabilityLevel,
    group: bool,
    shards: usize,
    n: i64,
) -> usize {
    let Ok(db) = Database::open(WAL, sim_opts_sharded(vfs, durability, group, shards)) else {
        return 0;
    };
    let Ok(t) = db.create_table(table_def("t")) else {
        return 0;
    };
    let mut acked = 0;
    for i in 0..n {
        let mut txn = db.begin();
        if txn.insert(t, Row::new(vec![Value::Int(i)])).is_err() {
            break;
        }
        if txn.commit().is_err() {
            break;
        }
        acked += 1;
    }
    acked
}

/// The sorted `seq` values recovered for `name` (empty if the cut fell
/// before the table's DDL record).
fn recovered_seqs(db: &Database, name: &str) -> Vec<i64> {
    match db.table_id(name) {
        Ok(t) => {
            let mut v: Vec<i64> = db
                .begin()
                .scan(t, &Predicate::True)
                .unwrap()
                .iter()
                .map(|(_, r)| r.get(0).unwrap().as_int().unwrap())
                .collect();
            v.sort_unstable();
            v
        }
        Err(_) => Vec::new(),
    }
}

// ------------------------------------------------------------ basic sanity

/// No faults: the simulated disk behaves like a disk. Every combo
/// commits, closes, reopens, and reads everything back.
#[test]
fn sim_backend_roundtrips_all_combos() {
    for (durability, group, shards) in SHARD_COMBOS {
        let vfs = SimVfs::new(0);
        assert_eq!(
            run_sequential_sharded(&vfs, durability, group, shards, 10),
            10
        );
        let db = Database::open(WAL, sim_opts_sharded(&vfs, durability, group, shards)).unwrap();
        assert_eq!(
            recovered_seqs(&db, "t"),
            (0..10).collect::<Vec<_>>(),
            "{durability:?} group={group} shards={shards}: clean reopen lost rows"
        );
    }
}

// ------------------------------------------------- crash-point exhaustion

/// The core sweep: for every seed, every durability level, and both WAL
/// modes, cut the power at *every* op index the fault-free schedule
/// contains, crash, reopen, and require a commit-order prefix — plus,
/// at `Fsync`, that every acknowledged commit survived.
#[test]
fn crash_at_every_injected_op_recovers_a_commit_prefix() {
    const N: i64 = 6;
    for seed in seeds() {
        for (durability, group, shards) in SHARD_COMBOS {
            // Fault-free twin run: measures the op schedule to sweep.
            let twin = SimVfs::new(seed);
            let acked = run_sequential_sharded(&twin, durability, group, shards, N);
            assert_eq!(
                acked as i64, N,
                "seed {seed} {durability:?} group={group} shards={shards}: fault-free run failed"
            );
            let total_ops = twin.ops();
            assert!(total_ops > 0);

            for cut in 0..total_ops {
                let vfs = SimVfs::new(seed);
                vfs.power_fail_after(cut);
                let acked = run_sequential_sharded(&vfs, durability, group, shards, N);
                vfs.crash();

                let ctx = format!(
                    "seed {seed} {durability:?} group={group} shards={shards} \
                     cut {cut}/{total_ops} (rerun with TENDAX_SIM_SEED={seed})"
                );
                let db = Database::open(WAL, sim_opts_sharded(&vfs, durability, group, shards))
                    .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
                let got = recovered_seqs(&db, "t");
                let expected: Vec<i64> = (0..got.len() as i64).collect();
                assert_eq!(
                    got, expected,
                    "{ctx}: recovery is not a commit-order prefix"
                );
                assert!(
                    got.len() as i64 <= N,
                    "{ctx}: recovered rows never committed"
                );
                if durability == DurabilityLevel::Fsync {
                    assert!(
                        got.len() >= acked,
                        "{ctx}: {acked} commits were acknowledged at Fsync but only \
                         {} survived the crash",
                        got.len()
                    );
                }
            }
        }
    }
}

// -------------------------------------------------- disjoint writer storm

/// Threaded storm: writers on disjoint tables race until the power
/// cut. After crash + reopen, each writer's recovered seqs must be
/// contiguous from 0 (the replayed log is a commit-ts prefix, and each
/// writer's commits carry ascending timestamps); recovery must be
/// downward-closed over acknowledged commit timestamps across *all*
/// writers; and at `Fsync` no acknowledged commit may be missing.
#[test]
fn disjoint_writer_storm_crash_keeps_commit_order_prefix() {
    const WRITERS: usize = 3;
    const COMMITS: i64 = 30;
    for seed in seeds() {
        for (durability, group, shards) in [
            (DurabilityLevel::Fsync, true, 1),
            (DurabilityLevel::Fsync, false, 1),
            (DurabilityLevel::Buffered, true, 1),
            // Sharded: the disjoint writers' frames spread across all 4
            // files, so the cut tears a *multi-file* tail and recovery
            // must still produce the global commit-ts prefix.
            (DurabilityLevel::Fsync, true, 4),
            (DurabilityLevel::Buffered, true, 4),
        ] {
            // Twin storm estimates the post-setup op schedule length.
            let est = {
                let twin = SimVfs::new(seed);
                let before = {
                    let db =
                        Database::open(WAL, sim_opts_sharded(&twin, durability, group, shards))
                            .unwrap();
                    for k in 0..WRITERS {
                        db.create_table(table_def(&format!("t{k}"))).unwrap();
                    }
                    twin.ops()
                };
                let acked = storm(&twin, durability, group, shards, WRITERS, COMMITS, None);
                assert_eq!(acked.len() as i64, WRITERS as i64 * COMMITS);
                twin.ops() - before
            };

            // One seed-derived cut point per schedule; the seed sweep
            // covers the range.
            let cut = est * (seed % 8 + 1) / 9;
            let vfs = SimVfs::new(seed);
            let acked = storm(&vfs, durability, group, shards, WRITERS, COMMITS, Some(cut));
            vfs.crash();

            let ctx = format!(
                "seed {seed} {durability:?} group={group} shards={shards} cut {cut}/{est} \
                 (rerun with TENDAX_SIM_SEED={seed})"
            );
            let db = Database::open(WAL, sim_opts_sharded(&vfs, durability, group, shards))
                .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));

            let mut recovered_by_writer = Vec::new();
            for k in 0..WRITERS {
                let got = recovered_seqs(&db, &format!("t{k}"));
                let expected: Vec<i64> = (0..got.len() as i64).collect();
                assert_eq!(got, expected, "{ctx}: writer {k} has a gap");
                recovered_by_writer.push(got.len() as i64);
            }

            // Downward closure: if an acked commit at ts X survived,
            // every acked commit with a smaller ts survived too — the
            // WAL drains frames in timestamp order, so recovery can
            // never skip over an earlier commit.
            let mut acked_sorted = acked.clone();
            acked_sorted.sort_unstable();
            let mut seen_missing_at: Option<Ts> = None;
            for &(ts, writer, seq) in &acked_sorted {
                let survived = seq < recovered_by_writer[writer];
                match (survived, seen_missing_at) {
                    (true, Some(missing)) => panic!(
                        "{ctx}: commit ts {ts} (writer {writer} seq {seq}) survived \
                         but earlier acked ts {missing} did not"
                    ),
                    (false, None) => seen_missing_at = Some(ts),
                    _ => {}
                }
            }
            if durability == DurabilityLevel::Fsync {
                if let Some(missing) = seen_missing_at {
                    panic!("{ctx}: acked commit ts {missing} lost at Fsync");
                }
            }
        }
    }
}

/// Run the writer storm, creating tables `t0..tN` first if a previous
/// life of this disk didn't already. Arms the power cut (if any) only
/// after setup. Returns every acknowledged `(ts, writer, seq)`.
fn storm(
    vfs: &SimVfs,
    durability: DurabilityLevel,
    group: bool,
    shards: usize,
    writers: usize,
    commits: i64,
    cut: Option<u64>,
) -> Vec<(Ts, usize, i64)> {
    let acked: Arc<Mutex<Vec<(Ts, usize, i64)>>> = Arc::default();
    let Ok(db) = Database::open(WAL, sim_opts_sharded(vfs, durability, group, shards)) else {
        return Vec::new();
    };
    let mut tables: Vec<TableId> = Vec::new();
    for k in 0..writers {
        let name = format!("t{k}");
        match db
            .table_id(&name)
            .or_else(|_| db.create_table(table_def(&name)))
        {
            Ok(t) => tables.push(t),
            Err(_) => return Vec::new(),
        }
    }
    // Arm the cut only after setup so the sweep spends itself on the
    // racing commits, not on DDL (covered by the ddl_race test).
    if let Some(cut) = cut {
        vfs.power_fail_after(cut);
    }
    let start = Arc::new(Barrier::new(writers));
    let handles: Vec<_> = (0..writers)
        .map(|k| {
            let db = db.clone();
            let acked = acked.clone();
            let start = start.clone();
            let t = tables[k];
            std::thread::spawn(move || {
                start.wait();
                for i in 0..commits {
                    let mut txn = db.begin();
                    if txn.insert(t, Row::new(vec![Value::Int(i)])).is_err() {
                        break;
                    }
                    match txn.commit() {
                        Ok(ts) => acked.lock().unwrap().push((ts, k, i)),
                        Err(_) => break,
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    drop(db);
    Arc::try_unwrap(acked).unwrap().into_inner().unwrap()
}

// ------------------------------------------------------------- DDL races

/// Writers race a DDL thread cycling scratch tables, the power cuts at
/// a seed-derived point, and the machine crashes. The database must
/// *reopen* — replay must never order a DropTable ahead of a commit
/// that still references the table — and the fixed tables must recover
/// as gapless prefixes. Swept over both WAL modes (the per-record mode
/// had exactly this ordering bug).
#[test]
fn ddl_race_crash_always_reopens() {
    const WRITERS: usize = 2;
    const COMMITS: i64 = 25;
    const DDL_CYCLES: usize = 8;
    for seed in seeds() {
        for (group, shards) in [(true, 1), (false, 1), (true, 4)] {
            let durability = DurabilityLevel::Buffered;
            let vfs = SimVfs::new(seed);
            {
                let db =
                    Database::open(WAL, sim_opts_sharded(&vfs, durability, group, shards)).unwrap();
                let tables: Vec<TableId> = (0..WRITERS)
                    .map(|k| db.create_table(table_def(&format!("t{k}"))).unwrap())
                    .collect();
                // Cut somewhere inside the storm; the exact op index is
                // seed-derived so the sweep covers the schedule.
                vfs.power_fail_after(7 + seed * 11 % 400);

                let start = Arc::new(Barrier::new(WRITERS + 1));
                let writers: Vec<_> = (0..WRITERS)
                    .map(|k| {
                        let db = db.clone();
                        let start = start.clone();
                        let t = tables[k];
                        std::thread::spawn(move || {
                            start.wait();
                            for i in 0..COMMITS {
                                let mut txn = db.begin();
                                if txn.insert(t, Row::new(vec![Value::Int(i)])).is_err() {
                                    break;
                                }
                                if txn.commit().is_err() {
                                    break;
                                }
                            }
                        })
                    })
                    .collect();
                let ddl = {
                    let db = db.clone();
                    let start = start.clone();
                    std::thread::spawn(move || {
                        start.wait();
                        for c in 0..DDL_CYCLES {
                            let name = format!("scratch{c}");
                            let Ok(t) = db.create_table(table_def(&name)) else {
                                break;
                            };
                            let mut txn = db.begin();
                            if txn.insert(t, Row::new(vec![Value::Int(c as i64)])).is_err() {
                                break;
                            }
                            let _ = txn.commit();
                            if db.drop_table(&name).is_err() {
                                break;
                            }
                        }
                    })
                };
                for h in writers {
                    h.join().unwrap();
                }
                ddl.join().unwrap();
            }
            vfs.crash();

            let ctx = format!(
                "seed {seed} group={group} shards={shards} (rerun with TENDAX_SIM_SEED={seed})"
            );
            let db = Database::open(WAL, sim_opts_sharded(&vfs, durability, group, shards))
                .unwrap_or_else(|e| panic!("{ctx}: reopen after DDL-race crash failed: {e}"));
            for k in 0..WRITERS {
                let got = recovered_seqs(&db, &format!("t{k}"));
                let expected: Vec<i64> = (0..got.len() as i64).collect();
                assert_eq!(got, expected, "{ctx}: writer table t{k} has a gap");
            }
            // And the recovered database accepts writes — t0's own DDL
            // may legitimately have died with the cut (Buffered never
            // syncs), so exercise the write path on a fresh table.
            let t = db
                .create_table(table_def("post_crash"))
                .unwrap_or_else(|e| panic!("{ctx}: recovered db rejects DDL: {e}"));
            let mut txn = db.begin();
            txn.insert(t, Row::new(vec![Value::Int(777)])).unwrap();
            txn.commit()
                .unwrap_or_else(|e| panic!("{ctx}: recovered db rejects writes: {e}"));
        }
    }
}

// ---------------------------------------------------- auto-maintenance on

/// Auto-maintenance (checkpoints rewriting the log underneath the
/// workload) plus a power cut: whatever the checkpoint was doing when
/// the lights went out, recovery is still a commit-order prefix, and
/// at `Fsync` acknowledged commits still all survive.
#[test]
fn auto_maintenance_crash_recovers_commit_prefix() {
    const N: i64 = 60;
    for seed in seeds() {
        // Alternate layouts across the seed sweep: auto-checkpoints
        // rewrite either one file or the 4-shard set under the workload.
        let shards = if seed % 2 == 0 { 1 } else { 4 };
        let vfs = SimVfs::new(seed);
        let opts = Options {
            durability: DurabilityLevel::Fsync,
            maintenance: Some(MaintenanceOptions {
                interval: std::time::Duration::from_millis(1),
                checkpoint_wal_bytes: 1024,
                checkpoint_wal_records: 16,
                vacuum_pruneable: 16,
                ..MaintenanceOptions::default()
            }),
            vfs: Arc::new(vfs.clone()),
            wal_shards: shards,
            ..Options::default()
        };
        let mut acked = 0i64;
        {
            let db = Database::open(WAL, opts).unwrap();
            let t = db.create_table(table_def("t")).unwrap();
            vfs.power_fail_after(11 + seed * 13 % 500);
            for i in 0..N {
                let mut txn = db.begin();
                if txn.insert(t, Row::new(vec![Value::Int(i)])).is_err() {
                    break;
                }
                if txn.commit().is_err() {
                    break;
                }
                acked = i + 1;
                // Give the maintenance thread real chances to interleave
                // checkpoints with the commit stream.
                if i % 8 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
        }
        vfs.crash();

        let ctx = format!("seed {seed} shards={shards} (rerun with TENDAX_SIM_SEED={seed})");
        let db = Database::open(
            WAL,
            sim_opts_sharded(&vfs, DurabilityLevel::Fsync, true, shards),
        )
        .unwrap_or_else(|e| panic!("{ctx}: reopen after maintenance crash failed: {e}"));
        let got = recovered_seqs(&db, "t");
        let expected: Vec<i64> = (0..got.len() as i64).collect();
        assert_eq!(got, expected, "{ctx}: not a commit-order prefix");
        assert!(
            got.len() as i64 >= acked,
            "{ctx}: {acked} commits acked at Fsync, only {} recovered",
            got.len()
        );
    }
}

// --------------------------------------------------- checkpoint copy/swap

/// Exhaustive crash sweep over the checkpoint's tmp-write / rename /
/// dir-sync dance, at `Fsync`: the checkpoint must never lose a
/// durable commit, no matter which op the power dies on — the exact
/// rename-vs-data-reordering bug class the copy/swap protocol exists
/// to prevent.
#[test]
fn checkpoint_crash_never_loses_fsynced_commits() {
    const N: i64 = 8;
    let d = DurabilityLevel::Fsync;
    for seed in seeds() {
        for shards in [1usize, 4] {
            // Twin: measure how many ops the checkpoint itself performs.
            let ckpt_ops = {
                let twin = SimVfs::new(seed);
                assert_eq!(
                    run_sequential_sharded(&twin, d, true, shards, N),
                    N as usize
                );
                let db = Database::open(WAL, sim_opts_sharded(&twin, d, true, shards)).unwrap();
                let before = twin.ops();
                db.checkpoint().unwrap();
                twin.ops() - before
            };
            assert!(ckpt_ops > 0);

            for cut in 0..ckpt_ops {
                let vfs = SimVfs::new(seed);
                assert_eq!(run_sequential_sharded(&vfs, d, true, shards, N), N as usize);
                let ctx = format!(
                    "seed {seed} shards={shards} checkpoint cut {cut}/{ckpt_ops} \
                     (rerun with TENDAX_SIM_SEED={seed})"
                );
                {
                    let db = Database::open(WAL, sim_opts_sharded(&vfs, d, true, shards)).unwrap();
                    vfs.power_fail_after(cut);
                    let _ = db.checkpoint(); // the cut makes this fail; that's the point
                }
                vfs.crash();

                let db = Database::open(WAL, sim_opts_sharded(&vfs, d, true, shards))
                    .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
                assert_eq!(
                    recovered_seqs(&db, "t"),
                    (0..N).collect::<Vec<_>>(),
                    "{ctx}: checkpoint crash lost fsynced commits"
                );
                // Still writable, and a clean checkpoint completes after the
                // crashed one (stale tmp file, resurrected old log, or a
                // half-spliced tail must not wedge it).
                let t = db.table_id("t").unwrap();
                let mut txn = db.begin();
                txn.insert(t, Row::new(vec![Value::Int(N)])).unwrap();
                txn.commit().unwrap();
                db.checkpoint()
                    .unwrap_or_else(|e| panic!("{ctx}: post-recovery checkpoint failed: {e}"));
            }
        }
    }
}

// -------------------------------------------------------- sticky poisoning

/// Regression: after a failed group fsync the WAL must poison itself —
/// the dirty pages are gone (fsyncgate), so pretending a retry could
/// make that data durable would be a lie. Every later commit and DDL
/// must fail with `WalUnavailable`, while reads keep working; after a
/// crash, recovery holds only what was durable before the bad sync.
#[test]
fn failed_group_fsync_poisons_wal_sticky() {
    for seed in seeds() {
        for shards in [1usize, 4] {
            let vfs = SimVfs::new(seed);
            let ctx = format!("seed {seed} shards={shards} (rerun with TENDAX_SIM_SEED={seed})");
            {
                let db = Database::open(
                    WAL,
                    sim_opts_sharded(&vfs, DurabilityLevel::Fsync, true, shards),
                )
                .unwrap();
                let t = db.create_table(table_def("t")).unwrap();
                let mut txn = db.begin();
                txn.insert(t, Row::new(vec![Value::Int(0)])).unwrap();
                txn.commit().unwrap();

                vfs.fail_next_syncs(1);
                let mut txn = db.begin();
                txn.insert(t, Row::new(vec![Value::Int(1)])).unwrap();
                let err = txn.commit().unwrap_err();
                assert!(
                    matches!(err, StorageError::WalUnavailable(_)),
                    "{ctx}: failed fsync surfaced as {err:?}"
                );

                // Sticky: the disk is healthy again, but the log must stay
                // poisoned — the unsynced frames are unrecoverable.
                let mut txn = db.begin();
                txn.insert(t, Row::new(vec![Value::Int(2)])).unwrap();
                let err = txn.commit().unwrap_err();
                assert!(
                    matches!(err, StorageError::WalUnavailable(_)),
                    "{ctx}: poisoning did not stick: {err:?}"
                );
                assert!(
                    matches!(
                        db.create_table(table_def("more")),
                        Err(StorageError::WalUnavailable(_))
                    ),
                    "{ctx}: DDL got through a poisoned log"
                );

                // Reads are unaffected. Seq 1 was published before its
                // durability wait failed, so it stays visible in memory;
                // seq 2 was refused by the poisoned log before publication
                // and must not be.
                assert_eq!(
                    recovered_seqs(&db, "t"),
                    vec![0, 1],
                    "{ctx}: in-memory visibility diverged"
                );
            }
            vfs.crash();

            let db = Database::open(
                WAL,
                sim_opts_sharded(&vfs, DurabilityLevel::Fsync, true, shards),
            )
            .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
            assert_eq!(
                recovered_seqs(&db, "t"),
                vec![0],
                "{ctx}: recovery must hold exactly the pre-poison durable prefix"
            );
        }
    }
}

// ----------------------------------------------------- lying-fsync blips

/// A transient "power blip" (ops fail, then power restores *without*
/// losing the page cache) must leave the engine either poisoned or
/// fully consistent — never silently dropping acked commits on the
/// floor once power is back.
#[test]
fn power_blip_keeps_database_consistent() {
    for seed in seeds() {
        let shards = if seed % 2 == 0 { 1 } else { 4 };
        let vfs = SimVfs::new(seed);
        let ctx = format!("seed {seed} shards={shards} (rerun with TENDAX_SIM_SEED={seed})");
        let db = Database::open(
            WAL,
            sim_opts_sharded(&vfs, DurabilityLevel::Fsync, true, shards),
        )
        .unwrap();
        let t = db.create_table(table_def("t")).unwrap();
        for i in 0..5 {
            let mut txn = db.begin();
            txn.insert(t, Row::new(vec![Value::Int(i)])).unwrap();
            txn.commit().unwrap();
        }
        vfs.power_fail_after(2 + seed % 5);
        let mut blipped = 0i64;
        for i in 5..12 {
            let mut txn = db.begin();
            if txn.insert(t, Row::new(vec![Value::Int(i)])).is_err() {
                break;
            }
            match txn.commit() {
                Ok(_) => blipped = i - 4,
                Err(_) => break,
            }
        }
        vfs.restore_power();
        // After the blip the engine must sit in exactly one of two
        // states: poisoned (refuses new commits before publishing them)
        // or healthy (acks them and makes them durable). Either way the
        // visible rows stay a gapless seq prefix — commits that were
        // published before their durability wait failed legitimately
        // remain visible, but nothing may be skipped.
        let mut txn = db.begin();
        txn.insert(t, Row::new(vec![Value::Int(100)])).unwrap();
        let post_blip = txn.commit();
        let visible = recovered_seqs(&db, "t");
        let body: Vec<i64> = visible.iter().copied().filter(|&v| v != 100).collect();
        let want: Vec<i64> = (0..body.len() as i64).collect();
        assert_eq!(body, want, "{ctx}: blip left a gap in visible commits");
        assert!(
            body.len() as i64 >= 5 + blipped,
            "{ctx}: acked commits vanished from memory: {visible:?}"
        );
        assert_eq!(
            post_blip.is_ok(),
            visible.contains(&100),
            "{ctx}: commit ack and visibility disagree (ok={}, visible={visible:?})",
            post_blip.is_ok()
        );
        drop(db);
        if post_blip.is_ok() {
            // Healthy path: the post-blip ack must survive a real crash.
            vfs.crash();
            let db = Database::open(
                WAL,
                sim_opts_sharded(&vfs, DurabilityLevel::Fsync, true, shards),
            )
            .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
            let recovered = recovered_seqs(&db, "t");
            assert!(
                recovered.contains(&100),
                "{ctx}: post-blip acked commit lost: {recovered:?}"
            );
        }
    }
}

// ------------------------------------------------- torn merged commits

/// Merged (commutative chain-neighborhood) commits through the crash
/// sweep: pairs of transactions patch disjoint columns of one shared
/// row from the same snapshot — the second of each pair merges at
/// commit and its WAL frame is a `Patch` delta. The power cuts at a
/// seed-derived op; after crash + reopen the recovered row must equal
/// the state after some *commit-order prefix* of the acknowledged
/// sequence (a torn log must never replay a later delta without the
/// earlier ones it merged across), and at `Fsync` every acknowledged
/// merge must survive.
#[test]
fn torn_merged_commits_replay_as_commit_order_prefix() {
    const PAIRS: u64 = 5;

    fn links_def() -> TableDef {
        TableDef::new("links")
            .nullable_column("prev", DataType::Id)
            .nullable_column("next", DataType::Id)
    }

    /// `(prev, next)` after `k` of the pair commits (commit `2i-1` sets
    /// `prev = i`, commit `2i` sets `next = i`).
    fn state_after(k: usize) -> (Option<u64>, Option<u64>) {
        let prev = k.div_ceil(2) as u64;
        let next = (k / 2) as u64;
        ((prev > 0).then_some(prev), (next > 0).then_some(next))
    }

    /// Run the paired-merge workload; returns how many pair commits were
    /// acknowledged (the ack sequence is serial, so its commit order is
    /// its index order).
    fn merged_run(
        vfs: &SimVfs,
        durability: DurabilityLevel,
        group: bool,
        shards: usize,
        cut: Option<u64>,
    ) -> usize {
        let Ok(db) = Database::open(WAL, sim_opts_sharded(vfs, durability, group, shards)) else {
            return 0;
        };
        let Ok(t) = db.create_table(links_def()) else {
            return 0;
        };
        let mut txn = db.begin();
        let Ok(rid) = txn.insert(t, Row::new(vec![Value::Null, Value::Null])) else {
            return 0;
        };
        if txn.commit().is_err() {
            return 0;
        }
        if let Some(cut) = cut {
            vfs.power_fail_after(cut);
        }
        let mut acked = 0;
        for i in 1..=PAIRS {
            // Same snapshot for both: the second committer *merges*.
            let mut a = db.begin();
            let mut b = db.begin();
            if a.set_with_anchors(t, rid, &[("prev", Value::Id(i))], &[1])
                .is_err()
                || b.set_with_anchors(t, rid, &[("next", Value::Id(i))], &[2])
                    .is_err()
            {
                break;
            }
            if a.commit().is_err() {
                break;
            }
            acked += 1;
            if b.commit().is_err() {
                break;
            }
            acked += 1;
        }
        acked
    }

    for seed in seeds() {
        for (durability, group, shards) in [
            (DurabilityLevel::Fsync, true, 1),
            (DurabilityLevel::Fsync, false, 1),
            (DurabilityLevel::Buffered, true, 1),
            (DurabilityLevel::Fsync, true, 4),
        ] {
            // Twin run measures the post-setup op schedule.
            let est = {
                let twin = SimVfs::new(seed);
                let before_run = twin.ops();
                let acked = merged_run(&twin, durability, group, shards, None);
                assert_eq!(acked as u64, PAIRS * 2, "fault-free twin failed");
                // Setup ops are excluded by arming the cut after setup,
                // so sweep the whole run length conservatively.
                twin.ops() - before_run
            };
            let cut = est * (seed % 8 + 1) / 9;

            let vfs = SimVfs::new(seed);
            let acked = merged_run(&vfs, durability, group, shards, Some(cut));
            vfs.crash();

            let ctx = format!(
                "seed {seed} {durability:?} group={group} shards={shards} cut {cut}/{est} \
                 (rerun with TENDAX_SIM_SEED={seed})"
            );
            let db = Database::open(WAL, sim_opts_sharded(&vfs, durability, group, shards))
                .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));

            let recovered: Option<(Option<u64>, Option<u64>)> = match db.table_id("links") {
                Err(_) => None,
                Ok(t) => db
                    .begin()
                    .scan(t, &Predicate::True)
                    .unwrap()
                    .first()
                    .map(|(_, r)| {
                        let id = |v: &Value| match v {
                            Value::Id(x) => Some(*x),
                            _ => None,
                        };
                        (id(r.get(0).unwrap()), id(r.get(1).unwrap()))
                    }),
            };
            // The recovered state must be the state after SOME prefix of
            // the commit order — a torn merge (later delta without the
            // earlier committed version it composed onto) matches no
            // prefix state and fails here.
            let got = recovered.unwrap_or((None, None));
            let prefix = (0..=(PAIRS as usize) * 2).find(|&k| state_after(k) == got);
            let k = prefix.unwrap_or_else(|| {
                panic!("{ctx}: recovered state {got:?} matches no commit-order prefix")
            });
            if durability == DurabilityLevel::Fsync {
                assert!(
                    k >= acked && recovered.is_some(),
                    "{ctx}: {acked} merges acked at Fsync but only {k} survived"
                );
            }
        }
    }
}

// --------------------------------------------- cold tier under power cut

fn cold_opts(vfs: &SimVfs) -> Options {
    Options {
        durability: DurabilityLevel::Fsync,
        vfs: Arc::new(vfs.clone()),
        cold_storage: Some(ColdOptions {
            memtable_version_budget: 8,
            block_bytes: 256,
            bloom_bits_per_key: 10,
            compact_min_runs: 2,
        }),
        ..Options::default()
    }
}

/// One row updated `rounds` times at Fsync, with a vacuum every
/// `vacuum_every` commits (0 = never). Returns the table, row, and the
/// commit ts of every round — value at `ts[i]` is `Int(i)`.
fn cold_history_run(
    vfs: &SimVfs,
    rounds: i64,
    vacuum_every: i64,
) -> Option<(TableId, RowId, Vec<Ts>)> {
    let db = Database::open(WAL, cold_opts(vfs)).ok()?;
    let t = db.create_table(table_def("t")).ok()?;
    let mut txn = db.begin();
    let rid = txn.insert(t, Row::new(vec![Value::Int(0)])).ok()?;
    let mut tss = vec![txn.commit().ok()?];
    for i in 1..rounds {
        let mut txn = db.begin();
        txn.update(t, rid, Row::new(vec![Value::Int(i)])).ok()?;
        tss.push(txn.commit().ok()?);
        if vacuum_every > 0 && i % vacuum_every == 0 {
            db.vacuum();
        }
    }
    Some((t, rid, tss))
}

/// Check that every round's snapshot reads its exact value. Snapshots
/// the engine refuses (`SnapshotTooOld`) are tolerated only below
/// `retain_from` — everything at or above it must be served.
fn assert_history(db: &Database, t: TableId, rid: RowId, tss: &[Ts], retain_from: Ts, ctx: &str) {
    for (i, &ts) in tss.iter().enumerate() {
        match db.begin_at(ts) {
            Ok(txn) => {
                let row = txn
                    .get(t, rid)
                    .unwrap_or_else(|e| panic!("{ctx}: get at round {i} failed: {e}"))
                    .unwrap_or_else(|| panic!("{ctx}: round {i} row missing"));
                assert_eq!(
                    row.get(0),
                    Some(&Value::Int(i as i64)),
                    "{ctx}: wrong bytes at round {i}"
                );
            }
            Err(StorageError::SnapshotTooOld { .. }) if ts < retain_from => {}
            Err(e) => panic!("{ctx}: begin_at round {i} failed: {e}"),
        }
    }
}

/// Power cuts swept through a *demoting vacuum*: every charged op of
/// the run write, directory sync, and manifest swap. Whatever the cut
/// tore, reopen must succeed (orphan runs and stale manifest tmp files
/// are swept), every historical snapshot must read its exact bytes,
/// and a retried demotion plus compaction must complete cleanly.
#[test]
fn cold_demotion_crash_preserves_every_snapshot() {
    const ROUNDS: i64 = 16;
    for seed in seeds() {
        // Twin: measure the demoting vacuum's op schedule.
        let demote_ops = {
            let twin = SimVfs::new(seed);
            let (_, _, tss) = cold_history_run(&twin, ROUNDS, 0).expect("fault-free run failed");
            assert_eq!(tss.len() as i64, ROUNDS);
            let db = Database::open(WAL, cold_opts(&twin)).unwrap();
            let before = twin.ops();
            assert!(db.vacuum() > 0, "seed {seed}: twin vacuum demoted nothing");
            twin.ops() - before
        };
        assert!(demote_ops > 0, "seed {seed}: demotion charged no ops");

        for cut in 0..demote_ops {
            let vfs = SimVfs::new(seed);
            let (t, rid, tss) = cold_history_run(&vfs, ROUNDS, 0).unwrap();
            let ctx = format!(
                "seed {seed} demotion cut {cut}/{demote_ops} \
                 (rerun with TENDAX_SIM_SEED={seed})"
            );
            {
                let db = Database::open(WAL, cold_opts(&vfs)).unwrap();
                vfs.power_fail_after(cut);
                db.vacuum(); // the cut may abort this mid-demotion
            }
            vfs.crash();

            let db = Database::open(WAL, cold_opts(&vfs))
                .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
            assert_history(&db, t, rid, &tss, 0, &ctx);

            // Retry: a clean demotion and compaction must go through on
            // top of whatever the torn one left, and history must still
            // be byte-exact when served from the cold tier.
            db.vacuum();
            let _ = db
                .cold_compact_if_needed()
                .unwrap_or_else(|e| panic!("{ctx}: post-crash compaction failed: {e}"));
            assert_history(&db, t, rid, &tss, 0, &ctx);
        }
    }
}

/// Power cuts swept through retention-floor persistence and cold
/// compaction (the manifest-rewriting operations): reopen must
/// succeed, snapshots at or above the requested floor must keep their
/// exact bytes, refused snapshots may exist only below it, and a
/// retried compaction must complete.
#[test]
fn cold_compaction_crash_keeps_retained_history() {
    const ROUNDS: i64 = 16;
    const RETAIN_ROUND: usize = 8;
    for seed in seeds() {
        let compact_ops = {
            let twin = SimVfs::new(seed);
            let (_, _, tss) = cold_history_run(&twin, ROUNDS, 4).expect("fault-free run failed");
            let db = Database::open(WAL, cold_opts(&twin)).unwrap();
            db.vacuum(); // re-demote replayed history → several runs live
            let before = twin.ops();
            db.set_lineage_retention(tss[RETAIN_ROUND]).unwrap();
            assert!(
                db.cold_compact_if_needed().unwrap(),
                "seed {seed}: twin compaction did not run"
            );
            twin.ops() - before
        };
        assert!(compact_ops > 0);

        for cut in 0..compact_ops {
            let vfs = SimVfs::new(seed);
            let (t, rid, tss) = cold_history_run(&vfs, ROUNDS, 4).unwrap();
            let retain_from = tss[RETAIN_ROUND];
            let ctx = format!(
                "seed {seed} compaction cut {cut}/{compact_ops} \
                 (rerun with TENDAX_SIM_SEED={seed})"
            );
            {
                let db = Database::open(WAL, cold_opts(&vfs)).unwrap();
                db.vacuum();
                vfs.power_fail_after(cut);
                let _ = db.set_lineage_retention(retain_from);
                let _ = db.cold_compact_if_needed(); // may die mid-rewrite
            }
            vfs.crash();

            let db = Database::open(WAL, cold_opts(&vfs))
                .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
            assert_history(&db, t, rid, &tss, retain_from, &ctx);

            // Retry the whole sequence cleanly and re-verify.
            db.set_lineage_retention(retain_from)
                .unwrap_or_else(|e| panic!("{ctx}: retried retention failed: {e}"));
            db.vacuum();
            let _ = db
                .cold_compact_if_needed()
                .unwrap_or_else(|e| panic!("{ctx}: retried compaction failed: {e}"));
            assert_history(&db, t, rid, &tss, retain_from, &ctx);
        }
    }
}

// ------------------------------------------------ re-shard under power cut

/// Power cuts swept through a *re-shard checkpoint*: a database written
/// under `wal_shards = 1` is reopened with `wal_shards = 4` (the open
/// keeps the on-disk single-file layout — re-shard happens on
/// checkpoint, never on open) and the first `checkpoint()` call, which
/// performs the layout transition, is cut at every injected op. After
/// crash + reopen every fsynced commit must survive, whichever side of
/// the transition's atomic rename the cut landed on, and the reopened
/// database must accept writes and a clean checkpoint. The reverse
/// transition (4 → 1) is swept the same way.
#[test]
fn reshard_checkpoint_crash_never_loses_fsynced_commits() {
    const N: i64 = 8;
    let d = DurabilityLevel::Fsync;
    for seed in seeds() {
        for (from, to) in [(1usize, 4usize), (4, 1)] {
            // Twin: write under `from`, measure the re-shard checkpoint.
            let ckpt_ops = {
                let twin = SimVfs::new(seed);
                assert_eq!(run_sequential_sharded(&twin, d, true, from, N), N as usize);
                let db = Database::open(WAL, sim_opts_sharded(&twin, d, true, to)).unwrap();
                let before = twin.ops();
                db.checkpoint().unwrap();
                assert_eq!(db.wal_shard_count(), to, "twin re-shard did not converge");
                twin.ops() - before
            };
            assert!(ckpt_ops > 0);

            for cut in 0..ckpt_ops {
                let vfs = SimVfs::new(seed);
                assert_eq!(run_sequential_sharded(&vfs, d, true, from, N), N as usize);
                let ctx = format!(
                    "seed {seed} reshard {from}->{to} cut {cut}/{ckpt_ops} \
                     (rerun with TENDAX_SIM_SEED={seed})"
                );
                {
                    let db = Database::open(WAL, sim_opts_sharded(&vfs, d, true, to))
                        .unwrap_or_else(|e| panic!("{ctx}: pre-cut reopen failed: {e}"));
                    assert_eq!(db.wal_shard_count(), from, "{ctx}: open changed the layout");
                    vfs.power_fail_after(cut);
                    let _ = db.checkpoint(); // cut mid-transition; failure expected
                }
                vfs.crash();

                let db = Database::open(WAL, sim_opts_sharded(&vfs, d, true, to))
                    .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
                assert_eq!(
                    recovered_seqs(&db, "t"),
                    (0..N).collect::<Vec<i64>>(),
                    "{ctx}: fsynced commits lost across torn re-shard"
                );

                // The survivor must stay fully usable: accept a write and
                // converge to the target layout on a clean checkpoint.
                let t = db.table_id("t").unwrap();
                let mut txn = db.begin();
                txn.insert(t, Row::new(vec![Value::Int(N)])).unwrap();
                txn.commit()
                    .unwrap_or_else(|e| panic!("{ctx}: post-recovery commit failed: {e}"));
                db.checkpoint()
                    .unwrap_or_else(|e| panic!("{ctx}: post-recovery checkpoint failed: {e}"));
                assert_eq!(db.wal_shard_count(), to, "{ctx}: retry did not converge");
                assert_eq!(
                    recovered_seqs(&db, "t"),
                    (0..=N).collect::<Vec<i64>>(),
                    "{ctx}: post-recovery state diverged"
                );
            }
        }
    }
}
