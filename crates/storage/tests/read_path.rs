//! Read-path tests: zero-copy row sharing, pushed-down predicate
//! accounting, and readers scanning concurrently with committing writers.
//!
//! The counters asserted here (`rows_scanned`, `rows_skipped_by_predicate`,
//! `point_gets`, `index_lookups`) are the observable contract of predicate
//! pushdown: a scan must examine every visible row exactly once and must
//! never materialize a row the predicate rejects.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tendax_storage::{
    DataType, Database, DurabilityLevel, Options, Predicate, Row, TableDef, Value,
};

fn doc_table() -> TableDef {
    TableDef::new("chars")
        .column("doc", DataType::Id)
        .column("seq", DataType::Int)
        .column("text", DataType::Text)
        .index("by_doc", &["doc"])
}

mod common;
use common::TestDir;

fn tmp(name: &str) -> (TestDir, PathBuf) {
    let dir = TestDir::new("tendax-readpath");
    let p = dir.file(name);
    (dir, p)
}

fn seed(db: &Database, docs: u64, per_doc: i64) -> tendax_storage::TableId {
    let t = db.create_table(doc_table()).unwrap();
    let mut txn = db.begin();
    for d in 0..docs {
        for i in 0..per_doc {
            txn.insert(
                t,
                Row::new(vec![
                    Value::Id(d),
                    Value::Int(i),
                    Value::Text(format!("doc{d}-{i}")),
                ]),
            )
            .unwrap();
        }
    }
    txn.commit().unwrap();
    t
}

// ------------------------------------------------------------ row sharing

#[test]
fn point_gets_share_one_committed_allocation() {
    let db = Database::open_in_memory();
    let t = seed(&db, 1, 1);
    let txn = db.begin();
    let rows = txn.scan(t, &Predicate::True).unwrap();
    let (rid, from_scan) = rows.into_iter().next().unwrap();

    let a = txn.get(t, rid).unwrap().unwrap();
    let b = txn.get(t, rid).unwrap().unwrap();
    assert!(Arc::ptr_eq(&a, &b), "two gets must share one allocation");
    assert!(
        Arc::ptr_eq(&a, &from_scan),
        "scan and get must hand out the same committed version"
    );
}

#[test]
fn shared_row_survives_later_commits_and_vacuum() {
    let db = Database::open_in_memory();
    let t = seed(&db, 1, 1);
    let reader = db.begin();
    let (rid, before) = reader
        .scan(t, &Predicate::True)
        .unwrap()
        .into_iter()
        .next()
        .unwrap();

    // Overwrite the row and vacuum away old versions; the handle the
    // reader already holds must keep its original contents.
    let mut w = db.begin();
    w.set(t, rid, &[("text", Value::Text("rewritten".into()))])
        .unwrap();
    w.commit().unwrap();
    drop(reader); // snapshot released; vacuum may now reclaim the chain
    db.vacuum();

    assert_eq!(before.get(2).unwrap().as_text(), Some("doc0-0"));
    let after = db.begin().get(t, rid).unwrap().unwrap();
    assert_eq!(after.get(2).unwrap().as_text(), Some("rewritten"));
}

// ------------------------------------------------------- counter accounting

#[test]
fn scan_counters_balance_scanned_equals_returned_plus_skipped() {
    let db = Database::open_in_memory();
    let t = seed(&db, 4, 25); // 100 rows, 25 per doc
    let base = db.stats();

    let txn = db.begin();
    let hits = txn
        .scan(t, &Predicate::Eq("doc".into(), Value::Id(2)))
        .unwrap();
    assert_eq!(hits.len(), 25);

    let s = db.stats();
    let scanned = s.rows_scanned - base.rows_scanned;
    let skipped = s.rows_skipped_by_predicate - base.rows_skipped_by_predicate;
    assert_eq!(
        scanned,
        hits.len() as u64 + skipped,
        "every scanned row is either returned or skipped"
    );
    assert!(scanned >= hits.len() as u64);
}

#[test]
fn full_scan_skips_nothing_and_counts_every_row() {
    let db = Database::open_in_memory();
    let t = seed(&db, 2, 10);
    let base = db.stats();

    let txn = db.begin();
    let rows = txn.scan(t, &Predicate::True).unwrap();
    assert_eq!(rows.len(), 20);

    let s = db.stats();
    assert_eq!(s.rows_scanned - base.rows_scanned, 20);
    assert_eq!(s.rows_skipped_by_predicate, base.rows_skipped_by_predicate);
}

#[test]
fn point_get_and_index_counters_tick() {
    let db = Database::open_in_memory();
    let t = seed(&db, 2, 5);
    let base = db.stats();

    let txn = db.begin();
    let rows = txn.index_lookup(t, "by_doc", &[Value::Id(1)]).unwrap();
    assert_eq!(rows.len(), 5);
    for (rid, _) in &rows {
        assert!(txn.get(t, *rid).unwrap().is_some());
    }

    let s = db.stats();
    assert_eq!(s.index_lookups - base.index_lookups, 1);
    assert_eq!(s.point_gets - base.point_gets, 5);
}

// --------------------------------------------- concurrent readers + writers

/// Readers repeatedly full-scan while writers append in ascending `seq`
/// order. Snapshot isolation means each scan must see a consistent prefix
/// of every writer's stream: per writer, exactly the values `0..n` for
/// some n, never a gap. Runs at every durability level.
fn readers_see_consistent_prefixes(durability: DurabilityLevel, name: &str) {
    let (db, _dir) = match durability {
        DurabilityLevel::None => (Database::open_in_memory(), None),
        level => {
            let opts = Options {
                durability: level,
                ..Options::default()
            };
            let (dir, path) = tmp(name);
            (Database::open(path, opts).unwrap(), Some(dir))
        }
    };
    let t = db.create_table(doc_table()).unwrap();

    const WRITERS: u64 = 2;
    const READERS: usize = 4;
    const OPS: i64 = if cfg!(debug_assertions) { 120 } else { 400 };

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..READERS {
        let db = db.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let mut scans = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let txn = db.begin();
                let rows = txn.scan(t, &Predicate::True).unwrap();
                let mut seqs: Vec<Vec<i64>> = vec![Vec::new(); WRITERS as usize];
                for (_, r) in &rows {
                    let w = r.get(0).unwrap().as_id().unwrap() as usize;
                    seqs[w].push(r.get(1).unwrap().as_int().unwrap());
                }
                for (w, s) in seqs.iter().enumerate() {
                    // Writers insert in order inside one txn each, so a
                    // snapshot sees a prefix 0..n of writer w's stream.
                    let want: Vec<i64> = (0..s.len() as i64).collect();
                    assert_eq!(*s, want, "writer {w}: scan saw a gap");
                }
                scans += 1;
            }
            scans
        }));
    }

    let mut writers = Vec::new();
    for w in 0..WRITERS {
        let db = db.clone();
        writers.push(std::thread::spawn(move || {
            for i in 0..OPS {
                let mut txn = db.begin();
                txn.insert(
                    t,
                    Row::new(vec![
                        Value::Id(w),
                        Value::Int(i),
                        Value::Text("x".repeat(16)),
                    ]),
                )
                .unwrap();
                txn.commit().unwrap();
            }
        }));
    }
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let total_scans: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_scans > 0, "readers never completed a scan");

    let final_rows = db.begin().scan(t, &Predicate::True).unwrap();
    assert_eq!(final_rows.len() as i64, WRITERS as i64 * OPS);

    // Full-scan counters must balance globally: with Predicate::True
    // nothing is ever skipped, and the final scan alone examined every
    // committed row. (Taken after that scan: the racing readers may all
    // have scanned before the first commit landed.)
    let s = db.stats();
    assert_eq!(s.rows_skipped_by_predicate, 0);
    assert!(s.rows_scanned >= final_rows.len() as u64);
}

#[test]
fn concurrent_scans_consistent_prefix_none() {
    readers_see_consistent_prefixes(DurabilityLevel::None, "prefix-none.wal");
}

#[test]
fn concurrent_scans_consistent_prefix_buffered() {
    readers_see_consistent_prefixes(DurabilityLevel::Buffered, "prefix-buffered.wal");
}

#[test]
fn concurrent_scans_consistent_prefix_fsync() {
    readers_see_consistent_prefixes(DurabilityLevel::Fsync, "prefix-fsync.wal");
}

/// A filtered scan racing writers still balances its per-scan accounting:
/// scanned = returned + skipped for the delta of a single transaction
/// (measured single-threadedly after the race to keep deltas exact).
#[test]
fn filtered_scan_accounting_after_concurrent_load() {
    let db = Database::open_in_memory();
    let t = seed(&db, 3, 40);

    let base = db.stats();
    let txn = db.begin();
    let hits = txn
        .scan(t, &Predicate::Eq("doc".into(), Value::Id(0)))
        .unwrap();
    let s = db.stats();
    assert_eq!(
        s.rows_scanned - base.rows_scanned,
        hits.len() as u64 + (s.rows_skipped_by_predicate - base.rows_skipped_by_predicate)
    );
}
