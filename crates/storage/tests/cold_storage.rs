//! Integration tests for the tiered cold storage path: demotion keeps
//! RAM bounded while every historical snapshot stays readable —
//! byte-identical to a cold-disabled twin — through the memtable →
//! cold-run read path.

use std::path::PathBuf;

use tendax_storage::{
    ColdOptions, DataType, Database, Options, Predicate, Row, StorageError, TableDef, TableId, Ts,
    Value,
};

mod common;
use common::TestDir;

fn tmp(name: &str) -> (TestDir, PathBuf) {
    let dir = TestDir::new("tendax-cold");
    let p = dir.file(name);
    (dir, p)
}

fn cold_options() -> Options {
    Options {
        cold_storage: Some(ColdOptions {
            memtable_version_budget: 64,
            block_bytes: 512,
            bloom_bits_per_key: 10,
            compact_min_runs: 4,
        }),
        ..Options::default()
    }
}

fn hot_options() -> Options {
    Options {
        cold_storage: None,
        ..Options::default()
    }
}

fn table_def() -> TableDef {
    TableDef::new("docs")
        .column("author", DataType::Id)
        .column("body", DataType::Text)
        .index("docs_by_author", &["author"])
}

fn put(db: &Database, t: TableId, rid: tendax_storage::RowId, author: u64, body: &str) -> Ts {
    let mut txn = db.begin();
    txn.update(
        t,
        rid,
        Row::new(vec![Value::Id(author), Value::Text(body.into())]),
    )
    .unwrap();
    txn.commit().unwrap()
}

fn insert(db: &Database, t: TableId, author: u64, body: &str) -> (tendax_storage::RowId, Ts) {
    let mut txn = db.begin();
    let rid = txn
        .insert(
            t,
            Row::new(vec![Value::Id(author), Value::Text(body.into())]),
        )
        .unwrap();
    let ts = txn.commit().unwrap();
    (rid, ts)
}

/// Full visible state at `ts`, as plain values (row id + column
/// values), so two databases can be compared byte-for-byte.
fn state_at(db: &Database, t: TableId, ts: Ts) -> Vec<(u64, Vec<Value>)> {
    let txn = db.begin_at(ts).unwrap();
    let mut out: Vec<(u64, Vec<Value>)> = txn
        .scan(t, &Predicate::True)
        .unwrap()
        .into_iter()
        .map(|(rid, row)| (rid.0, row.values().to_vec()))
        .collect();
    out.sort();
    out
}

/// The acceptance workload: ~10× the memtable budget in versions.
/// After demoting vacuums, RAM stays bounded while every round's
/// snapshot reads byte-identical to a cold-disabled twin.
#[test]
fn demotion_bounds_ram_and_preserves_history() {
    let (_dir, cold_path) = tmp("acceptance.wal");
    let (_dir2, hot_path) = tmp("acceptance-twin.wal");
    let cold_db = Database::open(&cold_path, cold_options()).unwrap();
    let hot_db = Database::open(&hot_path, hot_options()).unwrap();
    let ct = cold_db.create_table(table_def()).unwrap();
    let ht = hot_db.create_table(table_def()).unwrap();

    let budget = 64usize;
    let rows = 8usize;
    let rounds = 80usize; // 8 rows * 80 rounds = 640 versions = 10x budget

    let mut cold_rids = Vec::new();
    let mut hot_rids = Vec::new();
    for r in 0..rows {
        cold_rids.push(insert(&cold_db, ct, r as u64, "v0").0);
        hot_rids.push(insert(&hot_db, ht, r as u64, "v0").0);
    }
    let mut round_ts: Vec<(Ts, Ts)> = Vec::new();
    for round in 0..rounds {
        let body = format!("round-{round}-payload");
        let mut cts = 0;
        let mut hts = 0;
        for r in 0..rows {
            cts = put(&cold_db, ct, cold_rids[r], (r % 3) as u64, &body);
            hts = put(&hot_db, ht, hot_rids[r], (r % 3) as u64, &body);
        }
        round_ts.push((cts, hts));
        // Demote whenever RAM exceeds the budget (what the maintenance
        // thread's cold arm does; driven manually for determinism).
        if cold_db.ram_version_count() > budget {
            assert!(cold_db.vacuum() > 0, "over-budget vacuum must demote");
        }
    }

    let stats = cold_db.stats();
    assert!(stats.cold_demotions > 0, "workload must have demoted");
    assert!(stats.cold_runs > 0);
    assert!(stats.cold_versions > 0);
    assert!(
        cold_db.ram_version_count() <= budget + rows,
        "RAM must stay near the budget, got {}",
        cold_db.ram_version_count()
    );

    // Every round's snapshot must match the twin exactly.
    for (cts, hts) in &round_ts {
        assert_eq!(
            state_at(&cold_db, ct, *cts),
            state_at(&hot_db, ht, *hts),
            "divergence at snapshot {cts}"
        );
    }
    // A point get at the oldest round snapshot must fall through to
    // the runs (its versions left RAM long ago).
    let oldest = cold_db.begin_at(round_ts[0].0).unwrap();
    assert!(oldest.get(ct, cold_rids[0]).unwrap().is_some());
    assert!(
        cold_db.stats().cold_reads > 0,
        "old snapshots must hit cold"
    );
}

/// A transaction pinned *before* a demoting vacuum keeps reading the
/// same bytes afterwards: demotion prunes RAM only after the run and
/// manifest are durable, and the pinned reader falls through to cold.
#[test]
fn pinned_snapshot_reads_identically_across_demotion() {
    let (_dir, path) = tmp("pinned.wal");
    let db = Database::open(&path, cold_options()).unwrap();
    let t = db.create_table(table_def()).unwrap();
    let (rid, _) = insert(&db, t, 1, "genesis");
    let mid = put(&db, t, rid, 1, "middle");
    for i in 0..50 {
        put(&db, t, rid, 1, &format!("later-{i}"));
    }

    let pinned = db.begin_at(mid).unwrap();
    let before_row = pinned.get(t, rid).unwrap().unwrap().values().to_vec();
    let before_scan: Vec<_> = pinned.scan(t, &Predicate::True).unwrap();

    let pruned = db.vacuum();
    assert!(pruned > 0, "vacuum must demote the 50-version chain");
    assert!(db.stats().cold_demotions > 0);

    // Same transaction, same snapshot, post-demotion: identical bytes.
    let after_row = pinned.get(t, rid).unwrap().unwrap().values().to_vec();
    assert_eq!(before_row, after_row);
    assert_eq!(before_row[1], Value::Text("middle".into()));
    let after_scan: Vec<_> = pinned.scan(t, &Predicate::True).unwrap();
    assert_eq!(before_scan.len(), after_scan.len());
    for ((rid_a, row_a), (rid_b, row_b)) in before_scan.iter().zip(after_scan.iter()) {
        assert_eq!(rid_a, rid_b);
        assert_eq!(row_a.values(), row_b.values());
    }

    // A *new* transaction at the old snapshot reads the same bytes too.
    let fresh = db.begin_at(mid).unwrap();
    assert_eq!(
        fresh.get(t, rid).unwrap().unwrap().values(),
        before_row.as_slice()
    );
}

/// Degenerate bloom filters (1 bit/key) force false positives; reads
/// must stay correct (the probe simply misses) and the stats must
/// record the bloom traffic.
#[test]
fn bloom_false_positives_are_harmless() {
    let (_dir, path) = tmp("bloom.wal");
    let opts = Options {
        cold_storage: Some(ColdOptions {
            memtable_version_budget: 8,
            block_bytes: 256,
            bloom_bits_per_key: 1,
            compact_min_runs: 1000, // never compact: keep many runs live
        }),
        ..Options::default()
    };
    let db = Database::open(&path, opts).unwrap();
    let t = db.create_table(table_def()).unwrap();

    // Many distinct rows, several demotion waves → several runs, each
    // holding a disjoint slice of rows, with saturated tiny blooms.
    let mut rids = Vec::new();
    let mut snaps = Vec::new();
    for wave in 0..6 {
        for i in 0..20 {
            let (rid, ts) = insert(&db, t, wave * 100 + i, &format!("w{wave}i{i}"));
            rids.push((rid, wave, i));
            snaps.push(ts);
        }
        // Overwrite this wave's rows so the originals become history.
        for &(rid, w, i) in rids.iter().rev().take(20) {
            put(&db, t, rid, w * 100 + i, "current");
        }
        db.vacuum();
    }
    assert!(
        db.stats().cold_runs >= 2,
        "need several runs for FP traffic"
    );

    // Read every row at its insertion snapshot: correct bytes always.
    for (k, &(rid, w, i)) in rids.iter().enumerate() {
        let txn = db.begin_at(snaps[k]).unwrap();
        let row = txn.get(t, rid).unwrap().unwrap();
        assert_eq!(row.values()[1], Value::Text(format!("w{w}i{i}")));
    }
    let s = db.stats();
    assert!(
        s.cold_bloom_skips + s.cold_bloom_false_positives > 0,
        "multi-run reads must exercise the bloom filters"
    );
}

/// Demote, close, reopen: the manifest brings the runs back and point
/// lookups below the cold floor read through them.
#[test]
fn reopen_recovers_cold_runs() {
    let (_dir, path) = tmp("reopen.wal");
    let (rid, first_ts, t_id);
    {
        let db = Database::open(&path, cold_options()).unwrap();
        let t = db.create_table(table_def()).unwrap();
        t_id = t;
        let r = insert(&db, t, 7, "original");
        rid = r.0;
        first_ts = r.1;
        for i in 0..40 {
            put(&db, t, rid, 7, &format!("rev-{i}"));
        }
        assert!(db.vacuum() > 0);
        assert!(db.stats().cold_runs > 0);
    }
    let db = Database::open(&path, cold_options()).unwrap();
    assert!(db.stats().cold_runs > 0, "manifest must restore runs");
    // WAL replay put the history back in RAM; vacuum prunes it again
    // (the versions are already cold, so nothing is re-demoted) and
    // forces the next old read through the runs.
    db.vacuum();
    let txn = db.begin_at(first_ts).unwrap();
    let row = txn.get(t_id, rid).unwrap().unwrap();
    assert_eq!(row.values()[1], Value::Text("original".into()));
    assert!(db.stats().cold_reads >= 1);
    // Newest state is served from RAM (replayed from the WAL).
    let now = db.begin();
    assert_eq!(
        now.get(t_id, rid).unwrap().unwrap().values()[1],
        Value::Text("rev-39".into())
    );
}

/// Compaction folds runs together and applies the lineage retention
/// floor: snapshots below it are refused, snapshots at/above it keep
/// their exact bytes.
#[test]
fn compaction_honors_retention_floor() {
    let (_dir, path) = tmp("compact.wal");
    let opts = Options {
        cold_storage: Some(ColdOptions {
            memtable_version_budget: 8,
            compact_min_runs: 4,
            ..ColdOptions::default()
        }),
        ..Options::default()
    };
    let db = Database::open(&path, opts).unwrap();
    let t = db.create_table(table_def()).unwrap();
    let (rid, _) = insert(&db, t, 1, "v0");
    let mut version_ts = Vec::new();
    for wave in 0..5 {
        for i in 0..10 {
            version_ts.push(put(&db, t, rid, 1, &format!("w{wave}v{i}")));
        }
        db.vacuum();
    }
    assert!(db.stats().cold_runs >= 4);

    // Retain history only from wave 3 on.
    let keep_from = version_ts[30];
    db.set_lineage_retention(keep_from).unwrap();
    assert!(db.cold_compact_if_needed().unwrap());
    let s = db.stats();
    assert_eq!(s.cold_compactions, 1);
    assert_eq!(s.cold_runs, 1, "compaction must fold runs into one");

    // Below the floor: refused with the typed error.
    let err = db.begin_at(version_ts[10]).unwrap_err();
    assert!(
        matches!(err, StorageError::SnapshotTooOld { .. }),
        "{err:?}"
    );
    // At and above the floor: exact bytes survive compaction.
    for (k, &ts) in version_ts.iter().enumerate().skip(30) {
        let txn = db.begin_at(ts).unwrap();
        let row = txn.get(t, rid).unwrap().unwrap();
        let wave = k / 10;
        let i = k % 10;
        assert_eq!(row.values()[1], Value::Text(format!("w{wave}v{i}")));
    }
}

/// Tombstones travel to the cold tier too: a row deleted then demoted
/// stays visible before the delete and absent after it, in gets and
/// scans alike.
#[test]
fn deletes_round_trip_through_cold() {
    let (_dir, path) = tmp("deletes.wal");
    let db = Database::open(&path, cold_options()).unwrap();
    let t = db.create_table(table_def()).unwrap();
    let (doomed, born) = insert(&db, t, 1, "doomed");
    let (keeper, _) = insert(&db, t, 2, "keeper");
    let dead = {
        let mut txn = db.begin();
        txn.delete(t, doomed).unwrap();
        txn.commit().unwrap()
    };
    // Push enough churn on the surviving row to trigger demotion.
    for i in 0..40 {
        put(&db, t, keeper, 2, &format!("k{i}"));
    }
    assert!(db.vacuum() > 0);
    assert!(db.stats().cold_demotions > 0);

    let before = db.begin_at(born).unwrap();
    assert!(before.get(t, doomed).unwrap().is_some());
    assert_eq!(before.scan(t, &Predicate::True).unwrap().len(), 1);

    let after = db.begin_at(dead).unwrap();
    assert!(after.get(t, doomed).unwrap().is_none());
    let visible = after.scan(t, &Predicate::True).unwrap();
    assert_eq!(visible.len(), 1);
    assert_eq!(visible[0].0, keeper);
}

/// Index reads below the cold floor rebuild from the merged tiers:
/// lookups, ranges, and descending cursors all see era-correct keys.
#[test]
fn index_reads_below_cold_floor() {
    let (_dir, path) = tmp("index.wal");
    let db = Database::open(&path, cold_options()).unwrap();
    let t = db.create_table(table_def()).unwrap();
    let (a, _) = insert(&db, t, 10, "a0");
    let (b, _) = insert(&db, t, 20, "b0");
    // Era boundary: a is authored by 10, b by 20.
    let era = put(&db, t, b, 20, "b1");
    // Then b moves to author 10 and both churn until demotion.
    for i in 0..40 {
        put(&db, t, b, 10, &format!("b-moved-{i}"));
        put(&db, t, a, 10, &format!("a-{i}"));
    }
    assert!(db.vacuum() > 0);

    let txn = db.begin_at(era).unwrap();
    let by_10 = txn
        .index_lookup(t, "docs_by_author", &[Value::Id(10)])
        .unwrap();
    assert_eq!(by_10.len(), 1);
    assert_eq!(by_10[0].0, a);
    let by_20 = txn
        .index_lookup(t, "docs_by_author", &[Value::Id(20)])
        .unwrap();
    assert_eq!(by_20.len(), 1);
    assert_eq!(by_20[0].0, b);
    assert_eq!(by_20[0].1.values()[1], Value::Text("b1".into()));

    let all: Vec<_> = txn
        .index_range(
            t,
            "docs_by_author",
            std::ops::Bound::Unbounded,
            std::ops::Bound::Unbounded,
        )
        .unwrap();
    assert_eq!(all.len(), 2);

    let newest = txn
        .index_prev(t, "docs_by_author", &[], None)
        .unwrap()
        .expect("descending cursor must find the era-newest key");
    assert_eq!(newest.1, b, "author 20 sorts last at the era snapshot");

    // The same index at head sees both rows under author 10.
    let head = db.begin();
    let by_10_now = head
        .index_lookup(t, "docs_by_author", &[Value::Id(10)])
        .unwrap();
    assert_eq!(by_10_now.len(), 2);
}

/// Checkpoint demotes history instead of splicing it back into the
/// WAL: after a checkpoint + reopen, old snapshots read from cold and
/// the log holds only the hot tail.
#[test]
fn checkpoint_demotes_and_survives_reopen() {
    let (_dir, path) = tmp("ckpt.wal");
    let (rid, t_id, mid);
    {
        let db = Database::open(&path, cold_options()).unwrap();
        let t = db.create_table(table_def()).unwrap();
        t_id = t;
        let r = insert(&db, t, 1, "v0");
        rid = r.0;
        let mut m = 0;
        for i in 0..30 {
            m = put(&db, t, rid, 1, &format!("v{i}"));
            if i == 14 {
                // remember a mid-history snapshot
            }
        }
        let _ = m;
        mid = db.begin().snapshot_ts(); // head snapshot pre-checkpoint
        db.checkpoint().unwrap();
        let s = db.stats();
        assert!(
            s.cold_demotions > 0,
            "checkpoint with cold tier must demote history"
        );
    }
    let db = Database::open(&path, cold_options()).unwrap();
    assert!(db.stats().cold_runs > 0);
    let txn = db.begin_at(mid).unwrap();
    assert_eq!(
        txn.get(t_id, rid).unwrap().unwrap().values()[1],
        Value::Text("v29".into())
    );
}

/// With the tier disabled (the default), no cold file ever appears and
/// the cold stats stay zero — the engine is byte-identical to before.
#[test]
fn disabled_tier_is_inert() {
    let (_dir, path) = tmp("inert.wal");
    let db = Database::open(&path, hot_options()).unwrap();
    let t = db.create_table(table_def()).unwrap();
    let (rid, _) = insert(&db, t, 1, "v0");
    for i in 0..50 {
        put(&db, t, rid, 1, &format!("v{i}"));
    }
    db.vacuum();
    db.checkpoint().unwrap();
    let s = db.stats();
    assert_eq!(s.cold_runs, 0);
    assert_eq!(s.cold_demotions, 0);
    assert_eq!(s.cold_versions, 0);
    let dir = path.parent().unwrap();
    for entry in std::fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name().into_string().unwrap();
        assert!(!name.contains(".cold."), "unexpected cold file {name}");
    }
}
