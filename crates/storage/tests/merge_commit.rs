//! Commutative chain-neighborhood commits ([`Transaction::set_with_anchors`]).
//!
//! First-committer-wins is exact for plain writes, but the TeNDaX edit
//! pattern — concurrent editors splicing around *adjacent* characters —
//! keeps writing disjoint link fields of the same shared row. These
//! tests pin the merge semantics: disjoint descriptors (no shared
//! columns, no shared anchors) compose instead of aborting; any overlap,
//! undescribed competitor, or delete still aborts; merged commits are
//! durable through the WAL; and the concurrent merged outcome equals the
//! serialized execution.

use std::path::PathBuf;

use tendax_storage::{DataType, Database, Options, Row, StorageError, TableDef, TableId, Value};

mod common;
use common::TestDir;

fn tmp(name: &str) -> (TestDir, PathBuf) {
    let dir = TestDir::new("tendax-merge");
    let p = dir.file(name);
    (dir, p)
}

/// A miniature `chars`-shaped table: two link columns, a tombstone flag
/// and a style column.
fn link_table() -> TableDef {
    TableDef::new("links")
        .nullable_column("prev", DataType::Id)
        .nullable_column("next", DataType::Id)
        .column("deleted", DataType::Bool)
        .nullable_column("style", DataType::Id)
}

fn seed(db: &Database) -> (TableId, tendax_storage::RowId) {
    let t = db.create_table(link_table()).unwrap();
    let mut txn = db.begin();
    let rid = txn
        .insert(
            t,
            Row::new(vec![
                Value::Null,
                Value::Null,
                Value::Bool(false),
                Value::Null,
            ]),
        )
        .unwrap();
    txn.commit().unwrap();
    (t, rid)
}

fn value_at(db: &Database, t: TableId, rid: tendax_storage::RowId, col: usize) -> Value {
    db.begin()
        .get(t, rid)
        .unwrap()
        .unwrap()
        .get(col)
        .unwrap()
        .clone()
}

/// Disjoint columns + disjoint anchors: the later committer merges its
/// delta onto the earlier one's version, both survive, and the engine
/// counts the merge (not a conflict).
#[test]
fn disjoint_descriptors_merge() {
    let db = Database::open_in_memory();
    let (t, rid) = seed(&db);

    let mut a = db.begin();
    let mut b = db.begin();
    a.set_with_anchors(t, rid, &[("prev", Value::Id(10))], &[1])
        .unwrap();
    b.set_with_anchors(t, rid, &[("next", Value::Id(20))], &[2])
        .unwrap();
    a.commit().unwrap();
    b.commit().unwrap();

    assert_eq!(
        value_at(&db, t, rid, 0),
        Value::Id(10),
        "first writer's column"
    );
    assert_eq!(
        value_at(&db, t, rid, 1),
        Value::Id(20),
        "second writer's column"
    );

    let stats = db.stats();
    assert_eq!(stats.commits_merged, 1);
    assert_eq!(stats.merge_fields_applied, 1);
    assert_eq!(stats.conflicts, 0);
    assert_eq!(stats.write_conflicts_true_overlap, 0);
}

/// Same column from both sides is a true overlap: the second committer
/// aborts, and the abort is counted as a *true* overlap, not an FCW
/// casualty of row granularity.
#[test]
fn field_overlap_aborts() {
    let db = Database::open_in_memory();
    let (t, rid) = seed(&db);

    let mut a = db.begin();
    let mut b = db.begin();
    a.set_with_anchors(t, rid, &[("next", Value::Id(10))], &[1])
        .unwrap();
    b.set_with_anchors(t, rid, &[("next", Value::Id(20))], &[2])
        .unwrap();
    a.commit().unwrap();
    let err = b.commit().unwrap_err();
    assert!(matches!(err, StorageError::WriteConflict { .. }), "{err}");

    let stats = db.stats();
    assert_eq!(stats.conflicts, 1);
    assert_eq!(stats.write_conflicts_true_overlap, 1);
    assert_eq!(stats.commits_merged, 0);
    assert_eq!(
        value_at(&db, t, rid, 1),
        Value::Id(10),
        "first committer won"
    );
}

/// Disjoint columns but a shared anchor: the writes touch different
/// fields yet depend on the same logical chain edge, so they do not
/// commute and the second committer aborts.
#[test]
fn anchor_overlap_aborts() {
    let db = Database::open_in_memory();
    let (t, rid) = seed(&db);

    let mut a = db.begin();
    let mut b = db.begin();
    a.set_with_anchors(t, rid, &[("prev", Value::Id(10))], &[7])
        .unwrap();
    b.set_with_anchors(t, rid, &[("next", Value::Id(20))], &[7])
        .unwrap();
    a.commit().unwrap();
    let err = b.commit().unwrap_err();
    assert!(matches!(err, StorageError::WriteConflict { .. }), "{err}");
    assert_eq!(db.stats().write_conflicts_true_overlap, 1);
}

/// A described write cannot merge across an *undescribed* competitor
/// (wholesale `set`/`update`): there is no way to prove the full-row
/// write left our columns alone. And an undescribed write never merges
/// at all — plain first-committer-wins, in both orders.
#[test]
fn plain_writes_never_merge() {
    // Plain first, patch second.
    let db = Database::open_in_memory();
    let (t, rid) = seed(&db);
    let mut a = db.begin();
    let mut b = db.begin();
    a.set(t, rid, &[("prev", Value::Id(10))]).unwrap();
    b.set_with_anchors(t, rid, &[("next", Value::Id(20))], &[2])
        .unwrap();
    a.commit().unwrap();
    let err = b.commit().unwrap_err();
    assert!(matches!(err, StorageError::WriteConflict { .. }), "{err}");
    assert_eq!(db.stats().write_conflicts_true_overlap, 1);

    // Patch first, plain second: the plain write keeps exact FCW and the
    // descriptor path is never consulted.
    let db = Database::open_in_memory();
    let (t, rid) = seed(&db);
    let mut a = db.begin();
    let mut b = db.begin();
    a.set_with_anchors(t, rid, &[("prev", Value::Id(10))], &[1])
        .unwrap();
    b.set(t, rid, &[("next", Value::Id(20))]).unwrap();
    a.commit().unwrap();
    let err = b.commit().unwrap_err();
    assert!(matches!(err, StorageError::WriteConflict { .. }), "{err}");
    let stats = db.stats();
    assert_eq!(stats.conflicts, 1);
    assert_eq!(
        stats.write_conflicts_true_overlap, 0,
        "plain FCW, not a descriptor refusal"
    );
}

/// A delete is never mergeable: a patch racing a committed delete
/// aborts no matter how disjoint its descriptor is.
#[test]
fn delete_vs_patch_aborts() {
    let db = Database::open_in_memory();
    let (t, rid) = seed(&db);

    let mut a = db.begin();
    let mut b = db.begin();
    a.delete(t, rid).unwrap();
    b.set_with_anchors(t, rid, &[("next", Value::Id(20))], &[2])
        .unwrap();
    a.commit().unwrap();
    let err = b.commit().unwrap_err();
    assert!(matches!(err, StorageError::WriteConflict { .. }), "{err}");
    assert_eq!(db.stats().write_conflicts_true_overlap, 1);
}

/// Merges chain: a laggard pinned far in the past merges across
/// *several* described commits, as long as every one of them is
/// disjoint from it.
#[test]
fn laggard_merges_across_many_commits() {
    let db = Database::open_in_memory();
    let (t, rid) = seed(&db);
    let base = db.begin().snapshot_ts();

    for i in 0..5u64 {
        let mut txn = db.begin();
        txn.set_with_anchors(t, rid, &[("prev", Value::Id(i))], &[1])
            .unwrap();
        txn.commit().unwrap();
    }

    // The laggard began (logically) before all five: begin_at pins its
    // base, and its disjoint column merges across the whole window.
    let mut lag = db.begin_at(base).unwrap();
    lag.set_with_anchors(t, rid, &[("next", Value::Id(99))], &[2])
        .unwrap();
    lag.commit().unwrap();

    assert_eq!(
        value_at(&db, t, rid, 0),
        Value::Id(4),
        "newest prev survives"
    );
    assert_eq!(
        value_at(&db, t, rid, 1),
        Value::Id(99),
        "laggard's next applied"
    );
    assert_eq!(db.stats().commits_merged, 1);
}

/// Repeated described updates of the same row within one transaction
/// union their descriptors and still merge as one write.
#[test]
fn descriptors_union_within_one_txn() {
    let db = Database::open_in_memory();
    let (t, rid) = seed(&db);

    let mut a = db.begin();
    let mut b = db.begin();
    a.set_with_anchors(t, rid, &[("prev", Value::Id(1))], &[1])
        .unwrap();
    a.set_with_anchors(t, rid, &[("prev", Value::Id(2))], &[1])
        .unwrap();
    b.set_with_anchors(t, rid, &[("next", Value::Id(3))], &[2])
        .unwrap();
    b.set_with_anchors(t, rid, &[("style", Value::Id(4))], &[])
        .unwrap();
    a.commit().unwrap();
    b.commit().unwrap();

    assert_eq!(value_at(&db, t, rid, 0), Value::Id(2));
    assert_eq!(value_at(&db, t, rid, 1), Value::Id(3));
    assert_eq!(value_at(&db, t, rid, 3), Value::Id(4));
    let stats = db.stats();
    assert_eq!(stats.commits_merged, 1);
    assert_eq!(stats.merge_fields_applied, 2, "next + style replayed");
}

/// The merged row — not the stale buffered one — is what the WAL logs:
/// after a crash-free reopen both writers' columns are still there, and
/// the replayed chain merges exactly as the live engine did.
#[test]
fn merged_commit_survives_reopen() {
    let (_g, path) = tmp("merge.wal");
    {
        let db = Database::open(&path, Options::default()).unwrap();
        let (t, rid) = seed(&db);
        let mut a = db.begin();
        let mut b = db.begin();
        a.set_with_anchors(t, rid, &[("prev", Value::Id(10))], &[1])
            .unwrap();
        b.set_with_anchors(t, rid, &[("next", Value::Id(20))], &[2])
            .unwrap();
        a.commit().unwrap();
        b.commit().unwrap();
        assert_eq!(db.stats().commits_merged, 1);
    }
    let db = Database::open(&path, Options::default()).unwrap();
    let t = db.table_id("links").unwrap();
    let rows = db
        .begin()
        .scan(t, &tendax_storage::Predicate::True)
        .unwrap();
    assert_eq!(rows.len(), 1);
    let row = &rows[0].1;
    assert_eq!(row.get(0), Some(&Value::Id(10)));
    assert_eq!(row.get(1), Some(&Value::Id(20)));

    // The recovered chain still carries descriptors: a pinned laggard
    // can merge across the replayed commits too.
    let (rid, base) = {
        let txn = db.begin();
        (rows[0].0, txn.snapshot_ts())
    };
    let mut c = db.begin();
    c.set_with_anchors(t, rid, &[("style", Value::Id(5))], &[])
        .unwrap();
    c.commit().unwrap();
    let mut lag = db.begin_at(base).unwrap();
    lag.set_with_anchors(t, rid, &[("deleted", Value::Bool(true))], &[])
        .unwrap();
    lag.commit().unwrap();
    assert_eq!(value_at(&db, t, rid, 3), Value::Id(5));
    assert_eq!(value_at(&db, t, rid, 2), Value::Bool(true));
}

/// Convergence oracle: the concurrent (merged) execution produces the
/// byte-identical row the serialized execution produces, for every
/// interleaving of three disjoint writers.
#[test]
fn concurrent_merge_equals_serialized() {
    let writes: [(&str, Value, u64); 3] = [
        ("prev", Value::Id(11), 1),
        ("next", Value::Id(22), 2),
        ("style", Value::Id(33), 3),
    ];
    // Serialized reference.
    let reference = {
        let db = Database::open_in_memory();
        let (t, rid) = seed(&db);
        for (col, val, anchor) in &writes {
            let mut txn = db.begin();
            txn.set_with_anchors(t, rid, &[(col, val.clone())], &[*anchor])
                .unwrap();
            txn.commit().unwrap();
        }
        Row::clone(&db.begin().get(t, rid).unwrap().unwrap())
    };
    // Every commit order of three concurrent transactions.
    let orders: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    for order in orders {
        let db = Database::open_in_memory();
        let (t, rid) = seed(&db);
        let mut txns: Vec<_> = (0..3).map(|_| Some(db.begin())).collect();
        for (i, txn) in txns.iter_mut().enumerate() {
            let (col, val, anchor) = &writes[i];
            txn.as_mut()
                .unwrap()
                .set_with_anchors(t, rid, &[(col, val.clone())], &[*anchor])
                .unwrap();
        }
        for &i in &order {
            txns[i].take().unwrap().commit().unwrap();
        }
        let got = Row::clone(&db.begin().get(t, rid).unwrap().unwrap());
        assert_eq!(got.values(), reference.values(), "order {order:?} diverged");
        assert_eq!(db.stats().commits_merged, 2, "later two commits merged");
    }
}

/// `begin_at` contract: the snapshot clamps to the watermark, and a
/// snapshot below the vacuum floor is refused rather than silently
/// reading pruned history.
#[test]
fn begin_at_clamps_and_respects_vacuum_floor() {
    let db = Database::open_in_memory();
    let (t, rid) = seed(&db);

    // Clamp: asking for the far future reads as of "now".
    let txn = db.begin_at(u64::MAX).unwrap();
    assert!(txn.get(t, rid).unwrap().is_some());
    let now = txn.snapshot_ts();
    drop(txn);
    assert!(now < u64::MAX);

    // Pile up superseded versions, vacuum them away, then ask for a
    // pre-vacuum snapshot.
    for i in 0..8u64 {
        let mut txn = db.begin();
        txn.set_with_anchors(t, rid, &[("prev", Value::Id(i))], &[1])
            .unwrap();
        txn.commit().unwrap();
    }
    let pruned = db.vacuum();
    assert!(pruned > 0, "vacuum had versions to prune");
    let err = db.begin_at(1).unwrap_err();
    assert!(matches!(err, StorageError::SnapshotTooOld { .. }), "{err}");
}
