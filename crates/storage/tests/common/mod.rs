//! Shared helpers for the storage integration tests.
#![allow(dead_code)] // each test binary uses a subset of these helpers

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A scoped temp directory: created unique on `new`, removed (with all
/// contents) on drop. Every integration test that needs an on-disk WAL
/// goes through this guard so test runs stop leaking per-pid dirs under
/// `/tmp`. Keep the guard alive for as long as the paths it handed out
/// are in use.
#[derive(Debug)]
pub struct TestDir {
    path: PathBuf,
}

impl TestDir {
    pub fn new(prefix: &str) -> TestDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("{prefix}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        TestDir { path }
    }

    /// A path for `name` inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
