//! Group-commit and crash-recovery integration tests: torn WAL tails
//! repaired on reopen, concurrent committers at every durability level,
//! and fsync amortization under contention.

use std::path::PathBuf;

use tendax_storage::{
    DataType, Database, DurabilityLevel, Options, Predicate, Row, RowId, TableDef, Value,
};

mod common;
use common::TestDir;

fn tmp(name: &str) -> (TestDir, PathBuf) {
    let dir = TestDir::new("tendax-group-it");
    let p = dir.file(name);
    (dir, p)
}

fn opts(durability: DurabilityLevel) -> Options {
    Options {
        durability,
        ..Options::default()
    }
}

fn seq_table() -> TableDef {
    TableDef::new("t")
        .column("writer", DataType::Id)
        .column("seq", DataType::Int)
        .index("by_writer", &["writer"])
}

fn insert_seq(db: &Database, t: tendax_storage::TableId, writer: u64, seq: i64) {
    let mut txn = db.begin();
    txn.insert(t, Row::new(vec![Value::Id(writer), Value::Int(seq)]))
        .unwrap();
    txn.commit().unwrap();
}

fn count_rows(db: &Database) -> usize {
    let t = db.table_id("t").unwrap();
    db.begin().count(t, &Predicate::True).unwrap()
}

// ------------------------------------------------------------ torn tails

/// Crash-recovery satellite: a torn tail (partial final frame) must be
/// detected, truncated away on reopen *before* new records are appended,
/// and the repaired log must replay cleanly on a second reopen. A buggy
/// reopen that appends after the torn bytes would turn the tail into
/// mid-log corruption and fail the final replay.
fn torn_tail_roundtrip(durability: DurabilityLevel, name: &str) {
    let (_dir, path) = tmp(name);
    {
        let db = Database::open(&path, opts(durability)).unwrap();
        let t = db.create_table(seq_table()).unwrap();
        for i in 0..5 {
            insert_seq(&db, t, 0, i);
        }
    }
    // Inject a torn tail: a frame header promising 100 payload bytes,
    // followed by only a few — exactly what a crash mid-`write` leaves.
    let mut data = std::fs::read(&path).unwrap();
    let before = data.len();
    data.extend_from_slice(&100u32.to_le_bytes());
    data.extend_from_slice(&0xdead_beefu32.to_le_bytes());
    data.extend_from_slice(&[0xab; 7]);
    std::fs::write(&path, &data).unwrap();

    {
        let db = Database::open(&path, opts(durability)).unwrap();
        assert_eq!(count_rows(&db), 5, "torn tail must not eat whole commits");
        let t = db.table_id("t").unwrap();
        insert_seq(&db, t, 0, 5);
    }
    // If the tail was truncated before appending, the file shrank back to
    // `before` and grew by exactly the new commit.
    assert!(
        std::fs::metadata(&path).unwrap().len() >= before as u64,
        "repaired log lost committed data"
    );
    let db = Database::open(&path, opts(durability)).unwrap();
    let t = db.table_id("t").unwrap();
    let rows = db.begin().scan(t, &Predicate::True).unwrap();
    let mut seqs: Vec<i64> = rows
        .iter()
        .map(|(_, r)| r.get(1).unwrap().as_int().unwrap())
        .collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (0..6).collect::<Vec<_>>());
}

#[test]
fn torn_tail_repaired_then_appendable_buffered() {
    torn_tail_roundtrip(DurabilityLevel::Buffered, "torn-buffered.wal");
}

#[test]
fn torn_tail_repaired_then_appendable_fsync() {
    torn_tail_roundtrip(DurabilityLevel::Fsync, "torn-fsync.wal");
}

#[test]
fn torn_tail_repaired_then_appendable_none() {
    torn_tail_roundtrip(DurabilityLevel::None, "torn-none.wal");
}

// ------------------------------------------------- concurrent commit stress

/// Stress satellite: N threads mixing disjoint write-sets (must all
/// commit) with single-attempt updates to shared rows (first committer
/// wins; losers surface `WriteConflict` and are counted). Afterwards the
/// engine's books must balance: conflict counter equals observed losses,
/// shared-row values equal observed wins, no leaked active transactions,
/// the vacuum horizon returns to `last_commit_ts` (a second vacuum finds
/// nothing), and a reopen replays exactly the in-memory committed state.
fn stress_level(durability: DurabilityLevel, name: &str) {
    const THREADS: u64 = 4;
    const ROUNDS: i64 = 25;

    let (_dir, path) = tmp(name);
    let db = Database::open(&path, opts(durability)).unwrap();
    let t = db.create_table(seq_table()).unwrap();
    let shared: Vec<RowId> = {
        let mut setup = db.begin();
        let rows = (0..2u64)
            .map(|w| {
                setup
                    .insert(t, Row::new(vec![Value::Id(w), Value::Int(0)]))
                    .unwrap()
            })
            .collect();
        setup.commit().unwrap();
        rows
    };

    let mut handles = Vec::new();
    for w in 0..THREADS {
        let db = db.clone();
        let shared = shared.clone();
        handles.push(std::thread::spawn(move || {
            let mut wins = 0u64;
            let mut losses = 0u64;
            for i in 0..ROUNDS {
                // Disjoint write-set: unique (writer, seq) row, no
                // possible conflict — must always commit.
                insert_seq(&db, t, 100 + w, i);
                // Overlapping write-set: bump a shared row, one attempt.
                let rid = shared[(i as usize) % shared.len()];
                let mut txn = db.begin();
                let cur = txn
                    .get(t, rid)
                    .unwrap()
                    .unwrap()
                    .get(1)
                    .unwrap()
                    .as_int()
                    .unwrap();
                txn.set(t, rid, &[("seq", Value::Int(cur + 1))]).unwrap();
                match txn.commit() {
                    Ok(_) => wins += 1,
                    Err(tendax_storage::StorageError::WriteConflict { .. }) => losses += 1,
                    Err(e) => panic!("unexpected commit error: {e}"),
                }
            }
            (wins, losses)
        }));
    }
    let mut wins = 0u64;
    let mut losses = 0u64;
    for h in handles {
        let (w, l) = h.join().unwrap();
        wins += w;
        losses += l;
    }
    assert_eq!(wins + losses, THREADS * ROUNDS as u64);

    let stats = db.stats();
    assert_eq!(stats.conflicts, losses, "conflict counter out of balance");
    assert_eq!(stats.active_txns, 0, "leaked active transactions");
    // 1 setup + disjoint inserts + shared-row wins.
    assert_eq!(stats.commits, 1 + THREADS * ROUNDS as u64 + wins);

    // Shared-row totals equal the observed wins (no lost updates).
    let reader = db.begin();
    let total: i64 = shared
        .iter()
        .map(|&rid| {
            reader
                .get(t, rid)
                .unwrap()
                .unwrap()
                .get(1)
                .unwrap()
                .as_int()
                .unwrap()
        })
        .sum();
    assert_eq!(total as u64, wins, "lost or phantom increments");
    drop(reader);

    // With no active snapshots the vacuum horizon is last_commit_ts:
    // one pass prunes all superseded versions, a second finds nothing.
    db.vacuum();
    assert_eq!(
        db.vacuum(),
        0,
        "vacuum horizon did not return to last_commit_ts"
    );

    // Reopen: WAL replay must reconstruct the in-memory committed state.
    let mut expect: Vec<(u64, i64)> = db
        .begin()
        .scan(t, &Predicate::True)
        .unwrap()
        .iter()
        .map(|(_, r)| {
            (
                r.get(0).unwrap().as_id().unwrap(),
                r.get(1).unwrap().as_int().unwrap(),
            )
        })
        .collect();
    expect.sort_unstable();
    drop(db);

    let db = Database::open(&path, opts(durability)).unwrap();
    let t = db.table_id("t").unwrap();
    let mut got: Vec<(u64, i64)> = db
        .begin()
        .scan(t, &Predicate::True)
        .unwrap()
        .iter()
        .map(|(_, r)| {
            (
                r.get(0).unwrap().as_id().unwrap(),
                r.get(1).unwrap().as_int().unwrap(),
            )
        })
        .collect();
    got.sort_unstable();
    assert_eq!(got, expect, "replayed state diverges from committed state");
}

#[test]
fn concurrent_commits_balance_books_buffered() {
    stress_level(DurabilityLevel::Buffered, "stress-buffered.wal");
}

#[test]
fn concurrent_commits_balance_books_fsync() {
    stress_level(DurabilityLevel::Fsync, "stress-fsync.wal");
}

#[test]
fn concurrent_commits_balance_books_none() {
    stress_level(DurabilityLevel::None, "stress-none.wal");
}

// -------------------------------------------------------------- batching

/// With >= 4 committers racing at `Fsync`, flush leaders must absorb
/// followers: the mean batch exceeds one record and at least one fsync
/// is saved versus flush-per-commit.
#[test]
fn group_commit_batches_under_concurrency() {
    const THREADS: u64 = 4;
    const OPS: i64 = 40;

    let (_dir, path) = tmp("batching.wal");
    let db = Database::open(&path, opts(DurabilityLevel::Fsync)).unwrap();
    let t = db.create_table(seq_table()).unwrap();

    let mut handles = Vec::new();
    for w in 0..THREADS {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..OPS {
                insert_seq(&db, t, w, i);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let stats = db.stats();
    assert!(
        stats.wal_records_flushed >= THREADS * OPS as u64,
        "records unaccounted for: {stats:?}"
    );
    assert!(
        stats.wal_batches_flushed < stats.wal_records_flushed,
        "mean batch size is 1 — group commit never grouped: {stats:?}"
    );
    assert!(stats.wal_fsyncs_saved > 0, "no fsyncs amortized: {stats:?}");
    assert_eq!(count_rows(&db), (THREADS * OPS as u64) as usize);
}

/// The baseline mode must behave exactly like the old engine: one flush
/// per record, nothing saved.
#[test]
fn baseline_mode_never_batches() {
    let (_dir, path) = tmp("baseline-mode.wal");
    let db = Database::open(
        &path,
        Options {
            durability: DurabilityLevel::Fsync,
            group_commit: false,
            ..Options::default()
        },
    )
    .unwrap();
    let t = db.create_table(seq_table()).unwrap();
    for i in 0..10 {
        insert_seq(&db, t, 0, i);
    }
    let stats = db.stats();
    assert_eq!(stats.wal_batches_flushed, stats.wal_records_flushed);
    assert_eq!(stats.wal_fsyncs_saved, 0);
}
