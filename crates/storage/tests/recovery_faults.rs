//! Fault-injection tests for WAL recovery: arbitrary crash points must
//! never corrupt the database — recovery yields exactly a prefix of the
//! committed transactions. Crash points come in two flavors here:
//! truncating a real log at any byte, and the same sweep on [`SimVfs`]
//! with true lost-write semantics (unsynced bytes vanish wholesale, the
//! tail may tear mid-sector) — see `tests/sim_crash.rs` for the full
//! crash-simulation suite.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;
use tendax_storage::{
    DataType, Database, DurabilityLevel, Options, Predicate, Row, SimVfs, TableDef, Value,
};

mod common;
use common::TestDir;

fn tmp(name: &str) -> (TestDir, PathBuf) {
    let dir = TestDir::new("tendax-fault");
    let p = dir.file(name);
    (dir, p)
}

fn table_def() -> TableDef {
    TableDef::new("t")
        .column("seq", DataType::Int)
        .index("by_seq", &["seq"])
}

/// Write `n` single-row transactions (seq = 0..n) and return the log.
fn build_log(path: &PathBuf, n: i64) {
    let db = Database::open(path, Options::default()).unwrap();
    let t = db.create_table(table_def()).unwrap();
    for i in 0..n {
        let mut txn = db.begin();
        txn.insert(t, Row::new(vec![Value::Int(i)])).unwrap();
        txn.commit().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncation at any byte leaves a recoverable prefix: the surviving
    /// rows are exactly seq = 0..k for some k ≤ n, in order.
    #[test]
    fn truncation_always_recovers_a_prefix(n in 1i64..12, cut_frac in 0.0f64..1.0) {
        let (_dir, path) = tmp(&format!("prefix-{n}.wal"));
        build_log(&path, n);
        let data = std::fs::read(&path).unwrap();
        let cut = ((data.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &data[..cut]).unwrap();

        let db = Database::open(&path, Options::default()).unwrap();
        match db.table_id("t") {
            Err(_) => {
                // Truncated before the DDL record: an empty database is a
                // valid prefix.
            }
            Ok(t) => {
                let rows = db.begin().scan(t, &Predicate::True).unwrap();
                let seqs: Vec<i64> = rows
                    .iter()
                    .map(|(_, r)| r.get(0).unwrap().as_int().unwrap())
                    .collect();
                let expected: Vec<i64> = (0..seqs.len() as i64).collect();
                prop_assert_eq!(&seqs, &expected, "must be a commit prefix");
                prop_assert!(seqs.len() as i64 <= n);
            }
        }
    }

    /// After any truncation, the database accepts new writes and they
    /// survive another clean reopen.
    #[test]
    fn recovered_database_is_writable(n in 1i64..8, cut_frac in 0.0f64..1.0) {
        let (_dir, path) = tmp(&format!("writable-{n}.wal"));
        build_log(&path, n);
        let data = std::fs::read(&path).unwrap();
        let cut = ((data.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &data[..cut]).unwrap();

        let survivors;
        {
            let db = Database::open(&path, Options::default()).unwrap();
            let t = match db.table_id("t") {
                Ok(t) => t,
                Err(_) => db.create_table(table_def()).unwrap(),
            };
            let mut txn = db.begin();
            txn.insert(t, Row::new(vec![Value::Int(777)])).unwrap();
            txn.commit().unwrap();
            survivors = db.begin().count(t, &Predicate::True).unwrap();
        }
        let db = Database::open(&path, Options::default()).unwrap();
        let t = db.table_id("t").unwrap();
        let reader = db.begin();
        prop_assert_eq!(reader.count(t, &Predicate::True).unwrap(), survivors);
        prop_assert_eq!(
            reader
                .scan(t, &Predicate::Eq("seq".into(), Value::Int(777)))
                .unwrap()
                .len(),
            1
        );
    }

    /// Checkpoint + truncation of the *fresh* tail still recovers at
    /// least the checkpointed state.
    #[test]
    fn checkpoint_state_survives_tail_truncation(n in 2i64..8, extra in 1i64..5, tail_frac in 0.0f64..1.0) {
        let (_dir, path) = tmp(&format!("ckpt-{n}-{extra}.wal"));
        {
            let db = Database::open(&path, Options::default()).unwrap();
            let t = db.create_table(table_def()).unwrap();
            for i in 0..n {
                let mut txn = db.begin();
                txn.insert(t, Row::new(vec![Value::Int(i)])).unwrap();
                txn.commit().unwrap();
            }
            db.checkpoint().unwrap();
            let checkpoint_size = std::fs::metadata(&path).unwrap().len() as usize;
            for i in 0..extra {
                let mut txn = db.begin();
                txn.insert(t, Row::new(vec![Value::Int(n + i)])).unwrap();
                txn.commit().unwrap();
            }
            drop(db);
            // Truncate somewhere in the post-checkpoint tail only.
            let data = std::fs::read(&path).unwrap();
            let tail = data.len() - checkpoint_size;
            let cut = checkpoint_size + ((tail as f64) * tail_frac) as usize;
            std::fs::write(&path, &data[..cut]).unwrap();
        }
        let db = Database::open(&path, Options::default()).unwrap();
        let t = db.table_id("t").unwrap();
        let count = db.begin().count(t, &Predicate::True).unwrap() as i64;
        prop_assert!(count >= n, "checkpointed rows lost: {count} < {n}");
        prop_assert!(count <= n + extra);
    }
}

// ----------------------------------------------------------- SimVfs twin

const SIM_WAL: &str = "/sim/fault.wal";

fn sim_opts(vfs: &SimVfs, durability: DurabilityLevel) -> Options {
    Options {
        durability,
        vfs: Arc::new(vfs.clone()),
        ..Options::default()
    }
}

/// `build_log` against the simulated disk, tolerating the injected
/// power cut mid-build. Returns how many commits were acknowledged.
fn build_log_on(vfs: &SimVfs, durability: DurabilityLevel, n: i64) -> i64 {
    let Ok(db) = Database::open(SIM_WAL, sim_opts(vfs, durability)) else {
        return 0;
    };
    let Ok(t) = db.create_table(table_def()) else {
        return 0;
    };
    let mut acked = 0;
    for i in 0..n {
        let mut txn = db.begin();
        if txn.insert(t, Row::new(vec![Value::Int(i)])).is_err() {
            break;
        }
        if txn.commit().is_err() {
            break;
        }
        acked += 1;
    }
    acked
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The truncation sweep's SimVfs twin: instead of slicing bytes off
    /// a healthy log, cut the power after an arbitrary fraction of the
    /// op schedule and crash the machine. This models what truncation
    /// cannot: unsynced writes vanish wholesale (not just the tail),
    /// fsync boundaries decide survival, and the last sector may tear.
    /// Recovery must still be exactly a commit-order prefix — and at
    /// `Fsync`, hold every acknowledged commit.
    #[test]
    fn sim_power_cut_always_recovers_a_prefix(
        n in 1i64..12,
        seed in 0u64..1024,
        cut_frac in 0.0f64..1.0,
        fsync in 0u8..2,
    ) {
        let durability = if fsync == 1 {
            DurabilityLevel::Fsync
        } else {
            DurabilityLevel::Buffered
        };
        // Fault-free twin measures the op schedule to cut into.
        let twin = SimVfs::new(seed);
        prop_assert_eq!(build_log_on(&twin, durability, n), n);
        let cut = ((twin.ops() as f64) * cut_frac) as u64;

        let vfs = SimVfs::new(seed);
        vfs.power_fail_after(cut);
        let acked = build_log_on(&vfs, durability, n);
        vfs.crash();

        let db = Database::open(SIM_WAL, sim_opts(&vfs, durability))
            .unwrap_or_else(|e| panic!(
                "seed {seed} cut {cut} {durability:?}: reopen failed: {e} \
                 (rerun with TENDAX_SIM_SEED={seed})"
            ));
        let seqs: Vec<i64> = match db.table_id("t") {
            // Cut fell before the DDL record became durable: an empty
            // database is a valid prefix.
            Err(_) => Vec::new(),
            Ok(t) => db
                .begin()
                .scan(t, &Predicate::True)
                .unwrap()
                .iter()
                .map(|(_, r)| r.get(0).unwrap().as_int().unwrap())
                .collect(),
        };
        let expected: Vec<i64> = (0..seqs.len() as i64).collect();
        prop_assert_eq!(
            &seqs, &expected,
            "seed {} cut {} {:?}: must be a commit prefix", seed, cut, durability
        );
        prop_assert!(seqs.len() as i64 <= n);
        if durability == DurabilityLevel::Fsync {
            prop_assert!(
                seqs.len() as i64 >= acked,
                "seed {} cut {} at Fsync: {} acked, only {} recovered",
                seed, cut, acked, seqs.len()
            );
        }
    }
}
