//! Fault-injection tests for WAL recovery: arbitrary crash points
//! (simulated by truncating the log at any byte) must never corrupt the
//! database — recovery yields exactly a prefix of the committed
//! transactions.

use std::path::PathBuf;

use proptest::prelude::*;
use tendax_storage::{DataType, Database, Options, Predicate, Row, TableDef, Value};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tendax-fault-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

fn table_def() -> TableDef {
    TableDef::new("t")
        .column("seq", DataType::Int)
        .index("by_seq", &["seq"])
}

/// Write `n` single-row transactions (seq = 0..n) and return the log.
fn build_log(path: &PathBuf, n: i64) {
    let db = Database::open(path, Options::default()).unwrap();
    let t = db.create_table(table_def()).unwrap();
    for i in 0..n {
        let mut txn = db.begin();
        txn.insert(t, Row::new(vec![Value::Int(i)])).unwrap();
        txn.commit().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncation at any byte leaves a recoverable prefix: the surviving
    /// rows are exactly seq = 0..k for some k ≤ n, in order.
    #[test]
    fn truncation_always_recovers_a_prefix(n in 1i64..12, cut_frac in 0.0f64..1.0) {
        let path = tmp(&format!("prefix-{n}.wal"));
        build_log(&path, n);
        let data = std::fs::read(&path).unwrap();
        let cut = ((data.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &data[..cut]).unwrap();

        let db = Database::open(&path, Options::default()).unwrap();
        match db.table_id("t") {
            Err(_) => {
                // Truncated before the DDL record: an empty database is a
                // valid prefix.
            }
            Ok(t) => {
                let rows = db.begin().scan(t, &Predicate::True).unwrap();
                let seqs: Vec<i64> = rows
                    .iter()
                    .map(|(_, r)| r.get(0).unwrap().as_int().unwrap())
                    .collect();
                let expected: Vec<i64> = (0..seqs.len() as i64).collect();
                prop_assert_eq!(&seqs, &expected, "must be a commit prefix");
                prop_assert!(seqs.len() as i64 <= n);
            }
        }
    }

    /// After any truncation, the database accepts new writes and they
    /// survive another clean reopen.
    #[test]
    fn recovered_database_is_writable(n in 1i64..8, cut_frac in 0.0f64..1.0) {
        let path = tmp(&format!("writable-{n}.wal"));
        build_log(&path, n);
        let data = std::fs::read(&path).unwrap();
        let cut = ((data.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &data[..cut]).unwrap();

        let survivors;
        {
            let db = Database::open(&path, Options::default()).unwrap();
            let t = match db.table_id("t") {
                Ok(t) => t,
                Err(_) => db.create_table(table_def()).unwrap(),
            };
            let mut txn = db.begin();
            txn.insert(t, Row::new(vec![Value::Int(777)])).unwrap();
            txn.commit().unwrap();
            survivors = db.begin().count(t, &Predicate::True).unwrap();
        }
        let db = Database::open(&path, Options::default()).unwrap();
        let t = db.table_id("t").unwrap();
        let reader = db.begin();
        prop_assert_eq!(reader.count(t, &Predicate::True).unwrap(), survivors);
        prop_assert_eq!(
            reader
                .scan(t, &Predicate::Eq("seq".into(), Value::Int(777)))
                .unwrap()
                .len(),
            1
        );
    }

    /// Checkpoint + truncation of the *fresh* tail still recovers at
    /// least the checkpointed state.
    #[test]
    fn checkpoint_state_survives_tail_truncation(n in 2i64..8, extra in 1i64..5, tail_frac in 0.0f64..1.0) {
        let path = tmp(&format!("ckpt-{n}-{extra}.wal"));
        {
            let db = Database::open(&path, Options::default()).unwrap();
            let t = db.create_table(table_def()).unwrap();
            for i in 0..n {
                let mut txn = db.begin();
                txn.insert(t, Row::new(vec![Value::Int(i)])).unwrap();
                txn.commit().unwrap();
            }
            db.checkpoint().unwrap();
            let checkpoint_size = std::fs::metadata(&path).unwrap().len() as usize;
            for i in 0..extra {
                let mut txn = db.begin();
                txn.insert(t, Row::new(vec![Value::Int(n + i)])).unwrap();
                txn.commit().unwrap();
            }
            drop(db);
            // Truncate somewhere in the post-checkpoint tail only.
            let data = std::fs::read(&path).unwrap();
            let tail = data.len() - checkpoint_size;
            let cut = checkpoint_size + ((tail as f64) * tail_frac) as usize;
            std::fs::write(&path, &data[..cut]).unwrap();
        }
        let db = Database::open(&path, Options::default()).unwrap();
        let t = db.table_id("t").unwrap();
        let count = db.begin().count(t, &Predicate::True).unwrap() as i64;
        prop_assert!(count >= n, "checkpointed rows lost: {count} < {n}");
        prop_assert!(count <= n + extra);
    }
}
