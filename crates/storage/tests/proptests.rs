//! Property-based tests for the storage engine.
//!
//! These check the engine's core laws against randomized inputs:
//! WAL codec round-trips, snapshot isolation vs. a model, and index/scan
//! agreement.

use std::collections::BTreeMap;

use proptest::prelude::*;

use tendax_storage::row::Row;
use tendax_storage::schema::{TableDef, TableId};
use tendax_storage::value::{DataType, Value};
use tendax_storage::wal::codec::{decode_record, encode_record};
use tendax_storage::wal::{WalOp, WalRecord, WalWrite};
use tendax_storage::{Database, Predicate, RowId};

// ---------------------------------------------------------------- WAL codec

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<u64>().prop_map(Value::Id),
        ".{0,40}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
        any::<i64>().prop_map(Value::Timestamp),
        any::<f64>().prop_map(Value::Float),
    ]
}

fn arb_wal_op() -> impl Strategy<Value = WalOp> {
    prop_oneof![
        proptest::collection::vec(arb_value(), 0..8)
            .prop_map(|vs| WalOp::Put(Row::new(vs).into_shared())),
        Just(WalOp::Delete),
    ]
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (any::<u64>(), any::<i64>())
            .prop_map(|(next_ts, clock)| WalRecord::Meta { next_ts, clock }),
        (any::<u32>()).prop_map(|id| WalRecord::DropTable { id: TableId(id) }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec((any::<u32>(), any::<u64>(), arb_wal_op()), 0..6)
        )
            .prop_map(|(txn, commit_ts, ws)| WalRecord::Commit {
                txn,
                commit_ts,
                writes: ws
                    .into_iter()
                    .map(|(t, r, op)| WalWrite {
                        table: TableId(t),
                        row: RowId(r),
                        op
                    })
                    .collect(),
            }),
        (any::<u32>(), any::<u64>(), any::<u64>(), arb_wal_op()).prop_map(|(t, r, ts, op)| {
            WalRecord::SnapshotRow {
                table: TableId(t),
                row: RowId(r),
                commit_ts: ts,
                op,
            }
        }),
        (any::<u32>(), any::<u64>()).prop_map(|(t, w)| WalRecord::Watermark {
            table: TableId(t),
            next_row_id: w
        }),
    ]
}

proptest! {
    /// `Value`'s ordering is a genuine total order (indexes rely on it):
    /// antisymmetric, transitive, and consistent with equality.
    #[test]
    fn value_ordering_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Reflexivity / equality consistency.
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
        prop_assert_eq!(a.total_cmp(&b) == Ordering::Equal, a == b);
        // Transitivity.
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }

    #[test]
    fn wal_codec_roundtrips(rec in arb_record()) {
        let bytes = encode_record(&rec);
        let back = decode_record(&bytes).unwrap();
        // Float NaN breaks PartialEq; compare via re-encoding.
        prop_assert_eq!(encode_record(&back), bytes);
    }

    #[test]
    fn wal_codec_rejects_any_truncation(rec in arb_record()) {
        let bytes = encode_record(&rec);
        // Every strict prefix must fail to decode.
        for cut in 0..bytes.len() {
            prop_assert!(decode_record(&bytes[..cut]).is_err());
        }
    }
}

// ----------------------------------------------------- engine vs. a model

/// A scripted operation against one table with an integer payload.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    /// Update the k-th live row (modulo) to carry the payload.
    Update(usize, i64),
    /// Delete the k-th live row (modulo).
    Delete(usize),
    Commit,
    Abort,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<i64>().prop_map(Op::Insert),
        (any::<usize>(), any::<i64>()).prop_map(|(k, v)| Op::Update(k, v)),
        any::<usize>().prop_map(Op::Delete),
        Just(Op::Commit),
        Just(Op::Abort),
    ]
}

fn payload_table() -> TableDef {
    TableDef::new("t")
        .column("payload", DataType::Int)
        .index("by_payload", &["payload"])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Run a random script of transactions against the engine and an
    /// in-memory model; committed state must match after every commit.
    #[test]
    fn engine_matches_model(script in proptest::collection::vec(arb_op(), 1..60)) {
        let db = Database::open_in_memory();
        let t = db.create_table(payload_table()).unwrap();

        let mut model: BTreeMap<RowId, i64> = BTreeMap::new();
        let mut pending: BTreeMap<RowId, Option<i64>> = BTreeMap::new(); // None = delete
        let mut txn = db.begin();

        for op in script {
            // Live rows as the transaction sees them.
            let live: Vec<RowId> = {
                let mut l: BTreeMap<RowId, i64> = model.clone();
                for (rid, p) in &pending {
                    match p {
                        Some(v) => { l.insert(*rid, *v); }
                        None => { l.remove(rid); }
                    }
                }
                l.keys().copied().collect()
            };
            match op {
                Op::Insert(v) => {
                    let rid = txn.insert(t, Row::new(vec![Value::Int(v)])).unwrap();
                    pending.insert(rid, Some(v));
                }
                Op::Update(k, v) => {
                    if !live.is_empty() {
                        let rid = live[k % live.len()];
                        txn.set(t, rid, &[("payload", Value::Int(v))]).unwrap();
                        pending.insert(rid, Some(v));
                    }
                }
                Op::Delete(k) => {
                    if !live.is_empty() {
                        let rid = live[k % live.len()];
                        txn.delete(t, rid).unwrap();
                        pending.insert(rid, None);
                    }
                }
                Op::Commit => {
                    txn.commit().unwrap();
                    for (rid, p) in std::mem::take(&mut pending) {
                        match p {
                            Some(v) => { model.insert(rid, v); }
                            None => { model.remove(&rid); }
                        }
                    }
                    // Engine and model agree on committed state.
                    let got: BTreeMap<RowId, i64> = db
                        .begin()
                        .scan(t, &Predicate::True)
                        .unwrap()
                        .into_iter()
                        .map(|(rid, r)| (rid, r.get(0).unwrap().as_int().unwrap()))
                        .collect();
                    prop_assert_eq!(&got, &model);
                    txn = db.begin();
                }
                Op::Abort => {
                    txn.abort();
                    pending.clear();
                    let got: BTreeMap<RowId, i64> = db
                        .begin()
                        .scan(t, &Predicate::True)
                        .unwrap()
                        .into_iter()
                        .map(|(rid, r)| (rid, r.get(0).unwrap().as_int().unwrap()))
                        .collect();
                    prop_assert_eq!(&got, &model);
                    txn = db.begin();
                }
            }
        }
    }

    /// Index scans return exactly what an exhaustive scan returns.
    #[test]
    fn index_scan_agrees_with_full_scan(values in proptest::collection::vec(-20i64..20, 1..80), probe in -20i64..20) {
        let db = Database::open_in_memory();
        let t = db.create_table(payload_table()).unwrap();
        let mut txn = db.begin();
        for v in &values {
            txn.insert(t, Row::new(vec![Value::Int(*v)])).unwrap();
        }
        txn.commit().unwrap();

        let reader = db.begin();
        // Uses the planner (index path for Eq on indexed col).
        let via_planner = reader
            .scan(t, &Predicate::Eq("payload".into(), Value::Int(probe)))
            .unwrap();
        // Force a full scan with a predicate the planner can't index.
        let via_full = reader
            .scan(
                t,
                &Predicate::Between("payload".into(), Value::Int(probe), Value::Int(probe)),
            )
            .unwrap();
        prop_assert_eq!(via_planner.len(), via_full.len());
        prop_assert_eq!(
            via_planner.len(),
            values.iter().filter(|v| **v == probe).count()
        );
    }

    /// Vacuum never changes what the latest snapshot sees.
    #[test]
    fn vacuum_preserves_latest_snapshot(updates in proptest::collection::vec(any::<i64>(), 1..40)) {
        let db = Database::open_in_memory();
        let t = db.create_table(payload_table()).unwrap();
        let mut txn = db.begin();
        let rid = txn.insert(t, Row::new(vec![Value::Int(0)])).unwrap();
        txn.commit().unwrap();
        for v in &updates {
            let mut w = db.begin();
            w.set(t, rid, &[("payload", Value::Int(*v))]).unwrap();
            w.commit().unwrap();
        }
        let before: Vec<_> = db.begin().scan(t, &Predicate::True).unwrap();
        db.vacuum();
        let after: Vec<_> = db.begin().scan(t, &Predicate::True).unwrap();
        prop_assert_eq!(before, after);
    }
}
