//! Reopen compatibility across WAL shard layouts: the on-disk layout is
//! what discovery finds, not what `Options::wal_shards` asks for — a
//! database written under one shard count must reopen cleanly under any
//! other, keep its data, and converge to the requested layout only at
//! the next checkpoint (re-shard on checkpoint, never on open). Torn
//! shard tails must still recover a commit-order prefix on the way.

use std::path::{Path, PathBuf};

use tendax_storage::{shard_path, DataType, Database, Options, Predicate, Row, TableDef, Value};

mod common;
use common::TestDir;

fn tmp(name: &str) -> (TestDir, PathBuf) {
    let dir = TestDir::new("tendax-reshard");
    let p = dir.file(name);
    (dir, p)
}

fn opts(wal_shards: usize) -> Options {
    Options {
        wal_shards,
        ..Options::default()
    }
}

fn table_def(name: &str) -> TableDef {
    TableDef::new(name).column("seq", DataType::Int)
}

/// Insert `seq = lo..hi` into `name` (creating it if needed), one
/// commit per row.
fn write_range(db: &Database, name: &str, lo: i64, hi: i64) {
    let t = db
        .table_id(name)
        .or_else(|_| db.create_table(table_def(name)))
        .unwrap();
    for i in lo..hi {
        let mut txn = db.begin();
        txn.insert(t, Row::new(vec![Value::Int(i)])).unwrap();
        txn.commit().unwrap();
    }
}

/// The sorted `seq` values visible in `name` (empty if the table is
/// gone).
fn seqs(db: &Database, name: &str) -> Vec<i64> {
    match db.table_id(name) {
        Ok(t) => {
            let mut v: Vec<i64> = db
                .begin()
                .scan(t, &Predicate::True)
                .unwrap()
                .iter()
                .map(|(_, r)| r.get(0).unwrap().as_int().unwrap())
                .collect();
            v.sort_unstable();
            v
        }
        Err(_) => Vec::new(),
    }
}

fn sibling_count(base: &Path) -> usize {
    let mut n = 0;
    while shard_path(base, n + 1).exists() {
        n += 1;
    }
    n
}

/// A log written single-file reopens under `wal_shards = 4` in the old
/// layout, converges on checkpoint, and keeps every row across the
/// whole dance — and the reverse direction works the same way.
#[test]
fn reopen_keeps_layout_until_checkpoint_both_directions() {
    for (from, to) in [(1usize, 4usize), (4, 1)] {
        let (_dir, path) = tmp(&format!("convert-{from}-{to}.wal"));
        {
            let db = Database::open(&path, opts(from)).unwrap();
            write_range(&db, "t", 0, 10);
            db.checkpoint().unwrap();
            assert_eq!(db.wal_shard_count(), from);
            write_range(&db, "t", 10, 14); // live tail past the snapshot
        }
        assert_eq!(
            sibling_count(&path),
            from - 1,
            "{from}->{to}: layout on disk"
        );

        // Reopen requesting the other layout: the open must keep the
        // on-disk layout and all data.
        {
            let db = Database::open(&path, opts(to)).unwrap();
            assert_eq!(
                db.wal_shard_count(),
                from,
                "{from}->{to}: open must keep the on-disk layout"
            );
            assert_eq!(seqs(&db, "t"), (0..14).collect::<Vec<_>>());

            // The checkpoint performs the transition.
            db.checkpoint().unwrap();
            assert_eq!(
                db.wal_shard_count(),
                to,
                "{from}->{to}: checkpoint must converge the layout"
            );
            assert_eq!(seqs(&db, "t"), (0..14).collect::<Vec<_>>());
            write_range(&db, "t", 14, 18); // the new layout takes writes
        }
        assert_eq!(
            sibling_count(&path),
            to - 1,
            "{from}->{to}: converged on disk"
        );

        // A clean reopen of the converged layout holds everything.
        let db = Database::open(&path, opts(to)).unwrap();
        assert_eq!(db.wal_shard_count(), to);
        assert_eq!(seqs(&db, "t"), (0..18).collect::<Vec<_>>());
    }
}

/// Round-trip 1 → 4 → 1 with writes at every stop: no layout hop may
/// lose a row, and the final single-file log replays exactly like a
/// log that was never sharded.
#[test]
fn reshard_roundtrip_keeps_every_row() {
    let (_dir, path) = tmp("roundtrip.wal");
    {
        let db = Database::open(&path, opts(1)).unwrap();
        write_range(&db, "a", 0, 5);
        write_range(&db, "b", 0, 5);
    }
    {
        let db = Database::open(&path, opts(4)).unwrap();
        db.checkpoint().unwrap();
        assert_eq!(db.wal_shard_count(), 4);
        write_range(&db, "a", 5, 10);
        write_range(&db, "b", 5, 10);
    }
    {
        let db = Database::open(&path, opts(1)).unwrap();
        assert_eq!(db.wal_shard_count(), 4, "open must not re-shard");
        write_range(&db, "a", 10, 12);
        db.checkpoint().unwrap();
        assert_eq!(db.wal_shard_count(), 1);
        write_range(&db, "b", 10, 12);
    }
    assert_eq!(sibling_count(&path), 0, "siblings must be deleted");

    let db = Database::open(&path, opts(1)).unwrap();
    assert_eq!(db.wal_shard_count(), 1);
    assert_eq!(seqs(&db, "a"), (0..12).collect::<Vec<_>>());
    assert_eq!(seqs(&db, "b"), (0..12).collect::<Vec<_>>());
}

/// Torn single-file tail, reopened sharded: the base file loses its
/// final bytes (a torn final sector), then the database is opened with
/// `wal_shards = 4`. Recovery must yield a commit-order prefix, and the
/// re-shard checkpoint must carry it into the new layout intact.
#[test]
fn torn_single_file_tail_reopens_sharded() {
    let (_dir, path) = tmp("torn-up.wal");
    {
        let db = Database::open(&path, opts(1)).unwrap();
        write_range(&db, "t", 0, 8);
    }
    let data = std::fs::read(&path).unwrap();
    std::fs::write(&path, &data[..data.len() - 7]).unwrap();

    let db = Database::open(&path, opts(4)).unwrap();
    assert_eq!(db.wal_shard_count(), 1, "open must keep the torn layout");
    let got = seqs(&db, "t");
    let expected: Vec<i64> = (0..got.len() as i64).collect();
    assert_eq!(got, expected, "torn tail must recover a commit prefix");
    assert!(got.len() >= 7, "only the torn final commit may be lost");

    let hi = got.len() as i64;
    db.checkpoint().unwrap();
    assert_eq!(db.wal_shard_count(), 4);
    write_range(&db, "t", hi, hi + 4);
    drop(db);

    let db = Database::open(&path, opts(4)).unwrap();
    assert_eq!(seqs(&db, "t"), (0..hi + 4).collect::<Vec<_>>());
}

/// Torn sibling tail, reopened single-file: commits spread over four
/// shard files, one sibling loses its final bytes, and the database is
/// opened with `wal_shards = 1`. The merged recovery must cut the
/// *global* prefix at the missing timestamp, and the re-shard
/// checkpoint must collapse the survivors into one file.
#[test]
fn torn_sibling_tail_reopens_single_file() {
    let (_dir, path) = tmp("torn-down.wal");
    {
        let db = Database::open(&path, opts(4)).unwrap();
        // Three tables spread commits across shards; interleave so each
        // file gets frames throughout the run.
        for name in ["a", "b", "c"] {
            write_range(&db, name, 0, 1);
        }
        for i in 1..8 {
            for name in ["a", "b", "c"] {
                write_range(&db, name, i, i + 1);
            }
        }
    }
    // Tear the tail of the first sibling that holds data.
    let victim = (1..4)
        .map(|k| shard_path(&path, k))
        .find(|p| std::fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false))
        .expect("no sibling holds data — routing regressed");
    let data = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &data[..data.len() - 5]).unwrap();

    let db = Database::open(&path, opts(1)).unwrap();
    assert_eq!(db.wal_shard_count(), 4, "open must keep the torn layout");
    // Every table must hold a contiguous run from 0, and the total must
    // reflect a single global cut: no table may run further ahead of
    // the shortest than the pre-tear interleaving allowed.
    let lens: Vec<usize> = ["a", "b", "c"]
        .iter()
        .map(|n| {
            let got = seqs(&db, n);
            let expected: Vec<i64> = (0..got.len() as i64).collect();
            assert_eq!(got, expected, "table {n}: not a commit prefix");
            got.len()
        })
        .collect();
    let (min, max) = (*lens.iter().min().unwrap(), *lens.iter().max().unwrap());
    assert!(min >= 1, "tear wiped more than the unsynced tail: {lens:?}");
    assert!(
        max - min <= 1,
        "global prefix cut violated — tables diverged: {lens:?}"
    );

    db.checkpoint().unwrap();
    assert_eq!(db.wal_shard_count(), 1);
    drop(db);
    assert_eq!(sibling_count(&path), 0, "siblings must be deleted");

    let db = Database::open(&path, opts(1)).unwrap();
    for (n, len) in ["a", "b", "c"].iter().zip(lens) {
        assert_eq!(
            seqs(&db, n),
            (0..len as i64).collect::<Vec<_>>(),
            "table {n}: collapsed log diverged"
        );
    }
}
