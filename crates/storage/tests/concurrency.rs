//! Concurrency stress tests: writers racing checkpoints, vacuum, and
//! each other across real threads. These validate the lock protocol
//! (commit latch, table locks, WAL mutex) rather than any single
//! feature; `tests/commit_pipeline.rs` covers the sharded-pipeline
//! invariants specifically.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tendax_storage::{DataType, Database, Options, Predicate, Row, TableDef, Value};

fn counter_table() -> TableDef {
    TableDef::new("t")
        .column("writer", DataType::Id)
        .column("seq", DataType::Int)
        .index("by_writer", &["writer"])
}

mod common;
use common::TestDir;

fn tmp(name: &str) -> (TestDir, PathBuf) {
    let dir = TestDir::new("tendax-conc");
    let p = dir.file(name);
    (dir, p)
}

#[test]
fn writers_race_checkpoints_without_loss() {
    let (_dir, path) = tmp("writers-checkpoint.wal");
    let db = Database::open(&path, Options::default()).unwrap();
    let t = db.create_table(counter_table()).unwrap();

    const WRITERS: u64 = 4;
    const OPS: i64 = 50;
    let stop = Arc::new(AtomicBool::new(false));

    let checkpointer = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut n = 0;
            while !stop.load(Ordering::Relaxed) {
                db.checkpoint().unwrap();
                n += 1;
                std::thread::yield_now();
            }
            n
        })
    };
    let mut writers = Vec::new();
    for w in 0..WRITERS {
        let db = db.clone();
        writers.push(std::thread::spawn(move || {
            for i in 0..OPS {
                let mut txn = db.begin();
                txn.insert(t, Row::new(vec![Value::Id(w), Value::Int(i)]))
                    .unwrap();
                txn.commit().unwrap();
            }
        }));
    }
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let checkpoints = checkpointer.join().unwrap();
    assert!(checkpoints > 0, "checkpointer never ran");
    drop(db);

    // Everything committed must survive reopen, in order per writer.
    let db = Database::open(&path, Options::default()).unwrap();
    let t = db.table_id("t").unwrap();
    let reader = db.begin();
    for w in 0..WRITERS {
        let rows = reader
            .scan(t, &Predicate::Eq("writer".into(), Value::Id(w)))
            .unwrap();
        let mut seqs: Vec<i64> = rows
            .iter()
            .map(|(_, r)| r.get(1).unwrap().as_int().unwrap())
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..OPS).collect::<Vec<_>>(), "writer {w} lost rows");
    }
}

#[test]
fn vacuum_races_updates_without_corrupting_reads() {
    let db = Database::open_in_memory();
    let t = db.create_table(counter_table()).unwrap();
    let mut setup = db.begin();
    let rows: Vec<_> = (0..16u64)
        .map(|w| {
            setup
                .insert(t, Row::new(vec![Value::Id(w), Value::Int(0)]))
                .unwrap()
        })
        .collect();
    setup.commit().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let vacuumer = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                db.vacuum();
                std::thread::yield_now();
            }
        })
    };
    let mut updaters = Vec::new();
    for (w, rid) in rows.iter().enumerate() {
        let db = db.clone();
        let rid = *rid;
        updaters.push(std::thread::spawn(move || {
            for i in 1..=40i64 {
                let mut txn = db.begin();
                txn.set(t, rid, &[("seq", Value::Int(i))]).unwrap();
                txn.commit().unwrap();
                // Reads in between must always see a consistent value.
                let snapshot = db.begin();
                let row = snapshot.get(t, rid).unwrap().unwrap();
                let v = row.get(1).unwrap().as_int().unwrap();
                assert!(v >= i || v <= 40, "impossible value {v}");
                assert_eq!(row.get(0).unwrap().as_id(), Some(w as u64));
            }
        }));
    }
    for h in updaters {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    vacuumer.join().unwrap();

    let reader = db.begin();
    for rid in rows {
        let row = reader.get(t, rid).unwrap().unwrap();
        assert_eq!(row.get(1).unwrap().as_int(), Some(40));
    }
}

#[test]
fn conflicting_writers_serialize_to_exactly_one_winner_per_round() {
    let db = Database::open_in_memory();
    let t = db.create_table(counter_table()).unwrap();
    let mut setup = db.begin();
    let rid = setup
        .insert(t, Row::new(vec![Value::Id(0), Value::Int(0)]))
        .unwrap();
    setup.commit().unwrap();

    // N threads all increment the same row optimistically with retries:
    // the final value must equal the number of successful increments.
    const THREADS: usize = 4;
    const INCREMENTS: i64 = 25;
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..INCREMENTS {
                loop {
                    let mut txn = db.begin();
                    let cur = txn
                        .get(t, rid)
                        .unwrap()
                        .unwrap()
                        .get(1)
                        .unwrap()
                        .as_int()
                        .unwrap();
                    txn.set(t, rid, &[("seq", Value::Int(cur + 1))]).unwrap();
                    if txn.commit().is_ok() {
                        break;
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let reader = db.begin();
    let v = reader.get(t, rid).unwrap().unwrap();
    assert_eq!(
        v.get(1).unwrap().as_int(),
        Some((THREADS as i64) * INCREMENTS),
        "lost increments under contention"
    );
    // Conflicts are timing-dependent; what matters is that every commit
    // that succeeded did so against a fresh snapshot (checked above).
}
