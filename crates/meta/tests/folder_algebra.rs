//! Property tests for the dynamic-folder rule algebra: rules evaluate
//! without panicking on arbitrary trees, boolean laws hold, and every
//! rule round-trips through its stored (JSON) encoding.

use proptest::prelude::*;
use tendax_meta::{DynamicFolders, FolderRule};
use tendax_text::TextDb;

fn leaf() -> impl Strategy<Value = FolderRule> {
    prop_oneof![
        (1u64..4).prop_map(|user| FolderRule::ReadBy { user, since: 0 }),
        (1u64..4).prop_map(|user| FolderRule::AuthoredBy { user }),
        (1u64..4).prop_map(|user| FolderRule::CreatedBy { user }),
        prop_oneof![Just("draft".to_string()), Just("final".to_string())]
            .prop_map(FolderRule::StateIs),
        "[a-c]{1,3}".prop_map(FolderRule::NameContains),
        (0usize..30).prop_map(FolderRule::MinSize),
        Just(FolderRule::HasOpenTasks),
    ]
}

fn arb_rule() -> impl Strategy<Value = FolderRule> {
    leaf().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(FolderRule::All),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(FolderRule::Any),
            inner.prop_map(|r| FolderRule::Not(Box::new(r))),
        ]
    })
}

fn corpus() -> (TextDb, DynamicFolders) {
    let tdb = TextDb::in_memory();
    let alice = tdb.create_user("alice").unwrap();
    let bob = tdb.create_user("bob").unwrap();
    let carol = tdb.create_user("carol").unwrap();
    for (i, (creator, author)) in [(alice, bob), (bob, carol), (carol, alice), (alice, alice)]
        .iter()
        .enumerate()
    {
        let d = tdb
            .create_document(&format!("doc-{}{}", (b'a' + i as u8) as char, i), *creator)
            .unwrap();
        let mut h = tdb.open(d, *author).unwrap();
        h.insert_text(0, &"abc ".repeat(i * 3 + 1)).unwrap();
        if i % 2 == 0 {
            tdb.set_document_state(d, "final", *creator).unwrap();
        }
    }
    let folders = DynamicFolders::init(tdb.clone()).unwrap();
    (tdb, folders)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary rule trees evaluate, and boolean laws hold against the
    /// same corpus: double negation, De Morgan, and idempotence.
    #[test]
    fn rule_algebra_laws(r in arb_rule(), s in arb_rule()) {
        let (_tdb, folders) = corpus();
        let eval = |rule: &FolderRule| folders.evaluate_rule(rule).unwrap();

        // Double negation.
        let not_not = FolderRule::Not(Box::new(FolderRule::Not(Box::new(r.clone()))));
        prop_assert_eq!(eval(&r), eval(&not_not));

        // De Morgan: !(r && s) == !r || !s
        let lhs = FolderRule::Not(Box::new(FolderRule::All(vec![r.clone(), s.clone()])));
        let rhs = FolderRule::Any(vec![
            FolderRule::Not(Box::new(r.clone())),
            FolderRule::Not(Box::new(s.clone())),
        ]);
        prop_assert_eq!(eval(&lhs), eval(&rhs));

        // Idempotence: r && r == r
        prop_assert_eq!(eval(&FolderRule::All(vec![r.clone(), r.clone()])), eval(&r));

        // All() result is the intersection; Any() the union.
        let both = eval(&FolderRule::All(vec![r.clone(), s.clone()]));
        let either = eval(&FolderRule::Any(vec![r.clone(), s.clone()]));
        for d in &both {
            prop_assert!(eval(&r).contains(d) && eval(&s).contains(d));
        }
        for d in eval(&r) {
            prop_assert!(either.contains(&d));
        }
    }

    /// Every rule survives storage: create a folder, read it back, and
    /// the evaluated contents match the ad-hoc evaluation.
    #[test]
    fn rules_roundtrip_through_persistence(r in arb_rule()) {
        let (_tdb, folders) = corpus();
        let owner = folders.textdb().user_by_name("alice").unwrap();
        let id = folders.create_folder("probe", owner, r.clone()).unwrap();
        let stored = folders.folder_by_name("probe").unwrap();
        prop_assert_eq!(&stored.rule, &r);
        prop_assert_eq!(
            folders.evaluate(id).unwrap(),
            folders.evaluate_rule(&r).unwrap()
        );
    }
}
