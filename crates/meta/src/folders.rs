//! Dynamic folders: virtual folders defined by metadata predicates.
//!
//! "A dynamic folder can contain all documents a certain user has read
//! within the last week. Its content is fluent and may change within
//! seconds." A folder stores a [`FolderRule`]; evaluation runs the rule
//! against the live metadata tables, and [`FolderSet`] tracks membership
//! deltas between refreshes.

use crate::json;
use tendax_storage::{DataType, Predicate, Row, StorageError, TableDef, TableId, Value};
use tendax_text::{DocId, Result, TextDb, TextError, UserId};

/// The predicate language of dynamic folders.
#[derive(Debug, Clone, PartialEq)]
pub enum FolderRule {
    /// Documents `user` has read at or after the given engine timestamp.
    ReadBy {
        user: u64,
        since: i64,
    },
    /// Documents where `user` authored at least one character.
    AuthoredBy {
        user: u64,
    },
    /// Documents created by `user`.
    CreatedBy {
        user: u64,
    },
    /// Documents in a workflow state (`draft`, `review`, `final`, …).
    StateIs(String),
    /// Document name contains the given substring.
    NameContains(String),
    /// Visible content contains the given substring.
    ContentContains(String),
    /// Documents containing text pasted from `doc`.
    PastedFrom {
        doc: u64,
    },
    /// Documents edited (any logged operation) at or after the timestamp.
    EditedSince(i64),
    /// Documents with at least `n` visible characters.
    MinSize(usize),
    /// Documents with at least one pending workflow task (requires the
    /// process schema; matches nothing if it is not installed).
    HasOpenTasks,
    All(Vec<FolderRule>),
    Any(Vec<FolderRule>),
    Not(Box<FolderRule>),
}

impl FolderRule {
    /// Encode as JSON in the externally-tagged layout (`{"Variant":
    /// {...}}`, bare string for unit variants) that stored rules have
    /// always used.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            FolderRule::ReadBy { user, since } => {
                let _ = write!(out, "{{\"ReadBy\":{{\"user\":{user},\"since\":{since}}}}}");
            }
            FolderRule::AuthoredBy { user } => {
                let _ = write!(out, "{{\"AuthoredBy\":{{\"user\":{user}}}}}");
            }
            FolderRule::CreatedBy { user } => {
                let _ = write!(out, "{{\"CreatedBy\":{{\"user\":{user}}}}}");
            }
            FolderRule::StateIs(s) => {
                out.push_str("{\"StateIs\":");
                json::write_str(out, s);
                out.push('}');
            }
            FolderRule::NameContains(s) => {
                out.push_str("{\"NameContains\":");
                json::write_str(out, s);
                out.push('}');
            }
            FolderRule::ContentContains(s) => {
                out.push_str("{\"ContentContains\":");
                json::write_str(out, s);
                out.push('}');
            }
            FolderRule::PastedFrom { doc } => {
                let _ = write!(out, "{{\"PastedFrom\":{{\"doc\":{doc}}}}}");
            }
            FolderRule::EditedSince(ts) => {
                let _ = write!(out, "{{\"EditedSince\":{ts}}}");
            }
            FolderRule::MinSize(n) => {
                let _ = write!(out, "{{\"MinSize\":{n}}}");
            }
            FolderRule::HasOpenTasks => out.push_str("\"HasOpenTasks\""),
            FolderRule::All(rules) | FolderRule::Any(rules) => {
                let tag = if matches!(self, FolderRule::All(_)) {
                    "All"
                } else {
                    "Any"
                };
                let _ = write!(out, "{{\"{tag}\":[");
                for (i, r) in rules.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    r.write_json(out);
                }
                out.push_str("]}");
            }
            FolderRule::Not(inner) => {
                out.push_str("{\"Not\":");
                inner.write_json(out);
                out.push('}');
            }
        }
    }

    /// Decode a rule previously produced by [`FolderRule::to_json`].
    pub fn from_json(text: &str) -> std::result::Result<FolderRule, String> {
        let value = json::parse(text)?;
        Self::from_value(&value)
    }

    fn from_value(value: &json::Json) -> std::result::Result<FolderRule, String> {
        if let Some(tag) = value.as_str() {
            return match tag {
                "HasOpenTasks" => Ok(FolderRule::HasOpenTasks),
                other => Err(format!("unknown unit rule `{other}`")),
            };
        }
        let (tag, payload) = value
            .as_tagged()
            .ok_or_else(|| "rule must be a tagged object or unit string".to_string())?;
        let field_u64 = |name: &str| {
            payload
                .get(name)
                .and_then(json::Json::as_u64)
                .ok_or_else(|| format!("`{tag}` needs numeric field `{name}`"))
        };
        let as_string = || {
            payload
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("`{tag}` needs a string payload"))
        };
        let as_rules = || -> std::result::Result<Vec<FolderRule>, String> {
            payload
                .as_arr()
                .ok_or_else(|| format!("`{tag}` needs an array payload"))?
                .iter()
                .map(Self::from_value)
                .collect()
        };
        match tag {
            "ReadBy" => Ok(FolderRule::ReadBy {
                user: field_u64("user")?,
                since: payload
                    .get("since")
                    .and_then(json::Json::as_i64)
                    .ok_or("`ReadBy` needs numeric field `since`")?,
            }),
            "AuthoredBy" => Ok(FolderRule::AuthoredBy {
                user: field_u64("user")?,
            }),
            "CreatedBy" => Ok(FolderRule::CreatedBy {
                user: field_u64("user")?,
            }),
            "StateIs" => Ok(FolderRule::StateIs(as_string()?)),
            "NameContains" => Ok(FolderRule::NameContains(as_string()?)),
            "ContentContains" => Ok(FolderRule::ContentContains(as_string()?)),
            "PastedFrom" => Ok(FolderRule::PastedFrom {
                doc: field_u64("doc")?,
            }),
            "EditedSince" => Ok(FolderRule::EditedSince(
                payload.as_i64().ok_or("`EditedSince` needs a number")?,
            )),
            "MinSize" => Ok(FolderRule::MinSize(
                payload.as_usize().ok_or("`MinSize` needs a number")?,
            )),
            "Not" => Ok(FolderRule::Not(Box::new(Self::from_value(payload)?))),
            "All" => Ok(FolderRule::All(as_rules()?)),
            "Any" => Ok(FolderRule::Any(as_rules()?)),
            other => Err(format!("unknown rule tag `{other}`")),
        }
    }

    pub fn and(self, other: FolderRule) -> FolderRule {
        match self {
            FolderRule::All(mut v) => {
                v.push(other);
                FolderRule::All(v)
            }
            s => FolderRule::All(vec![s, other]),
        }
    }

    pub fn or(self, other: FolderRule) -> FolderRule {
        FolderRule::Any(vec![self, other])
    }
}

/// Identifier of a stored folder definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FolderId(pub u64);

/// A stored folder.
#[derive(Debug, Clone, PartialEq)]
pub struct Folder {
    pub id: FolderId,
    pub name: String,
    pub owner: UserId,
    pub rule: FolderRule,
}

/// Membership change reported by [`FolderSet::refresh`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FolderChange {
    Added(DocId),
    Removed(DocId),
}

fn folders_def() -> TableDef {
    TableDef::new("folders")
        .column("name", DataType::Text)
        .column("owner", DataType::Id)
        .column("rule", DataType::Text)
        .unique_index("folders_by_name", &["name"])
}

/// The dynamic-folder engine.
#[derive(Debug, Clone)]
pub struct DynamicFolders {
    tdb: TextDb,
    table: TableId,
}

impl DynamicFolders {
    pub fn init(tdb: TextDb) -> Result<DynamicFolders> {
        let db = tdb.database();
        match db.create_table(folders_def()) {
            Ok(_) | Err(StorageError::TableExists(_)) => {}
            Err(e) => return Err(e.into()),
        }
        let table = db.table_id("folders")?;
        Ok(DynamicFolders { tdb, table })
    }

    pub fn textdb(&self) -> &TextDb {
        &self.tdb
    }

    /// Persist a folder definition.
    pub fn create_folder(&self, name: &str, owner: UserId, rule: FolderRule) -> Result<FolderId> {
        let encoded = rule.to_json();
        let mut txn = self.tdb.database().begin();
        let rid = txn.insert(
            self.table,
            Row::new(vec![
                Value::Text(name.to_owned()),
                owner.value(),
                Value::Text(encoded),
            ]),
        )?;
        txn.commit().map_err(|e| match e {
            StorageError::UniqueViolation { .. } => TextError::NameTaken(name.to_owned()),
            other => other.into(),
        })?;
        Ok(FolderId(rid.0))
    }

    pub fn delete_folder(&self, id: FolderId) -> Result<()> {
        let mut txn = self.tdb.database().begin();
        txn.delete(self.table, tendax_storage::RowId(id.0))?;
        txn.commit()?;
        Ok(())
    }

    /// All stored folders.
    pub fn folders(&self) -> Result<Vec<Folder>> {
        let txn = self.tdb.database().begin();
        let mut out = Vec::new();
        for (rid, row) in txn.scan(self.table, &Predicate::True)? {
            let rule_text = row.get(2).and_then(|v| v.as_text()).unwrap_or("");
            let rule = FolderRule::from_json(rule_text)
                .map_err(|e| TextError::ChainCorrupt(format!("bad stored rule: {e}")))?;
            out.push(Folder {
                id: FolderId(rid.0),
                name: row
                    .get(0)
                    .and_then(|v| v.as_text())
                    .unwrap_or_default()
                    .to_owned(),
                owner: row.get(1).map(UserId::from_value).unwrap_or(UserId::NONE),
                rule,
            });
        }
        out.sort_by_key(|f| f.id);
        Ok(out)
    }

    pub fn folder_by_name(&self, name: &str) -> Result<Folder> {
        self.folders()?
            .into_iter()
            .find(|f| f.name == name)
            .ok_or_else(|| TextError::UnknownDocument(format!("folder {name}")))
    }

    /// Evaluate a folder's current contents, sorted by document id.
    pub fn evaluate(&self, folder: FolderId) -> Result<Vec<DocId>> {
        let f = self
            .folders()?
            .into_iter()
            .find(|f| f.id == folder)
            .ok_or_else(|| TextError::UnknownDocument(format!("folder {folder:?}")))?;
        self.evaluate_rule(&f.rule)
    }

    /// Evaluate an ad-hoc rule against the live metadata.
    pub fn evaluate_rule(&self, rule: &FolderRule) -> Result<Vec<DocId>> {
        let docs = self.tdb.list_documents()?;
        let mut out = Vec::new();
        for d in docs {
            if self.matches(rule, d.id)? {
                out.push(d.id);
            }
        }
        out.sort();
        Ok(out)
    }

    fn matches(&self, rule: &FolderRule, doc: DocId) -> Result<bool> {
        Ok(match rule {
            FolderRule::ReadBy { user, since } => self
                .tdb
                .docs_read_by(UserId(*user), *since)?
                .iter()
                .any(|(d, _)| *d == doc),
            FolderRule::AuthoredBy { user } => {
                self.tdb.doc_stats(doc)?.authors.contains(&UserId(*user))
            }
            FolderRule::CreatedBy { user } => self.tdb.document_info(doc)?.creator == UserId(*user),
            FolderRule::StateIs(s) => self.tdb.document_info(doc)?.state == *s,
            FolderRule::NameContains(s) => self.tdb.document_info(doc)?.name.contains(s.as_str()),
            FolderRule::ContentContains(s) => {
                let info = self.tdb.document_info(doc)?;
                let handle = self.tdb.open(doc, info.creator)?;
                handle.text().contains(s.as_str())
            }
            FolderRule::PastedFrom { doc: src } => {
                let t = self.tdb.tables();
                let txn = self.tdb.database().begin();
                txn.index_lookup(t.paste_events, "paste_events_by_src", &[Value::Id(*src)])?
                    .into_iter()
                    .any(|(_, row)| row.get(0).map(DocId::from_value) == Some(doc))
            }
            FolderRule::EditedSince(since) => {
                let t = self.tdb.tables();
                let txn = self.tdb.database().begin();
                txn.index_lookup(t.oplog, "oplog_by_doc", &[doc.value()])?
                    .into_iter()
                    .any(|(_, row)| {
                        row.get(2).and_then(|v| v.as_timestamp()).unwrap_or(0) >= *since
                    })
            }
            FolderRule::MinSize(n) => self.tdb.doc_stats(doc)?.size >= *n,
            FolderRule::HasOpenTasks => {
                // Resolved by table name so the folder engine needs no
                // compile-time dependency on the process crate.
                let Ok(tasks) = self.tdb.database().table_id("tasks") else {
                    return Ok(false);
                };
                let txn = self.tdb.database().begin();
                !txn.scan(
                    tasks,
                    &Predicate::Eq("doc".into(), doc.value())
                        .and(Predicate::Eq("state".into(), Value::Text("pending".into()))),
                )?
                .is_empty()
            }
            FolderRule::All(rules) => {
                for r in rules {
                    if !self.matches(r, doc)? {
                        return Ok(false);
                    }
                }
                true
            }
            FolderRule::Any(rules) => {
                for r in rules {
                    if self.matches(r, doc)? {
                        return Ok(true);
                    }
                }
                false
            }
            FolderRule::Not(r) => !self.matches(r, doc)?,
        })
    }

    /// A live view of one folder that reports deltas on refresh.
    pub fn watch(&self, folder: FolderId) -> Result<FolderSet> {
        let contents = self.evaluate(folder)?;
        Ok(FolderSet {
            engine: self.clone(),
            folder,
            contents,
        })
    }
}

/// A folder's cached contents plus delta computation — the "fluent"
/// behaviour of the demo ("may change within seconds").
#[derive(Debug)]
pub struct FolderSet {
    engine: DynamicFolders,
    folder: FolderId,
    contents: Vec<DocId>,
}

impl FolderSet {
    pub fn contents(&self) -> &[DocId] {
        &self.contents
    }

    /// Re-evaluate; returns the membership changes since last time.
    pub fn refresh(&mut self) -> Result<Vec<FolderChange>> {
        let fresh = self.engine.evaluate(self.folder)?;
        let mut changes = Vec::new();
        for d in &fresh {
            if !self.contents.contains(d) {
                changes.push(FolderChange::Added(*d));
            }
        }
        for d in &self.contents {
            if !fresh.contains(d) {
                changes.push(FolderChange::Removed(*d));
            }
        }
        self.contents = fresh;
        Ok(changes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TextDb, DynamicFolders, UserId, UserId) {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let folders = DynamicFolders::init(tdb.clone()).unwrap();
        (tdb, folders, alice, bob)
    }

    #[test]
    fn read_by_folder_tracks_reads() {
        let (tdb, folders, alice, bob) = setup();
        let d1 = tdb.create_document("a", alice).unwrap();
        let d2 = tdb.create_document("b", alice).unwrap();
        let f = folders
            .create_folder(
                "bob-read-recently",
                bob,
                FolderRule::ReadBy {
                    user: bob.0,
                    since: 0,
                },
            )
            .unwrap();
        assert!(folders.evaluate(f).unwrap().is_empty());
        let _h = tdb.open(d1, bob).unwrap();
        assert_eq!(folders.evaluate(f).unwrap(), vec![d1]);
        let _h = tdb.open(d2, bob).unwrap();
        assert_eq!(folders.evaluate(f).unwrap(), vec![d1, d2]);
    }

    #[test]
    fn folder_set_reports_deltas() {
        let (tdb, folders, alice, _bob) = setup();
        let d1 = tdb.create_document("draft-1", alice).unwrap();
        let f = folders
            .create_folder("drafts", alice, FolderRule::StateIs("draft".into()))
            .unwrap();
        let mut set = folders.watch(f).unwrap();
        assert_eq!(set.contents(), &[d1]);

        let d2 = tdb.create_document("draft-2", alice).unwrap();
        tdb.set_document_state(d1, "final", alice).unwrap();
        let mut changes = set.refresh().unwrap();
        changes.sort_by_key(|c| match c {
            FolderChange::Added(d) => (0, d.0),
            FolderChange::Removed(d) => (1, d.0),
        });
        assert_eq!(
            changes,
            vec![FolderChange::Added(d2), FolderChange::Removed(d1)]
        );
        assert_eq!(set.refresh().unwrap(), vec![]);
    }

    #[test]
    fn authored_by_and_content_rules() {
        let (tdb, folders, alice, bob) = setup();
        let d1 = tdb.create_document("a", alice).unwrap();
        let d2 = tdb.create_document("b", alice).unwrap();
        let mut h = tdb.open(d1, bob).unwrap();
        h.insert_text(0, "bob wrote this secret word").unwrap();
        let mut h2 = tdb.open(d2, alice).unwrap();
        h2.insert_text(0, "alice only").unwrap();

        assert_eq!(
            folders
                .evaluate_rule(&FolderRule::AuthoredBy { user: bob.0 })
                .unwrap(),
            vec![d1]
        );
        assert_eq!(
            folders
                .evaluate_rule(&FolderRule::ContentContains("secret".into()))
                .unwrap(),
            vec![d1]
        );
        assert_eq!(
            folders
                .evaluate_rule(&FolderRule::NameContains("b".into()))
                .unwrap(),
            vec![d2]
        );
    }

    #[test]
    fn combinators() {
        let (tdb, folders, alice, bob) = setup();
        let d1 = tdb.create_document("x1", alice).unwrap();
        let _d2 = tdb.create_document("x2", bob).unwrap();
        let rule = FolderRule::CreatedBy { user: alice.0 }.and(FolderRule::StateIs("draft".into()));
        assert_eq!(folders.evaluate_rule(&rule).unwrap(), vec![d1]);
        let none = FolderRule::CreatedBy { user: alice.0 }.and(FolderRule::Not(Box::new(
            FolderRule::StateIs("draft".into()),
        )));
        assert!(folders.evaluate_rule(&none).unwrap().is_empty());
        let either =
            FolderRule::CreatedBy { user: alice.0 }.or(FolderRule::CreatedBy { user: bob.0 });
        assert_eq!(folders.evaluate_rule(&either).unwrap().len(), 2);
    }

    #[test]
    fn pasted_from_rule() {
        let (tdb, folders, alice, _bob) = setup();
        let src = tdb.create_document("src", alice).unwrap();
        let dst = tdb.create_document("dst", alice).unwrap();
        let _other = tdb.create_document("other", alice).unwrap();
        let mut hs = tdb.open(src, alice).unwrap();
        hs.insert_text(0, "reusable text").unwrap();
        let clip = hs.copy(0, 8).unwrap();
        let mut hd = tdb.open(dst, alice).unwrap();
        hd.paste(0, &clip).unwrap();
        assert_eq!(
            folders
                .evaluate_rule(&FolderRule::PastedFrom { doc: src.0 })
                .unwrap(),
            vec![dst]
        );
    }

    #[test]
    fn has_open_tasks_without_process_schema_matches_nothing() {
        let (tdb, folders, alice, _bob) = setup();
        tdb.create_document("a", alice).unwrap();
        assert!(folders
            .evaluate_rule(&FolderRule::HasOpenTasks)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn folder_definitions_persist() {
        let (_tdb, folders, alice, _bob) = setup();
        folders
            .create_folder("mine", alice, FolderRule::CreatedBy { user: alice.0 })
            .unwrap();
        let all = folders.folders().unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].name, "mine");
        assert_eq!(all[0].rule, FolderRule::CreatedBy { user: alice.0 });
        let by_name = folders.folder_by_name("mine").unwrap();
        assert_eq!(by_name.id, all[0].id);
        assert!(matches!(
            folders.create_folder("mine", alice, FolderRule::MinSize(1)),
            Err(TextError::NameTaken(_))
        ));
        folders.delete_folder(all[0].id).unwrap();
        assert!(folders.folders().unwrap().is_empty());
    }

    #[test]
    fn edited_since_and_min_size() {
        let (tdb, folders, alice, _bob) = setup();
        let d1 = tdb.create_document("a", alice).unwrap();
        let _d2 = tdb.create_document("b", alice).unwrap();
        let cutoff = tdb.now();
        let mut h = tdb.open(d1, alice).unwrap();
        h.insert_text(0, "12345").unwrap();
        assert_eq!(
            folders
                .evaluate_rule(&FolderRule::EditedSince(cutoff))
                .unwrap(),
            vec![d1]
        );
        assert_eq!(
            folders.evaluate_rule(&FolderRule::MinSize(5)).unwrap(),
            vec![d1]
        );
        assert!(folders
            .evaluate_rule(&FolderRule::MinSize(6))
            .unwrap()
            .is_empty());
    }
}
