//! Minimal JSON support for metadata persistence and export artifacts.
//!
//! Replaces the former `serde_json` dependency with a small hand-rolled
//! writer/parser. The [`FolderRule`](crate::folders::FolderRule) codec
//! keeps serde's externally-tagged enum layout (`{"Variant": {...}}`,
//! bare string for unit variants) so rules stored by earlier builds keep
//! decoding.

use std::fmt::Write as _;

/// A parsed JSON value. Numbers keep their raw token so integer widths
/// round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The `(tag, payload)` of a single-field object — serde's
    /// externally-tagged enum shape.
    pub fn as_tagged(&self) -> Option<(&str, &Json)> {
        match self {
            Json::Obj(fields) if fields.len() == 1 => Some((fields[0].0.as_str(), &fields[0].1)),
            _ => None,
        }
    }
}

/// Append `s` as a JSON string literal (quoted, escaped).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format an `f64` so it parses back as a JSON number (never NaN/inf —
/// those become 0, matching what a JSON export can represent).
pub fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push('0');
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    // `{}` prints integral floats without a dot; keep them number-typed
    // but float-shaped, like serde_json does for f64 fields.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

/// Parse a complete JSON document (trailing garbage is an error).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found `{:?}`",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf8 in number".to_string())?;
        raw.parse::<f64>()
            .map_err(|_| format!("bad number `{raw}` at byte {start}"))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-scan the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let mut code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pair?
                            if (0xD800..0xDC00).contains(&code)
                                && self.bytes.get(self.pos + 1) == Some(&b'\\')
                                && self.bytes.get(self.pos + 2) == Some(&b'u')
                            {
                                if let Some(hex2) = self.bytes.get(self.pos + 3..self.pos + 7) {
                                    let hex2 =
                                        std::str::from_utf8(hex2).map_err(|_| "bad \\u escape")?;
                                    let low = u32::from_str_radix(hex2, 16)
                                        .map_err(|_| "bad \\u escape")?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                        self.pos += 6;
                                    }
                                }
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, -2.5, "x\ny"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\ny")
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote\" slash\\ newline\n tab\t unicode\u{1F600}control\u{1}";
        let mut encoded = String::new();
        write_str(&mut encoded, original);
        let parsed = parse(&encoded).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        let parsed = parse(r#""😀""#).unwrap();
        assert_eq!(parsed.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn numbers_keep_integer_precision() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let neg = parse("-9223372036854775808").unwrap();
        assert_eq!(neg.as_i64(), Some(i64::MIN));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a"}"#).is_err());
    }

    #[test]
    fn f64_formatting_is_reparsable() {
        for v in [0.0, -1.5, 3.0, 1e300, f64::NAN] {
            let mut s = String::new();
            write_f64(&mut s, v);
            let back = parse(&s).unwrap();
            let expect = if v.is_finite() { v } else { 0.0 };
            assert_eq!(
                back.as_i64()
                    .map(|i| i as f64)
                    .unwrap_or_else(|| s.parse().unwrap()),
                expect
            );
        }
    }
}
