//! Metadata-based search and ranking.
//!
//! "Documents and parts of documents can either be found based on the
//! document content, or structure, or document creation process meta
//! data. The search result can be ranked according to different ranking
//! options, e.g. 'most cited', 'newest' etc."
//!
//! Content search runs over an inverted index built from the visible
//! text; metadata and structure filters run against the live tables;
//! rankers order by tf-idf relevance, recency, citation count (incoming
//! paste edges — the database analogue of "most cited") or read count.

use std::collections::{BTreeMap, HashMap};

use tendax_text::{DocId, Result, TextDb, UserId};

/// Lowercased alphanumeric tokens of a text.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .collect()
}

/// The inverted index over document contents.
#[derive(Debug, Default, Clone)]
pub struct InvertedIndex {
    /// term → (doc → term frequency)
    postings: HashMap<String, BTreeMap<DocId, usize>>,
    /// doc → token count
    doc_len: BTreeMap<DocId, usize>,
    /// doc → its distinct terms (for incremental removal)
    doc_terms: BTreeMap<DocId, Vec<String>>,
}

impl InvertedIndex {
    pub fn add_document(&mut self, doc: DocId, text: &str) {
        self.remove_document(doc);
        let tokens = tokenize(text);
        self.doc_len.insert(doc, tokens.len());
        for tok in &tokens {
            *self
                .postings
                .entry(tok.clone())
                .or_default()
                .entry(doc)
                .or_insert(0) += 1;
        }
        let mut distinct = tokens;
        distinct.sort();
        distinct.dedup();
        self.doc_terms.insert(doc, distinct);
    }

    /// Drop one document from the index (incremental maintenance).
    pub fn remove_document(&mut self, doc: DocId) {
        let Some(terms) = self.doc_terms.remove(&doc) else {
            return;
        };
        self.doc_len.remove(&doc);
        for t in terms {
            if let Some(per_doc) = self.postings.get_mut(&t) {
                per_doc.remove(&doc);
                if per_doc.is_empty() {
                    self.postings.remove(&t);
                }
            }
        }
    }

    pub fn doc_count(&self) -> usize {
        self.doc_len.len()
    }

    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// Documents containing `term`, with frequencies.
    pub fn lookup(&self, term: &str) -> Option<&BTreeMap<DocId, usize>> {
        self.postings.get(&term.to_lowercase())
    }

    /// tf-idf weight of `term` in `doc`.
    pub fn tf_idf(&self, term: &str, doc: DocId) -> f64 {
        let Some(per_doc) = self.lookup(term) else {
            return 0.0;
        };
        let Some(&tf) = per_doc.get(&doc) else {
            return 0.0;
        };
        let n = self.doc_count() as f64;
        let df = per_doc.len() as f64;
        let len = *self.doc_len.get(&doc).unwrap_or(&1) as f64;
        // Smoothed idf (+1) so a term present in every document still
        // contributes its term frequency instead of scoring exactly zero.
        (tf as f64 / len.max(1.0)) * (((1.0 + n) / (1.0 + df)).ln() + 1.0)
    }
}

/// Metadata filters (creation-process metadata, per the paper).
#[derive(Debug, Clone, PartialEq)]
pub enum SearchFilter {
    /// At least one character authored by this user.
    Author(UserId),
    /// Document created by this user.
    Creator(UserId),
    /// Read at least once by this user.
    ReadBy(UserId),
    /// Workflow state.
    State(String),
    /// Created at or after the timestamp.
    CreatedAfter(i64),
    /// Contains a structure element of this kind (`heading1`, …).
    HasStructure(String),
}

/// Ranking options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankBy {
    /// tf-idf relevance of the query terms.
    Relevance,
    /// Most recently created first.
    Newest,
    /// Most incoming paste events ("most cited").
    MostCited,
    /// Most read events.
    MostRead,
}

/// How multiple content terms combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermMode {
    /// Every term must appear (conjunctive).
    All,
    /// Any term suffices (disjunctive).
    Any,
}

/// A search request.
#[derive(Debug, Clone)]
pub struct SearchQuery {
    /// Content terms. Empty = metadata-only search.
    pub terms: Vec<String>,
    /// AND vs OR combination of `terms`.
    pub mode: TermMode,
    /// Exact phrase that must occur in the visible text.
    pub phrase: Option<String>,
    pub filters: Vec<SearchFilter>,
    pub rank: RankBy,
    pub limit: usize,
}

impl SearchQuery {
    /// Conjunctive term query (every word must appear).
    pub fn terms(query: &str) -> Self {
        SearchQuery {
            terms: tokenize(query),
            mode: TermMode::All,
            phrase: None,
            filters: Vec::new(),
            rank: RankBy::Relevance,
            limit: 20,
        }
    }

    /// Disjunctive term query (any word suffices).
    pub fn any_terms(query: &str) -> Self {
        let mut q = Self::terms(query);
        q.mode = TermMode::Any;
        q
    }

    /// Exact-phrase query ("parts of documents can … be found based on
    /// the document content").
    pub fn phrase(phrase: &str) -> Self {
        let mut q = Self::terms(phrase);
        q.phrase = Some(phrase.to_owned());
        q
    }

    pub fn filter(mut self, f: SearchFilter) -> Self {
        self.filters.push(f);
        self
    }

    pub fn rank_by(mut self, r: RankBy) -> Self {
        self.rank = r;
        self
    }

    pub fn limit(mut self, n: usize) -> Self {
        self.limit = n;
        self
    }
}

/// One result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    pub doc: DocId,
    pub name: String,
    pub score: f64,
}

/// The search engine: index + metadata access.
#[derive(Debug, Clone)]
pub struct SearchEngine {
    tdb: TextDb,
    index: InvertedIndex,
}

impl SearchEngine {
    /// Build the content index over every document (reads as each
    /// document's creator, who always has read rights).
    pub fn build(tdb: &TextDb) -> Result<SearchEngine> {
        let mut index = InvertedIndex::default();
        for info in tdb.list_documents()? {
            let handle = tdb.open(info.id, info.creator)?;
            index.add_document(info.id, &handle.text());
        }
        Ok(SearchEngine {
            tdb: tdb.clone(),
            index,
        })
    }

    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Re-index one document in place after it changed — the incremental
    /// path an editor calls on save instead of rebuilding the corpus.
    pub fn update_document(&mut self, doc: DocId) -> Result<()> {
        let info = self.tdb.document_info(doc)?;
        let handle = self.tdb.open(doc, info.creator)?;
        self.index.add_document(doc, &handle.text());
        Ok(())
    }

    /// Drop a document from the index.
    pub fn remove_document(&mut self, doc: DocId) {
        self.index.remove_document(doc);
    }

    /// Run a query.
    pub fn search(&self, query: &SearchQuery) -> Result<Vec<SearchHit>> {
        // Candidate set from content terms, or all documents.
        let mut candidates: Vec<DocId> = if query.terms.is_empty() {
            self.tdb
                .list_documents()?
                .into_iter()
                .map(|d| d.id)
                .collect()
        } else {
            match query.mode {
                TermMode::All => {
                    let mut sets: Vec<&BTreeMap<DocId, usize>> = Vec::new();
                    for t in &query.terms {
                        match self.index.lookup(t) {
                            Some(s) => sets.push(s),
                            None => return Ok(Vec::new()),
                        }
                    }
                    sets.sort_by_key(|s| s.len());
                    sets[0]
                        .keys()
                        .filter(|d| sets[1..].iter().all(|s| s.contains_key(d)))
                        .copied()
                        .collect()
                }
                TermMode::Any => {
                    let mut union: std::collections::BTreeSet<DocId> =
                        std::collections::BTreeSet::new();
                    for t in &query.terms {
                        if let Some(s) = self.index.lookup(t) {
                            union.extend(s.keys().copied());
                        }
                    }
                    union.into_iter().collect()
                }
            }
        };

        // Exact phrase verification against the visible text.
        if let Some(phrase) = &query.phrase {
            let needle = phrase.to_lowercase();
            let mut kept = Vec::with_capacity(candidates.len());
            for d in candidates {
                let info = self.tdb.document_info(d)?;
                let text = self.tdb.open(d, info.creator)?.text().to_lowercase();
                if text.contains(&needle) {
                    kept.push(d);
                }
            }
            candidates = kept;
        }

        // Metadata filters.
        for f in &query.filters {
            let mut kept = Vec::with_capacity(candidates.len());
            for d in candidates {
                if self.filter_matches(f, d)? {
                    kept.push(d);
                }
            }
            candidates = kept;
        }

        // Rank.
        let mut hits = Vec::with_capacity(candidates.len());
        for d in candidates {
            let score = self.score(query, d)?;
            let name = self.tdb.document_info(d)?.name;
            hits.push(SearchHit {
                doc: d,
                name,
                score,
            });
        }
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.doc.cmp(&b.doc)));
        hits.truncate(query.limit);
        Ok(hits)
    }

    fn filter_matches(&self, f: &SearchFilter, doc: DocId) -> Result<bool> {
        Ok(match f {
            SearchFilter::Author(u) => self.tdb.doc_stats(doc)?.authors.contains(u),
            SearchFilter::Creator(u) => self.tdb.document_info(doc)?.creator == *u,
            SearchFilter::ReadBy(u) => self.tdb.doc_stats(doc)?.readers.contains(u),
            SearchFilter::State(s) => self.tdb.document_info(doc)?.state == *s,
            SearchFilter::CreatedAfter(ts) => self.tdb.document_info(doc)?.created_at >= *ts,
            SearchFilter::HasStructure(kind) => {
                let t = self.tdb.tables();
                let txn = self.tdb.database().begin();
                txn.index_lookup(t.structure, "structure_by_doc", &[doc.value()])?
                    .iter()
                    .any(|(_, row)| {
                        row.get(1).and_then(|v| v.as_text()) == Some(kind)
                            && !row.get(6).and_then(|v| v.as_bool()).unwrap_or(false)
                    })
            }
        })
    }

    fn score(&self, query: &SearchQuery, doc: DocId) -> Result<f64> {
        Ok(match query.rank {
            RankBy::Relevance => query.terms.iter().map(|t| self.index.tf_idf(t, doc)).sum(),
            RankBy::Newest => self.tdb.document_info(doc)?.created_at as f64,
            RankBy::MostCited => {
                let t = self.tdb.tables();
                let txn = self.tdb.database().begin();
                txn.index_lookup(t.paste_events, "paste_events_by_src", &[doc.value()])?
                    .len() as f64
            }
            RankBy::MostRead => self.tdb.read_count(doc)? as f64,
        })
    }

    /// Run a query and attach a context snippet (around the first query
    /// term that occurs) to every hit.
    pub fn search_with_snippets(
        &self,
        query: &SearchQuery,
        context: usize,
    ) -> Result<Vec<(SearchHit, Option<String>)>> {
        let hits = self.search(query)?;
        let mut out = Vec::with_capacity(hits.len());
        for hit in hits {
            let mut snippet = None;
            if let Some(phrase) = &query.phrase {
                snippet = self.snippet(hit.doc, phrase, context)?;
            } else {
                for t in &query.terms {
                    if let Some(s) = self.snippet(hit.doc, t, context)? {
                        snippet = Some(s);
                        break;
                    }
                }
            }
            out.push((hit, snippet));
        }
        Ok(out)
    }

    /// A text snippet around the first occurrence of `term` in `doc`.
    pub fn snippet(&self, doc: DocId, term: &str, context: usize) -> Result<Option<String>> {
        let info = self.tdb.document_info(doc)?;
        let handle = self.tdb.open(doc, info.creator)?;
        let text = handle.text();
        let lower = text.to_lowercase();
        let Some(byte) = lower.find(&term.to_lowercase()) else {
            return Ok(None);
        };
        let chars: Vec<char> = text.chars().collect();
        let char_pos = text[..byte].chars().count();
        let start = char_pos.saturating_sub(context);
        let end = (char_pos + term.chars().count() + context).min(chars.len());
        Ok(Some(chars[start..end].iter().collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> (TextDb, UserId, UserId, DocId, DocId, DocId) {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let d1 = tdb.create_document("report-q1", alice).unwrap();
        let d2 = tdb.create_document("report-q2", alice).unwrap();
        let d3 = tdb.create_document("notes", bob).unwrap();
        let mut h = tdb.open(d1, alice).unwrap();
        h.insert_text(0, "quarterly revenue grew across all regions")
            .unwrap();
        let mut h = tdb.open(d2, alice).unwrap();
        h.insert_text(0, "revenue flat but costs down this quarter")
            .unwrap();
        let mut h = tdb.open(d3, bob).unwrap();
        h.insert_text(0, "meeting notes about the revenue report")
            .unwrap();
        (tdb, alice, bob, d1, d2, d3)
    }

    #[test]
    fn tokenizer_normalizes() {
        assert_eq!(tokenize("Hello, World! x2"), vec!["hello", "world", "x2"]);
        assert!(tokenize("...").is_empty());
    }

    #[test]
    fn term_search_with_and_semantics() {
        let (tdb, ..) = corpus();
        let engine = SearchEngine::build(&tdb).unwrap();
        let hits = engine.search(&SearchQuery::terms("revenue")).unwrap();
        assert_eq!(hits.len(), 3);
        let hits = engine.search(&SearchQuery::terms("revenue grew")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "report-q1");
        let hits = engine.search(&SearchQuery::terms("nonexistent")).unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn relevance_prefers_rarer_denser_terms() {
        let (tdb, ..) = corpus();
        let engine = SearchEngine::build(&tdb).unwrap();
        let hits = engine.search(&SearchQuery::terms("quarterly")).unwrap();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].score > 0.0);
    }

    #[test]
    fn metadata_filters() {
        let (tdb, alice, bob, d1, _d2, d3) = corpus();
        let engine = SearchEngine::build(&tdb).unwrap();
        // Creator filter.
        let hits = engine
            .search(&SearchQuery::terms("").filter(SearchFilter::Creator(bob)))
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, d3);
        // Author filter (alice authored d1 and d2 contents).
        let hits = engine
            .search(&SearchQuery::terms("revenue").filter(SearchFilter::Author(alice)))
            .unwrap();
        assert_eq!(hits.len(), 2);
        // State filter.
        tdb.set_document_state(d1, "final", alice).unwrap();
        let hits = engine
            .search(&SearchQuery::terms("").filter(SearchFilter::State("final".into())))
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, d1);
    }

    #[test]
    fn structure_filter() {
        let (tdb, alice, _bob, d1, ..) = corpus();
        let mut h = tdb.open(d1, alice).unwrap();
        h.set_structure(0, 9, "heading1").unwrap();
        let engine = SearchEngine::build(&tdb).unwrap();
        let hits = engine
            .search(&SearchQuery::terms("").filter(SearchFilter::HasStructure("heading1".into())))
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, d1);
    }

    #[test]
    fn most_cited_ranking_counts_paste_edges() {
        let (tdb, alice, _bob, d1, d2, d3) = corpus();
        // d1 gets cited (pasted from) twice, d2 once.
        let h1 = tdb.open(d1, alice).unwrap();
        let clip = h1.copy(0, 5).unwrap();
        let mut h3 = tdb.open(d3, alice).unwrap();
        h3.paste(0, &clip).unwrap();
        h3.paste(0, &clip).unwrap();
        let h2 = tdb.open(d2, alice).unwrap();
        let clip2 = h2.copy(0, 5).unwrap();
        h3.paste(0, &clip2).unwrap();

        let engine = SearchEngine::build(&tdb).unwrap();
        let hits = engine
            .search(&SearchQuery::terms("").rank_by(RankBy::MostCited))
            .unwrap();
        assert_eq!(hits[0].doc, d1);
        assert_eq!(hits[0].score, 2.0);
        assert_eq!(hits[1].doc, d2);
        assert_eq!(hits[2].score, 0.0);
    }

    #[test]
    fn newest_and_most_read_rankings() {
        let (tdb, alice, bob, d1, _d2, d3) = corpus();
        let engine = SearchEngine::build(&tdb).unwrap();
        let hits = engine
            .search(&SearchQuery::terms("").rank_by(RankBy::Newest))
            .unwrap();
        assert_eq!(hits[0].doc, d3); // created last
                                     // d1 read twice more.
        let _ = tdb.open(d1, bob).unwrap();
        let _ = tdb.open(d1, alice).unwrap();
        let hits = engine
            .search(&SearchQuery::terms("").rank_by(RankBy::MostRead))
            .unwrap();
        assert_eq!(hits[0].doc, d1);
    }

    #[test]
    fn any_terms_is_disjunctive() {
        let (tdb, ..) = corpus();
        let engine = SearchEngine::build(&tdb).unwrap();
        // "quarterly" hits d1 only; "meeting" hits d3 only.
        let hits = engine
            .search(&SearchQuery::any_terms("quarterly meeting"))
            .unwrap();
        assert_eq!(hits.len(), 2);
        // AND over the same terms matches nothing.
        let hits = engine
            .search(&SearchQuery::terms("quarterly meeting"))
            .unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn phrase_search_requires_adjacency() {
        let (tdb, ..) = corpus();
        let engine = SearchEngine::build(&tdb).unwrap();
        let hits = engine.search(&SearchQuery::phrase("revenue grew")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "report-q1");
        // Both words occur in d2 ("revenue flat… this quarter") but not
        // adjacently — the phrase filter rejects it.
        let hits = engine
            .search(&SearchQuery::phrase("revenue quarter"))
            .unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn snippets_attached_to_hits() {
        let (tdb, ..) = corpus();
        let engine = SearchEngine::build(&tdb).unwrap();
        let hits = engine
            .search_with_snippets(&SearchQuery::terms("revenue"), 8)
            .unwrap();
        assert_eq!(hits.len(), 3);
        for (_, snippet) in &hits {
            assert!(snippet.as_deref().unwrap().contains("revenue"));
        }
    }

    #[test]
    fn limit_truncates() {
        let (tdb, ..) = corpus();
        let engine = SearchEngine::build(&tdb).unwrap();
        let hits = engine.search(&SearchQuery::terms("").limit(2)).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn incremental_index_update() {
        let (tdb, alice, _bob, d1, ..) = corpus();
        let mut engine = SearchEngine::build(&tdb).unwrap();
        assert!(engine
            .search(&SearchQuery::terms("zeppelin"))
            .unwrap()
            .is_empty());
        // Edit d1 and re-index just that document.
        let mut h = tdb.open(d1, alice).unwrap();
        h.insert_text(0, "zeppelin ").unwrap();
        engine.update_document(d1).unwrap();
        let hits = engine.search(&SearchQuery::terms("zeppelin")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, d1);
        // Old terms from d1 are still findable exactly once.
        let hits = engine.search(&SearchQuery::terms("quarterly")).unwrap();
        assert_eq!(hits.len(), 1);
        // Removal drops the document entirely.
        engine.remove_document(d1);
        assert!(engine
            .search(&SearchQuery::terms("zeppelin"))
            .unwrap()
            .is_empty());
        assert_eq!(engine.index().doc_count(), 2);
    }

    #[test]
    fn reindexing_is_idempotent() {
        let (tdb, _alice, _bob, d1, ..) = corpus();
        let mut engine = SearchEngine::build(&tdb).unwrap();
        let before = engine.index().term_count();
        engine.update_document(d1).unwrap();
        engine.update_document(d1).unwrap();
        assert_eq!(engine.index().term_count(), before);
        assert_eq!(engine.index().doc_count(), 3);
        let hits = engine.search(&SearchQuery::terms("quarterly")).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn snippet_extraction() {
        let (tdb, _alice, _bob, d1, ..) = corpus();
        let engine = SearchEngine::build(&tdb).unwrap();
        let snip = engine.snippet(d1, "revenue", 5).unwrap().unwrap();
        assert!(snip.contains("revenue"));
        assert!(snip.len() <= "revenue".len() + 10);
        assert!(engine.snippet(d1, "zzz", 5).unwrap().is_none());
    }
}
