//! # tendax-meta
//!
//! Metadata services of the TeNDaX reproduction — everything the demo
//! builds **on top of** automatically gathered creation-process metadata:
//!
//! * [`folders`] — dynamic folders: virtual folders defined by metadata
//!   predicates whose contents are "fluent and may change within seconds";
//! * [`lineage`] — data lineage: the copy-paste provenance graph and its
//!   renderings (Figure 1 of the paper);
//! * [`search`] — content/structure/metadata search with ranking options
//!   ("most cited", "newest", "most read", relevance);
//! * [`mining`] — visual mining (the 2-D document-space overview of
//!   Figure 2) and text mining (characteristic terms).

pub mod folders;
pub mod json;
pub mod lineage;
pub mod mining;
pub mod report;
pub mod search;

pub use folders::{DynamicFolders, Folder, FolderChange, FolderId, FolderRule, FolderSet};
pub use lineage::{char_provenance, LineageEdge, LineageGraph, LineageNode, ProvenanceHop};
pub use mining::{
    activity_timeline, collaboration_graph, collect_features, kmeans, normalize, pca_2d, top_terms,
    DocFeatures, DocumentSpace, SpacePoint, FEATURE_NAMES,
};
pub use report::{DocLine, WorkspaceReport};
pub use search::{
    tokenize, InvertedIndex, RankBy, SearchEngine, SearchFilter, SearchHit, SearchQuery, TermMode,
};
