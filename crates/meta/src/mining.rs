//! Visual and text mining (Figure 2 of the paper).
//!
//! "The information visualization plug-in provides a graphical overview
//! of all documents … It is possible to navigate the document and meta
//! data dimensions to gain an understanding of the entire document
//! space." Here the document space is a feature matrix over creation-
//! process metadata; a 2-component PCA (power iteration, no external
//! linear algebra) projects it to the plane, k-means groups it, and an
//! ASCII scatter plot stands in for the GUI canvas. Text mining surfaces
//! each document's characteristic terms by tf-idf.

use std::fmt::Write as _;

use tendax_text::{DocId, Result, TextDb};

use crate::json;
use crate::search::{tokenize, InvertedIndex};

/// Metadata dimensions of the document space, in feature-vector order.
pub const FEATURE_NAMES: [&str; 8] = [
    "size",
    "tuples",
    "authors",
    "readers",
    "ops",
    "copied_in",
    "external_in",
    "age",
];

/// One document's raw feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct DocFeatures {
    pub doc: u64,
    pub name: String,
    pub features: Vec<f64>,
}

/// Collect the feature matrix from the metadata tables.
pub fn collect_features(tdb: &TextDb) -> Result<Vec<DocFeatures>> {
    let now = tdb.now() as f64;
    let mut out = Vec::new();
    for info in tdb.list_documents()? {
        let s = tdb.doc_stats(info.id)?;
        out.push(DocFeatures {
            doc: info.id.0,
            name: info.name,
            features: vec![
                s.size as f64,
                s.tuples as f64,
                s.authors.len() as f64,
                s.readers.len() as f64,
                s.ops as f64,
                s.copied_in as f64,
                s.external_in as f64,
                now - info.created_at as f64,
            ],
        });
    }
    Ok(out)
}

/// Column-wise z-score normalization (constant columns become zero).
pub fn normalize(matrix: &mut [DocFeatures]) {
    if matrix.is_empty() {
        return;
    }
    let dims = matrix[0].features.len();
    let n = matrix.len() as f64;
    for d in 0..dims {
        let mean = matrix.iter().map(|r| r.features[d]).sum::<f64>() / n;
        let var = matrix
            .iter()
            .map(|r| (r.features[d] - mean).powi(2))
            .sum::<f64>()
            / n;
        let sd = var.sqrt();
        for r in matrix.iter_mut() {
            r.features[d] = if sd > 1e-12 {
                (r.features[d] - mean) / sd
            } else {
                0.0
            };
        }
    }
}

/// First two principal components via power iteration with deflation.
/// Returns one `(x, y)` per row. Deterministic (fixed start vector).
pub fn pca_2d(matrix: &[DocFeatures]) -> Vec<(f64, f64)> {
    let n = matrix.len();
    if n == 0 {
        return Vec::new();
    }
    let dims = matrix[0].features.len();
    // Covariance (rows already centered by normalize()).
    let mut cov = vec![vec![0.0f64; dims]; dims];
    for r in matrix {
        for (i, row) in cov.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell += r.features[i] * r.features[j];
            }
        }
    }
    for row in &mut cov {
        for v in row.iter_mut() {
            *v /= n as f64;
        }
    }

    let pc1 = power_iteration(&cov, 0);
    deflate(&mut cov, &pc1);
    let pc2 = power_iteration(&cov, 1);

    matrix
        .iter()
        .map(|r| {
            let x = dot(&r.features, &pc1);
            let y = dot(&r.features, &pc2);
            (x, y)
        })
        .collect()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn power_iteration(m: &[Vec<f64>], seed: usize) -> Vec<f64> {
    let dims = m.len();
    // Deterministic start: unit vector rotated by the seed.
    let mut v: Vec<f64> = (0..dims)
        .map(|i| {
            if (i + seed).is_multiple_of(2) {
                1.0
            } else {
                0.5
            }
        })
        .collect();
    for _ in 0..200 {
        let mut next = vec![0.0; dims];
        for i in 0..dims {
            next[i] = dot(&m[i], &v);
        }
        let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-12 {
            return vec![0.0; dims];
        }
        for x in &mut next {
            *x /= norm;
        }
        v = next;
    }
    v
}

fn deflate(m: &mut [Vec<f64>], v: &[f64]) {
    // lambda = v' M v
    let dims = m.len();
    let mut mv = vec![0.0; dims];
    for i in 0..dims {
        mv[i] = dot(&m[i], v);
    }
    let lambda = dot(v, &mv);
    for i in 0..dims {
        for j in 0..dims {
            m[i][j] -= lambda * v[i] * v[j];
        }
    }
}

/// Deterministic k-means over 2-D points. Returns a cluster id per point.
pub fn kmeans(points: &[(f64, f64)], k: usize, iterations: usize) -> Vec<usize> {
    let n = points.len();
    if n == 0 || k == 0 {
        return vec![0; n];
    }
    let k = k.min(n);
    // Deterministic init: evenly spaced points in x-order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| points[a].0.total_cmp(&points[b].0));
    let mut centers: Vec<(f64, f64)> = (0..k).map(|i| points[order[i * n / k]]).collect();
    let mut assign = vec![0usize; n];
    for _ in 0..iterations.max(1) {
        // Assign.
        for (i, p) in points.iter().enumerate() {
            assign[i] = (0..k)
                .min_by(|&a, &b| dist2(*p, centers[a]).total_cmp(&dist2(*p, centers[b])))
                .expect("k >= 1");
        }
        // Update.
        let mut sums = vec![(0.0, 0.0, 0usize); k];
        for (i, p) in points.iter().enumerate() {
            let s = &mut sums[assign[i]];
            s.0 += p.0;
            s.1 += p.1;
            s.2 += 1;
        }
        for (c, s) in centers.iter_mut().zip(&sums) {
            if s.2 > 0 {
                *c = (s.0 / s.2 as f64, s.1 / s.2 as f64);
            }
        }
    }
    assign
}

fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)
}

/// One document placed in the visual document space.
#[derive(Debug, Clone, PartialEq)]
pub struct SpacePoint {
    pub doc: u64,
    pub name: String,
    pub x: f64,
    pub y: f64,
    pub cluster: usize,
}

/// The 2-D document-space layout (Figure 2 analogue).
#[derive(Debug, Clone)]
pub struct DocumentSpace {
    pub points: Vec<SpacePoint>,
    pub clusters: usize,
}

impl DocumentSpace {
    /// Build the full pipeline: features → normalize → PCA → k-means.
    pub fn build(tdb: &TextDb, k: usize) -> Result<DocumentSpace> {
        let mut features = collect_features(tdb)?;
        normalize(&mut features);
        let coords = pca_2d(&features);
        let clusters = kmeans(&coords, k, 25);
        let points = features
            .into_iter()
            .zip(coords)
            .zip(&clusters)
            .map(|((f, (x, y)), &cluster)| SpacePoint {
                doc: f.doc,
                name: f.name,
                x,
                y,
                cluster,
            })
            .collect();
        Ok(DocumentSpace {
            points,
            clusters: k,
        })
    }

    /// ASCII scatter plot: each document is drawn as its cluster digit.
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        let mut out = String::from("Visual Mining — document space\n");
        if self.points.is_empty() {
            out.push_str("(no documents)\n");
            return out;
        }
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in &self.points {
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        let spread_x = (max_x - min_x).max(1e-9);
        let spread_y = (max_y - min_y).max(1e-9);
        let mut grid = vec![vec![' '; width]; height];
        for p in &self.points {
            let cx = (((p.x - min_x) / spread_x) * (width - 1) as f64).round() as usize;
            let cy = (((p.y - min_y) / spread_y) * (height - 1) as f64).round() as usize;
            let glyph = char::from_digit((p.cluster % 10) as u32, 10).unwrap_or('#');
            grid[height - 1 - cy][cx] = glyph;
        }
        out.push_str(&"-".repeat(width + 2));
        out.push('\n');
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push_str("|\n");
        }
        out.push_str(&"-".repeat(width + 2));
        out.push('\n');
        out
    }

    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {{\"doc\":{},\"name\":", p.doc);
            json::write_str(&mut out, &p.name);
            out.push_str(",\"x\":");
            json::write_f64(&mut out, p.x);
            out.push_str(",\"y\":");
            json::write_f64(&mut out, p.y);
            let _ = write!(out, ",\"cluster\":{}}}", p.cluster);
        }
        let _ = write!(out, "\n  ],\n  \"clusters\": {}\n}}", self.clusters);
        out
    }
}

/// Edit-activity timeline: logged operations per time bucket for one
/// document (another "document and meta data dimension" to navigate).
/// Returns `buckets` counts covering `[first_op_ts, last_op_ts]`.
pub fn activity_timeline(tdb: &TextDb, doc: DocId, buckets: usize) -> Result<Vec<usize>> {
    let t = tdb.tables();
    let txn = tdb.database().begin();
    let ts: Vec<i64> = txn
        .index_lookup(t.oplog, "oplog_by_doc", &[doc.value()])?
        .into_iter()
        .filter_map(|(_, row)| row.get(2).and_then(|v| v.as_timestamp()))
        .collect();
    let buckets = buckets.max(1);
    let mut out = vec![0usize; buckets];
    if ts.is_empty() {
        return Ok(out);
    }
    let lo = *ts.iter().min().expect("non-empty");
    let hi = *ts.iter().max().expect("non-empty");
    let span = (hi - lo).max(1) as f64;
    for t in ts {
        let frac = (t - lo) as f64 / span;
        let idx = ((frac * buckets as f64) as usize).min(buckets - 1);
        out[idx] += 1;
    }
    Ok(out)
}

/// Co-authorship graph: pairs of users who both authored characters in
/// at least one common document, with the number of shared documents.
/// Edges are ordered `(smaller id, larger id)` and sorted by weight.
pub fn collaboration_graph(
    tdb: &TextDb,
) -> Result<Vec<(tendax_text::UserId, tendax_text::UserId, usize)>> {
    use std::collections::BTreeMap;
    let mut weights: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    for info in tdb.list_documents()? {
        let authors = tdb.doc_stats(info.id)?.authors;
        for i in 0..authors.len() {
            for j in i + 1..authors.len() {
                let (a, b) = (
                    authors[i].0.min(authors[j].0),
                    authors[i].0.max(authors[j].0),
                );
                *weights.entry((a, b)).or_default() += 1;
            }
        }
    }
    let mut out: Vec<_> = weights
        .into_iter()
        .map(|((a, b), w)| (tendax_text::UserId(a), tendax_text::UserId(b), w))
        .collect();
    out.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)));
    Ok(out)
}

/// Text mining: the `k` most characteristic terms of a document by
/// tf-idf against the whole corpus.
pub fn top_terms(tdb: &TextDb, doc: DocId, k: usize) -> Result<Vec<(String, f64)>> {
    let mut index = InvertedIndex::default();
    let mut target_text = String::new();
    for info in tdb.list_documents()? {
        let handle = tdb.open(info.id, info.creator)?;
        let text = handle.text();
        if info.id == doc {
            target_text = text.clone();
        }
        index.add_document(info.id, &text);
    }
    let mut terms: Vec<String> = tokenize(&target_text);
    terms.sort();
    terms.dedup();
    let mut scored: Vec<(String, f64)> = terms
        .into_iter()
        .map(|t| {
            let w = index.tf_idf(&t, doc);
            (t, w)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    scored.truncate(k);
    Ok(scored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tendax_text::TextDb;

    fn feat(doc: u64, v: &[f64]) -> DocFeatures {
        DocFeatures {
            doc,
            name: format!("d{doc}"),
            features: v.to_vec(),
        }
    }

    #[test]
    fn normalize_centers_and_scales() {
        let mut m = vec![feat(1, &[1.0, 5.0]), feat(2, &[3.0, 5.0])];
        normalize(&mut m);
        assert!((m[0].features[0] + 1.0).abs() < 1e-9);
        assert!((m[1].features[0] - 1.0).abs() < 1e-9);
        // Constant column collapses to zero.
        assert_eq!(m[0].features[1], 0.0);
        assert_eq!(m[1].features[1], 0.0);
    }

    #[test]
    fn pca_separates_distinct_groups() {
        // Two tight groups far apart along a diagonal.
        let mut m = Vec::new();
        for i in 0..5u64 {
            m.push(feat(i, &[0.0 + i as f64 * 0.01, 0.0]));
        }
        for i in 0..5u64 {
            m.push(feat(100 + i, &[10.0 + i as f64 * 0.01, 10.0]));
        }
        normalize(&mut m);
        let coords = pca_2d(&m);
        // Group means along PC1 must be clearly separated.
        let g1: f64 = coords[..5].iter().map(|c| c.0).sum::<f64>() / 5.0;
        let g2: f64 = coords[5..].iter().map(|c| c.0).sum::<f64>() / 5.0;
        assert!((g1 - g2).abs() > 1.0, "groups not separated: {g1} vs {g2}");
    }

    #[test]
    fn kmeans_clusters_separated_groups() {
        let mut points = Vec::new();
        for i in 0..10 {
            points.push((i as f64 * 0.01, 0.0));
            points.push((100.0 + i as f64 * 0.01, 0.0));
        }
        let assign = kmeans(&points, 2, 20);
        // All members of each spatial group share one label, and the
        // two groups differ.
        let a = assign[0];
        let b = assign[1];
        assert_ne!(a, b);
        for i in (0..20).step_by(2) {
            assert_eq!(assign[i], a);
            assert_eq!(assign[i + 1], b);
        }
    }

    #[test]
    fn kmeans_edge_cases() {
        assert!(kmeans(&[], 3, 5).is_empty());
        assert_eq!(kmeans(&[(1.0, 1.0)], 5, 5), vec![0]);
        assert_eq!(kmeans(&[(1.0, 1.0), (2.0, 2.0)], 0, 5), vec![0, 0]);
    }

    fn corpus() -> TextDb {
        let tdb = TextDb::in_memory();
        let u = tdb.create_user("u").unwrap();
        for i in 0..6 {
            let d = tdb.create_document(&format!("doc{i}"), u).unwrap();
            let mut h = tdb.open(d, u).unwrap();
            if i < 3 {
                h.insert_text(0, "short note").unwrap();
            } else {
                h.insert_text(0, &"long report with much more content ".repeat(5))
                    .unwrap();
            }
        }
        tdb
    }

    #[test]
    fn document_space_builds_and_renders() {
        let tdb = corpus();
        let space = DocumentSpace::build(&tdb, 2).unwrap();
        assert_eq!(space.points.len(), 6);
        let ascii = space.render_ascii(40, 12);
        assert!(ascii.contains("Visual Mining"));
        // At least one cluster digit appears in the plot.
        assert!(ascii.chars().any(|c| c.is_ascii_digit()));
        // Short docs and long docs land in different clusters.
        let c_short = space.points[0].cluster;
        let c_long = space.points[5].cluster;
        assert_ne!(c_short, c_long);
        let json = space.to_json();
        assert!(json.contains("\"points\""));
    }

    #[test]
    fn empty_space_renders_placeholder() {
        let tdb = TextDb::in_memory();
        let space = DocumentSpace::build(&tdb, 3).unwrap();
        assert!(space.render_ascii(10, 5).contains("no documents"));
    }

    #[test]
    fn activity_timeline_buckets_ops() {
        let tdb = TextDb::in_memory();
        let u = tdb.create_user("u").unwrap();
        let d = tdb.create_document("doc", u).unwrap();
        let mut h = tdb.open(d, u).unwrap();
        // Early burst, then a late edit.
        for _ in 0..5 {
            h.insert_text(0, "x").unwrap();
        }
        for _ in 0..40 {
            tdb.now(); // advance the logical clock
        }
        h.insert_text(0, "y").unwrap();

        let timeline = activity_timeline(&tdb, d, 4).unwrap();
        assert_eq!(timeline.iter().sum::<usize>(), 6);
        assert_eq!(timeline[3], 1); // the late edit lands in the last bucket
        assert!(timeline[0] >= 4);
        // Empty document: all-zero buckets.
        let empty = tdb.create_document("empty", u).unwrap();
        assert_eq!(activity_timeline(&tdb, empty, 3).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn collaboration_graph_counts_shared_documents() {
        let tdb = TextDb::in_memory();
        let a = tdb.create_user("a").unwrap();
        let b = tdb.create_user("b").unwrap();
        let c = tdb.create_user("c").unwrap();
        for i in 0..2 {
            let d = tdb.create_document(&format!("ab{i}"), a).unwrap();
            let mut ha = tdb.open(d, a).unwrap();
            ha.insert_text(0, "from a ").unwrap();
            let mut hb = tdb.open(d, b).unwrap();
            hb.insert_text(0, "from b ").unwrap();
        }
        let d = tdb.create_document("bc", b).unwrap();
        let mut hb = tdb.open(d, b).unwrap();
        hb.insert_text(0, "b ").unwrap();
        let mut hc = tdb.open(d, c).unwrap();
        hc.insert_text(0, "c ").unwrap();

        let graph = collaboration_graph(&tdb).unwrap();
        assert_eq!(graph.len(), 2);
        assert_eq!(graph[0], (a, b, 2)); // strongest edge first
        assert_eq!(graph[1], (b, c, 1));
    }

    #[test]
    fn top_terms_finds_characteristic_words() {
        let tdb = TextDb::in_memory();
        let u = tdb.create_user("u").unwrap();
        let d1 = tdb.create_document("a", u).unwrap();
        let d2 = tdb.create_document("b", u).unwrap();
        let mut h = tdb.open(d1, u).unwrap();
        h.insert_text(0, "zebra zebra zebra common word").unwrap();
        let mut h = tdb.open(d2, u).unwrap();
        h.insert_text(0, "common word everywhere").unwrap();
        let terms = top_terms(&tdb, d1, 2).unwrap();
        assert_eq!(terms[0].0, "zebra");
        assert!(terms[0].1 > terms[1].1);
    }
}
