//! The workspace report: one view over all metadata services.
//!
//! "Documents should be seen as a valuable business asset which requires
//! an appropriate data management solution" — this module assembles the
//! management view: per-document statistics, the operation mix, the most
//! cited and most read documents, and per-user activity, all computed
//! with the engine's aggregation layer.

use std::fmt::Write as _;

use tendax_storage::{Aggregate, Predicate};
use tendax_text::{DocId, Result, TextDb, UserId};

use crate::json;

/// One document line in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct DocLine {
    pub doc: u64,
    pub name: String,
    pub state: String,
    pub size: usize,
    pub authors: usize,
    pub readers: usize,
    pub ops: usize,
    pub cited_by: usize,
}

/// The assembled workspace report.
#[derive(Debug, Clone)]
pub struct WorkspaceReport {
    pub documents: Vec<DocLine>,
    /// `(op kind, count)` across the whole workspace, most frequent first.
    pub op_mix: Vec<(String, i64)>,
    /// `(user name, ops issued)` across the workspace.
    pub user_activity: Vec<(String, i64)>,
    pub total_chars: usize,
    pub total_tuples: usize,
}

impl WorkspaceReport {
    /// Build the report over the current corpus.
    pub fn build(tdb: &TextDb) -> Result<WorkspaceReport> {
        let t = tdb.tables();
        let txn = tdb.database().begin();

        let mut documents = Vec::new();
        let mut total_chars = 0;
        let mut total_tuples = 0;
        for info in tdb.list_documents()? {
            let stats = tdb.doc_stats(info.id)?;
            let cited_by = txn
                .index_lookup(t.paste_events, "paste_events_by_src", &[info.id.value()])?
                .len();
            total_chars += stats.size;
            total_tuples += stats.tuples;
            documents.push(DocLine {
                doc: info.id.0,
                name: info.name,
                state: info.state,
                size: stats.size,
                authors: stats.authors.len(),
                readers: stats.readers.len(),
                ops: stats.ops,
                cited_by,
            });
        }
        documents.sort_by(|a, b| b.size.cmp(&a.size).then(a.doc.cmp(&b.doc)));

        // Operation mix via GROUP BY on the oplog.
        let mut op_mix: Vec<(String, i64)> = txn
            .group_by(t.oplog, &Predicate::True, "kind", &Aggregate::Count)?
            .into_iter()
            .filter_map(|(k, v)| Some((k.as_text()?.to_owned(), v.as_int().unwrap_or(0))))
            .collect();
        op_mix.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        // Per-user activity.
        let mut user_activity: Vec<(String, i64)> = txn
            .group_by(t.oplog, &Predicate::True, "user", &Aggregate::Count)?
            .into_iter()
            .filter_map(|(k, v)| {
                let user = UserId(k.as_id()?);
                let name = tdb
                    .user_name(user)
                    .unwrap_or_else(|_| format!("user#{}", user.0));
                Some((name, v.as_int().unwrap_or(0)))
            })
            .collect();
        user_activity.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        Ok(WorkspaceReport {
            documents,
            op_mix,
            user_activity,
            total_chars,
            total_tuples,
        })
    }

    /// Documents in the report, by id (convenience for tests).
    pub fn line(&self, doc: DocId) -> Option<&DocLine> {
        self.documents.iter().find(|d| d.doc == doc.0)
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("Workspace report\n================\n");
        out.push_str(&format!(
            "{} documents, {} visible chars, {} stored character tuples\n\n",
            self.documents.len(),
            self.total_chars,
            self.total_tuples
        ));
        out.push_str(&format!(
            "{:<20} {:>8} {:>7} {:>7} {:>6} {:>8}  state\n",
            "document", "chars", "authors", "readers", "ops", "cited-by"
        ));
        for d in &self.documents {
            out.push_str(&format!(
                "{:<20} {:>8} {:>7} {:>7} {:>6} {:>8}  {}\n",
                d.name, d.size, d.authors, d.readers, d.ops, d.cited_by, d.state
            ));
        }
        out.push_str("\noperation mix: ");
        out.push_str(
            &self
                .op_mix
                .iter()
                .map(|(k, n)| format!("{k}×{n}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str("\nuser activity: ");
        out.push_str(
            &self
                .user_activity
                .iter()
                .map(|(u, n)| format!("{u}×{n}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push('\n');
        out
    }

    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"documents\": [");
        for (i, d) in self.documents.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {{\"doc\":{},\"name\":", d.doc);
            json::write_str(&mut out, &d.name);
            out.push_str(",\"state\":");
            json::write_str(&mut out, &d.state);
            let _ = write!(
                out,
                ",\"size\":{},\"authors\":{},\"readers\":{},\"ops\":{},\"cited_by\":{}}}",
                d.size, d.authors, d.readers, d.ops, d.cited_by
            );
        }
        let pairs = |out: &mut String, items: &[(String, i64)]| {
            for (i, (name, count)) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n    [");
                json::write_str(out, name);
                let _ = write!(out, ",{count}]");
            }
        };
        out.push_str("\n  ],\n  \"op_mix\": [");
        pairs(&mut out, &self.op_mix);
        out.push_str("\n  ],\n  \"user_activity\": [");
        pairs(&mut out, &self.user_activity);
        let _ = write!(
            out,
            "\n  ],\n  \"total_chars\": {},\n  \"total_tuples\": {}\n}}",
            self.total_chars, self.total_tuples
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> (TextDb, UserId, UserId, DocId, DocId) {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let d1 = tdb.create_document("big", alice).unwrap();
        let d2 = tdb.create_document("small", bob).unwrap();
        let mut h1 = tdb.open(d1, alice).unwrap();
        h1.insert_text(0, "a much longer document body").unwrap();
        let mut h1b = tdb.open(d1, bob).unwrap();
        h1b.insert_text(0, "bob adds ").unwrap();
        let mut h2 = tdb.open(d2, bob).unwrap();
        h2.insert_text(0, "tiny").unwrap();
        // d1 cited once from d2.
        h1.refresh().unwrap();
        let clip = h1.copy(0, 3).unwrap();
        h2.paste(4, &clip).unwrap();
        h2.delete_range(0, 1).unwrap();
        (tdb, alice, bob, d1, d2)
    }

    #[test]
    fn report_aggregates_the_workspace() {
        let (tdb, _alice, _bob, d1, d2) = corpus();
        let r = WorkspaceReport::build(&tdb).unwrap();
        assert_eq!(r.documents.len(), 2);
        // Sorted by size: "big" first.
        assert_eq!(r.documents[0].name, "big");
        let big = r.line(d1).unwrap();
        assert_eq!(big.authors, 2);
        assert_eq!(big.cited_by, 1);
        let small = r.line(d2).unwrap();
        assert_eq!(small.size, 6); // "iny" + pasted "a m" (minus 1 deleted)
                                   // Operation mix covers every kind used.
        let kinds: Vec<&str> = r.op_mix.iter().map(|(k, _)| k.as_str()).collect();
        assert!(kinds.contains(&"insert"));
        assert!(kinds.contains(&"paste"));
        assert!(kinds.contains(&"delete"));
        // Totals add up.
        assert_eq!(
            r.total_chars,
            r.documents.iter().map(|d| d.size).sum::<usize>()
        );
        assert!(r.total_tuples >= r.total_chars);
    }

    #[test]
    fn report_renders_and_serializes() {
        let (tdb, ..) = corpus();
        let r = WorkspaceReport::build(&tdb).unwrap();
        let text = r.render();
        assert!(text.contains("Workspace report"));
        assert!(text.contains("big"));
        assert!(text.contains("operation mix"));
        assert!(text.contains("alice"));
        let json = r.to_json();
        assert!(json.contains("\"documents\""));
    }

    #[test]
    fn empty_workspace_report() {
        let tdb = TextDb::in_memory();
        let r = WorkspaceReport::build(&tdb).unwrap();
        assert!(r.documents.is_empty());
        assert_eq!(r.total_chars, 0);
        assert!(r.render().contains("0 documents"));
    }
}
