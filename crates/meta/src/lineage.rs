//! Data lineage: document content provenance (Figure 1 of the paper).
//!
//! "Meta data about all editing and all copy-paste actions is stored with
//! the document … We use this meta data to visualize data lineage."
//! The graph is built from the `paste_events` table (document-level
//! provenance) and the per-character `src_doc`/`src_char` references
//! (character-level provenance chains).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

use tendax_storage::Predicate;
use tendax_text::{CharId, DocId, Result, TextDb, UserId};

use crate::json;

/// A lineage node: a TeNDaX document or an external source.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum LineageNode {
    Document { doc: u64, name: String },
    External { source: String },
}

impl LineageNode {
    pub fn label(&self) -> String {
        match self {
            LineageNode::Document { name, .. } => name.clone(),
            LineageNode::External { source } => format!("<{source}>"),
        }
    }
}

/// An aggregated copy-paste edge between two nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageEdge {
    pub from: LineageNode,
    pub to: LineageNode,
    /// Total characters transferred over all paste events.
    pub chars: usize,
    /// Number of paste events.
    pub events: usize,
}

/// The document provenance graph.
#[derive(Debug, Clone, Default)]
pub struct LineageGraph {
    pub nodes: Vec<LineageNode>,
    pub edges: Vec<LineageEdge>,
}

impl LineageGraph {
    /// Build the full graph from the paste-event metadata.
    pub fn build(tdb: &TextDb) -> Result<LineageGraph> {
        let t = tdb.tables();
        let txn = tdb.database().begin();
        let doc_name = |d: DocId| -> Result<String> {
            Ok(tdb
                .document_info(d)
                .map(|i| i.name)
                .unwrap_or_else(|_| format!("doc#{}", d.0)))
        };

        let mut nodes: BTreeSet<LineageNode> = BTreeSet::new();
        for info in tdb.list_documents()? {
            nodes.insert(LineageNode::Document {
                doc: info.id.0,
                name: info.name,
            });
        }

        let mut agg: BTreeMap<(LineageNode, LineageNode), (usize, usize)> = BTreeMap::new();
        for (_, row) in txn.scan(t.paste_events, &Predicate::True)? {
            let target = row.get(0).map(DocId::from_value).unwrap_or(DocId::NONE);
            let src_doc = row.get(3).map(DocId::from_value).unwrap_or(DocId::NONE);
            let external = row.get(4).and_then(|v| v.as_text()).map(str::to_owned);
            let n = row.get(5).and_then(|v| v.as_int()).unwrap_or(0) as usize;

            let to = LineageNode::Document {
                doc: target.0,
                name: doc_name(target)?,
            };
            let from = if let Some(src) = external {
                LineageNode::External { source: src }
            } else if !src_doc.is_none() {
                LineageNode::Document {
                    doc: src_doc.0,
                    name: doc_name(src_doc)?,
                }
            } else {
                continue; // paste with no recorded source
            };
            nodes.insert(from.clone());
            nodes.insert(to.clone());
            let e = agg.entry((from, to)).or_insert((0, 0));
            e.0 += n;
            e.1 += 1;
        }

        Ok(LineageGraph {
            nodes: nodes.into_iter().collect(),
            edges: agg
                .into_iter()
                .map(|((from, to), (chars, events))| LineageEdge {
                    from,
                    to,
                    chars,
                    events,
                })
                .collect(),
        })
    }

    /// Documents (and sources) that `doc` transitively drew content from.
    pub fn ancestors(&self, doc: DocId) -> Vec<LineageNode> {
        self.reach(doc, false)
    }

    /// Documents that transitively drew content from `doc`.
    pub fn descendants(&self, doc: DocId) -> Vec<LineageNode> {
        self.reach(doc, true)
    }

    fn reach(&self, doc: DocId, forward: bool) -> Vec<LineageNode> {
        let start = LineageNode::Document {
            doc: doc.0,
            name: self
                .nodes
                .iter()
                .find_map(|n| match n {
                    LineageNode::Document { doc: d, name } if *d == doc.0 => Some(name.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| format!("doc#{}", doc.0)),
        };
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([start.clone()]);
        while let Some(cur) = queue.pop_front() {
            for e in &self.edges {
                let (src, dst) = (&e.from, &e.to);
                let (here, next) = if forward { (src, dst) } else { (dst, src) };
                if *here == cur && !seen.contains(next) && *next != start {
                    seen.insert(next.clone());
                    queue.push_back(next.clone());
                }
            }
        }
        seen.into_iter().collect()
    }

    /// Deterministic ASCII rendering (the Figure 1 analogue).
    pub fn render_ascii(&self) -> String {
        let mut out = String::from("Data Lineage\n============\n");
        if self.edges.is_empty() {
            out.push_str("(no copy-paste provenance recorded)\n");
            return out;
        }
        let mut by_target: BTreeMap<String, Vec<&LineageEdge>> = BTreeMap::new();
        for e in &self.edges {
            by_target.entry(e.to.label()).or_default().push(e);
        }
        for (target, edges) in by_target {
            out.push_str(&format!("[{target}]\n"));
            for e in edges {
                out.push_str(&format!(
                    "  <-- {} chars in {} paste(s) from [{}]\n",
                    e.chars,
                    e.events,
                    e.from.label()
                ));
            }
        }
        out
    }

    /// Layered ASCII DAG: sources on the top layer, each document below
    /// the deepest of its sources (the Figure 1 screenshot's layout,
    /// roughly). Cycles (mutual pasting) are cut at the back edge.
    pub fn render_layered(&self) -> String {
        use std::collections::BTreeMap;
        // Longest-path layering with cycle cutting.
        let mut layer: BTreeMap<String, usize> = BTreeMap::new();
        fn depth(
            node: &str,
            edges: &[LineageEdge],
            layer: &mut BTreeMap<String, usize>,
            visiting: &mut Vec<String>,
        ) -> usize {
            if let Some(&d) = layer.get(node) {
                return d;
            }
            if visiting.iter().any(|v| v == node) {
                return 0; // back edge: cut the cycle
            }
            visiting.push(node.to_owned());
            let d = edges
                .iter()
                .filter(|e| e.to.label() == node)
                .map(|e| depth(&e.from.label(), edges, layer, visiting) + 1)
                .max()
                .unwrap_or(0);
            visiting.pop();
            layer.insert(node.to_owned(), d);
            d
        }
        for n in &self.nodes {
            let label = n.label();
            let mut visiting = Vec::new();
            depth(&label, &self.edges, &mut layer, &mut visiting);
        }
        let mut by_layer: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for (node, d) in &layer {
            by_layer.entry(*d).or_default().push(node.clone());
        }
        let mut out = String::from("Data Lineage (layered)\n======================\n");
        for (d, mut nodes) in by_layer {
            nodes.sort();
            out.push_str(&format!("layer {d}: {}\n", nodes.join("  ")));
            for node in &nodes {
                for e in self.edges.iter().filter(|e| &e.to.label() == node) {
                    out.push_str(&format!(
                        "         {} --{}--> {}\n",
                        e.from.label(),
                        e.chars,
                        node
                    ));
                }
            }
        }
        out
    }

    /// Graphviz DOT output.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph lineage {\n  rankdir=LR;\n");
        for n in &self.nodes {
            let shape = match n {
                LineageNode::Document { .. } => "box",
                LineageNode::External { .. } => "ellipse",
            };
            out.push_str(&format!("  \"{}\" [shape={shape}];\n", n.label()));
        }
        for e in &self.edges {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{} chars\"];\n",
                e.from.label(),
                e.to.label(),
                e.chars
            ));
        }
        out.push_str("}\n");
        out
    }

    /// JSON export (bench harness artifact).
    pub fn to_json(&self) -> String {
        fn node(out: &mut String, n: &LineageNode) {
            match n {
                LineageNode::Document { doc, name } => {
                    out.push_str("{\"Document\":{\"doc\":");
                    out.push_str(&doc.to_string());
                    out.push_str(",\"name\":");
                    json::write_str(out, name);
                    out.push_str("}}");
                }
                LineageNode::External { source } => {
                    out.push_str("{\"External\":{\"source\":");
                    json::write_str(out, source);
                    out.push_str("}}");
                }
            }
        }
        let mut out = String::from("{\n  \"nodes\": [");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            node(&mut out, n);
        }
        out.push_str("\n  ],\n  \"edges\": [");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"from\":");
            node(&mut out, &e.from);
            out.push_str(",\"to\":");
            node(&mut out, &e.to);
            let _ = write!(out, ",\"chars\":{},\"events\":{}}}", e.chars, e.events);
        }
        out.push_str("\n  ]\n}");
        out
    }
}

/// One hop in a character's provenance chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceHop {
    pub doc: DocId,
    pub doc_name: String,
    pub char: CharId,
    pub author: UserId,
    pub created_at: i64,
    /// External origin, if this is where the chain leaves TeNDaX.
    pub external: Option<String>,
}

/// Follow one character's copy-paste chain back to its origin.
///
/// Returns the hops from the character itself (first) back to the
/// original keystroke or external source (last).
pub fn char_provenance(tdb: &TextDb, doc: DocId, char_id: CharId) -> Result<Vec<ProvenanceHop>> {
    let t = tdb.tables();
    let txn = tdb.database().begin();
    let mut hops = Vec::new();
    let mut cur_doc = doc;
    let mut cur_char = char_id;
    while let Some(row) = txn.get(t.chars, cur_char.row())? {
        let author = row.get(4).map(UserId::from_value).unwrap_or(UserId::NONE);
        let created_at = row.get(5).and_then(|v| v.as_timestamp()).unwrap_or(0);
        let src_doc = row.get(11).map(DocId::from_value).unwrap_or(DocId::NONE);
        let src_char = row.get(12).map(CharId::from_value).unwrap_or(CharId::NONE);
        let external = row.get(13).and_then(|v| v.as_text()).map(str::to_owned);
        let name = tdb
            .document_info(cur_doc)
            .map(|i| i.name)
            .unwrap_or_else(|_| format!("doc#{}", cur_doc.0));
        let is_external = external.is_some();
        hops.push(ProvenanceHop {
            doc: cur_doc,
            doc_name: name,
            char: cur_char,
            author,
            created_at,
            external,
        });
        if is_external || src_doc.is_none() || src_char.is_none() {
            break;
        }
        cur_doc = src_doc;
        cur_char = src_char;
        if hops.len() > 64 {
            break; // defensive bound against cyclic provenance
        }
    }
    Ok(hops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> (TextDb, UserId, DocId, DocId, DocId) {
        let tdb = TextDb::in_memory();
        let u = tdb.create_user("alice").unwrap();
        let a = tdb.create_document("origin", u).unwrap();
        let b = tdb.create_document("middle", u).unwrap();
        let c = tdb.create_document("final", u).unwrap();
        let mut ha = tdb.open(a, u).unwrap();
        ha.insert_text(0, "original words").unwrap();
        let clip = ha.copy(0, 8).unwrap();
        let mut hb = tdb.open(b, u).unwrap();
        hb.paste(0, &clip).unwrap();
        hb.paste_external(8, " web", "https://example.org").unwrap();
        let clip2 = hb.copy(0, 4).unwrap();
        let mut hc = tdb.open(c, u).unwrap();
        hc.paste(0, &clip2).unwrap();
        (tdb, u, a, b, c)
    }

    #[test]
    fn graph_aggregates_paste_events() {
        let (tdb, _u, a, b, c) = corpus();
        let g = LineageGraph::build(&tdb).unwrap();
        // origin->middle, external->middle, middle->final
        assert_eq!(g.edges.len(), 3);
        let oe = g.edges.iter().find(|e| e.from.label() == "origin").unwrap();
        assert_eq!(oe.chars, 8);
        assert_eq!(oe.events, 1);
        assert!(g.edges.iter().any(
            |e| matches!(&e.from, LineageNode::External { source } if source.contains("example"))
        ));
        let _ = (a, b, c);
    }

    #[test]
    fn ancestors_and_descendants_are_transitive() {
        let (tdb, _u, a, b, c) = corpus();
        let g = LineageGraph::build(&tdb).unwrap();
        let anc = g.ancestors(c);
        let labels: Vec<String> = anc.iter().map(|n| n.label()).collect();
        assert!(labels.contains(&"middle".to_string()));
        assert!(labels.contains(&"origin".to_string()));
        assert!(labels.iter().any(|l| l.contains("example")));

        let desc = g.descendants(a);
        let labels: Vec<String> = desc.iter().map(|n| n.label()).collect();
        assert!(labels.contains(&"middle".to_string()));
        assert!(labels.contains(&"final".to_string()));
        assert!(g.descendants(c).is_empty());
        let _ = b;
    }

    #[test]
    fn renderings_are_deterministic_and_complete() {
        let (tdb, ..) = corpus();
        let g = LineageGraph::build(&tdb).unwrap();
        let ascii = g.render_ascii();
        assert!(ascii.contains("Data Lineage"));
        assert!(ascii.contains("[middle]"));
        assert!(ascii.contains("8 chars"));
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph lineage"));
        assert!(dot.contains("\"origin\" -> \"middle\""));
        let json = g.to_json();
        assert!(json.contains("\"edges\""));
        // Determinism.
        assert_eq!(ascii, LineageGraph::build(&tdb).unwrap().render_ascii());
    }

    #[test]
    fn layered_rendering_orders_by_provenance_depth() {
        let (tdb, ..) = corpus();
        let g = LineageGraph::build(&tdb).unwrap();
        let layered = g.render_layered();
        // origin has no sources: layer 0; middle draws from origin:
        // layer 1; final draws from middle: layer 2.
        let l0 = layered.find("layer 0").unwrap();
        let l1 = layered.find("layer 1").unwrap();
        let l2 = layered.find("layer 2").unwrap();
        let origin = layered.find("origin").unwrap();
        let middle_line = layered
            .lines()
            .find(|l| l.starts_with("layer") && l.contains("middle"))
            .unwrap();
        let final_line = layered
            .lines()
            .find(|l| l.starts_with("layer") && l.contains("final"))
            .unwrap();
        assert!(l0 < l1 && l1 < l2);
        assert!(origin > l0 && origin < l1);
        assert!(middle_line.starts_with("layer 1"));
        assert!(final_line.starts_with("layer 2"));
    }

    #[test]
    fn layered_rendering_survives_paste_cycles() {
        let tdb = TextDb::in_memory();
        let u = tdb.create_user("u").unwrap();
        let a = tdb.create_document("a", u).unwrap();
        let b = tdb.create_document("b", u).unwrap();
        let mut ha = tdb.open(a, u).unwrap();
        ha.insert_text(0, "alpha text").unwrap();
        let mut hb = tdb.open(b, u).unwrap();
        hb.insert_text(0, "beta text").unwrap();
        // Mutual pasting: a -> b and b -> a.
        let ca = ha.copy(0, 5).unwrap();
        hb.paste(0, &ca).unwrap();
        let cb = hb.copy(5, 4).unwrap();
        ha.paste(0, &cb).unwrap();
        let g = LineageGraph::build(&tdb).unwrap();
        // Must terminate and include both documents.
        let layered = g.render_layered();
        assert!(layered.contains("a"));
        assert!(layered.contains("b"));
    }

    #[test]
    fn empty_graph_renders_placeholder() {
        let tdb = TextDb::in_memory();
        let g = LineageGraph::build(&tdb).unwrap();
        assert!(g.render_ascii().contains("no copy-paste provenance"));
    }

    #[test]
    fn char_provenance_follows_the_chain() {
        let (tdb, u, a, _b, c) = corpus();
        // First char of "final" came from middle, which came from origin.
        let hc = tdb.open(c, u).unwrap();
        let id = hc.char_at(0).unwrap();
        let hops = char_provenance(&tdb, c, id).unwrap();
        assert_eq!(hops.len(), 3);
        assert_eq!(hops[0].doc_name, "final");
        assert_eq!(hops[1].doc_name, "middle");
        assert_eq!(hops[2].doc_name, "origin");
        assert_eq!(hops[2].doc, a);
        assert!(hops[2].external.is_none());
    }

    #[test]
    fn char_provenance_stops_at_external() {
        let (tdb, u, _a, b, _c) = corpus();
        let hb = tdb.open(b, u).unwrap();
        // Position 8 starts " web" (external paste).
        let id = hb.char_at(8).unwrap();
        let hops = char_provenance(&tdb, b, id).unwrap();
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].external.as_deref(), Some("https://example.org"));
    }
}
