#!/usr/bin/env python3
"""Summarize a `cargo bench` log into a markdown table.

Usage: python3 crates/bench/summarize.py bench_output.txt

Parses Criterion output lines of the form

    group/name/param
                            time:   [lo mid hi]

and prints `| benchmark | median |` rows grouped by experiment prefix,
ready to paste into EXPERIMENTS.md's appendix.
"""

import re
import sys
from collections import OrderedDict


def main(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    results: "OrderedDict[str, str]" = OrderedDict()
    last_name = None
    name_re = re.compile(r"^([a-z0-9_]+(?:/[^ ]+)+)")
    time_re = re.compile(r"time:\s+\[([^\]]+)\]")

    for line in lines:
        stripped = line.strip()
        if stripped.startswith("Benchmarking"):
            continue
        m = time_re.search(stripped)
        if m and last_name:
            parts = m.group(1).split()
            if len(parts) == 6:  # lo unit mid unit hi unit
                results[last_name] = f"{parts[2]} {parts[3]}"
            last_name = None
            continue
        m = name_re.match(stripped)
        if m:
            last_name = m.group(1)

    current_prefix = None
    for name, median in results.items():
        prefix = name.split("_", 1)[0]
        if prefix != current_prefix:
            print(f"\n**{prefix.upper()}**\n")
            print("| benchmark | median |")
            print("|---|---|")
            current_prefix = prefix
        print(f"| `{name}` | {median} |")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt")
