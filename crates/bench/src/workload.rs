//! Synthetic workload generators for the TeNDaX bench harness.
//!
//! The paper demoed on live documents; we have none, so these generators
//! build corpora whose *shape* matters for the experiments: documents of
//! controlled size, multi-user authorship, read histories, and copy-paste
//! graphs with chains and fan-out (the inputs to lineage, folders, search
//! and mining). Deterministic under a fixed seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tendax_core::{DocId, Platform, Tendax, UserId};

/// A small vocabulary so search/mining have realistic term statistics.
const WORDS: [&str; 24] = [
    "database",
    "document",
    "editor",
    "transaction",
    "metadata",
    "character",
    "collaboration",
    "workflow",
    "security",
    "undo",
    "paste",
    "lineage",
    "folder",
    "search",
    "mining",
    "text",
    "revenue",
    "contract",
    "review",
    "draft",
    "server",
    "client",
    "index",
    "snapshot",
];

/// Generate `n` words of pseudo-text.
pub fn text_of_words(rng: &mut SmallRng, n: usize) -> String {
    let mut out = String::with_capacity(n * 8);
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    out
}

/// A generated corpus handle.
pub struct Corpus {
    pub tendax: Tendax,
    pub users: Vec<UserId>,
    pub user_names: Vec<String>,
    pub docs: Vec<DocId>,
}

/// Build a corpus: `n_users` users, `n_docs` documents of roughly
/// `words_per_doc` words each, written by round-robin authors, with read
/// events sprinkled in.
pub fn build_corpus(n_users: usize, n_docs: usize, words_per_doc: usize, seed: u64) -> Corpus {
    let mut rng = SmallRng::seed_from_u64(seed);
    let tendax = Tendax::in_memory().expect("in-memory instance");
    let mut users = Vec::with_capacity(n_users);
    let mut user_names = Vec::with_capacity(n_users);
    for i in 0..n_users {
        let name = format!("user{i}");
        users.push(tendax.create_user(&name).expect("fresh user"));
        user_names.push(name);
    }
    let mut docs = Vec::with_capacity(n_docs);
    for d in 0..n_docs {
        let creator = users[d % n_users];
        let doc = tendax
            .create_document(&format!("doc{d:04}"), creator)
            .expect("fresh doc");
        let mut h = tendax.textdb().open(doc, creator).expect("open");
        // A couple of edit bursts by different authors.
        let bursts = 1 + d % 3;
        for b in 0..bursts {
            let author = users[(d + b) % n_users];
            let mut ha = if author == creator && b == 0 {
                std::mem::replace(&mut h, tendax.textdb().open(doc, creator).expect("reopen"))
            } else {
                tendax.textdb().open(doc, author).expect("open as author")
            };
            let words = words_per_doc / bursts;
            let text = text_of_words(&mut rng, words.max(1));
            let pos = rng.gen_range(0..=ha.len());
            ha.insert_text(pos, &text).expect("insert burst");
        }
        // Read events by random users.
        for _ in 0..rng.gen_range(0..4) {
            let reader = users[rng.gen_range(0..n_users)];
            let _ = tendax.textdb().open(doc, reader);
        }
        docs.push(doc);
    }
    Corpus {
        tendax,
        users,
        user_names,
        docs,
    }
}

/// Overlay a copy-paste web on a corpus: `n_pastes` pastes whose source
/// is a random earlier document (chains + fan-out) and occasionally an
/// external source.
pub fn add_paste_web(corpus: &Corpus, n_pastes: usize, external_every: usize, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let tdb = corpus.tendax.textdb();
    for i in 0..n_pastes {
        let dst_idx = rng.gen_range(0..corpus.docs.len());
        let dst = corpus.docs[dst_idx];
        let user = corpus.users[rng.gen_range(0..corpus.users.len())];
        let mut hd = tdb.open(dst, user).expect("open dst");
        if external_every > 0 && i % external_every == 0 {
            let pos = rng.gen_range(0..=hd.len());
            hd.paste_external(
                pos,
                "externally sourced text",
                &format!("https://source{}.example", i % 5),
            )
            .expect("external paste");
            continue;
        }
        // Prefer an earlier doc as source (builds chains).
        let src_idx = rng.gen_range(0..corpus.docs.len());
        if src_idx == dst_idx {
            continue;
        }
        let src = corpus.docs[src_idx];
        let hs = tdb.open(src, user).expect("open src");
        if hs.len() < 4 {
            continue;
        }
        let start = rng.gen_range(0..hs.len() - 3);
        let len = rng.gen_range(3..=12.min(hs.len() - start));
        let clip = hs.copy(start, len).expect("copy");
        let pos = rng.gen_range(0..=hd.len());
        hd.paste(pos, &clip).expect("paste");
    }
}

/// Spin up `n` connected editor sessions on one shared document.
pub fn shared_document(n_users: usize) -> (Tendax, Vec<tendax_core::EditorSession>, DocId) {
    let tendax = Tendax::in_memory().expect("instance");
    let mut names = Vec::new();
    for i in 0..n_users {
        let name = format!("user{i}");
        tendax.create_user(&name).expect("user");
        names.push(name);
    }
    let creator = tendax.textdb().user_by_name("user0").expect("creator");
    let doc = tendax.create_document("shared", creator).expect("doc");
    let sessions = names
        .iter()
        .map(|n| tendax.connect(n, Platform::Linux).expect("connect session"))
        .collect();
    (tendax, sessions, doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = build_corpus(3, 5, 20, 42);
        let b = build_corpus(3, 5, 20, 42);
        for (da, db) in a.docs.iter().zip(&b.docs) {
            let ha = a.tendax.textdb().open(*da, a.users[0]).unwrap();
            let hb = b.tendax.textdb().open(*db, b.users[0]).unwrap();
            assert_eq!(ha.text(), hb.text());
        }
    }

    #[test]
    fn corpus_has_expected_shape() {
        let c = build_corpus(4, 8, 30, 7);
        assert_eq!(c.docs.len(), 8);
        assert_eq!(c.users.len(), 4);
        let stats = c.tendax.textdb().doc_stats(c.docs[0]).unwrap();
        assert!(stats.size > 0);
    }

    #[test]
    fn paste_web_creates_lineage() {
        let c = build_corpus(3, 6, 25, 11);
        add_paste_web(&c, 20, 5, 13);
        let g = c.tendax.lineage().unwrap();
        assert!(!g.edges.is_empty());
        // External sources present.
        assert!(g
            .nodes
            .iter()
            .any(|n| matches!(n, tendax_core::LineageNode::External { .. })));
    }

    #[test]
    fn shared_document_sessions_work() {
        let (_tendax, sessions, _doc) = shared_document(3);
        assert_eq!(sessions.len(), 3);
        let mut d = sessions[0].open("shared").unwrap();
        d.type_text(0, "x").unwrap();
        assert_eq!(d.text(), "x");
    }
}
