//! Regenerates **Figure 2 — Visual Mining** of the EDBT 2006 paper.
//!
//! The original figure is a GUI screenshot of the information
//! visualization plug-in showing the document space. This binary builds
//! a corpus, computes the metadata feature matrix, projects it to 2-D
//! (PCA) with k-means cluster colors, renders the scatter as ASCII, and
//! writes the coordinate series to `bench_results/`.
//!
//! Run with: `cargo run -p tendax-bench --bin figure2_mining`

use tendax_bench::{add_paste_web, build_corpus};
use tendax_core::{top_terms, FEATURE_NAMES};

fn main() {
    let corpus = build_corpus(5, 24, 60, 7);
    add_paste_web(&corpus, 40, 8, 9);
    let tendax = &corpus.tendax;

    let space = tendax.document_space(3).expect("document space");
    println!("{}", space.render_ascii(64, 20));
    println!("feature dimensions: {FEATURE_NAMES:?}");
    println!("{:<10} {:>8} {:>8}  cluster", "doc", "x", "y");
    for p in &space.points {
        println!("{:<10} {:>8.3} {:>8.3}  {}", p.name, p.x, p.y, p.cluster);
    }

    // Text-mining panel: characteristic terms of the first few documents.
    println!("\n--- text mining: characteristic terms ---");
    for doc in corpus.docs.iter().take(5) {
        let terms = top_terms(tendax.textdb(), *doc, 3).expect("terms");
        let name = tendax.textdb().document_info(*doc).expect("info").name;
        let rendered: Vec<String> = terms.iter().map(|(t, w)| format!("{t}({w:.3})")).collect();
        println!("{name}: {}", rendered.join(", "));
    }

    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    std::fs::write("bench_results/figure2_mining.json", space.to_json())
        .expect("write figure2 json");
    println!(
        "\nseries written: bench_results/figure2_mining.json ({} documents, {} clusters)",
        space.points.len(),
        space.clusters
    );
}
