//! Regenerates **Figure 1 — Data Lineage** of the EDBT 2006 paper.
//!
//! The original figure is a GUI screenshot of the lineage visualization
//! plug-in. This binary builds a corpus with a copy-paste web (internal
//! chains, fan-out, and external sources), derives the same provenance
//! graph from the stored metadata, and emits it as an ASCII rendering,
//! Graphviz DOT, and a JSON series (written to `bench_results/`).
//!
//! Run with: `cargo run -p tendax-bench --bin figure1_lineage`

use tendax_bench::{add_paste_web, build_corpus};
use tendax_core::char_provenance;

fn main() {
    let corpus = build_corpus(4, 10, 40, 42);
    add_paste_web(&corpus, 30, 6, 43);
    let tendax = &corpus.tendax;

    let graph = tendax.lineage().expect("lineage graph");
    println!("{}", graph.render_ascii());
    println!("--- Graphviz DOT ---\n{}", graph.to_dot());

    // A character-level provenance chain, as the demo showed for a
    // selected character.
    let tdb = tendax.textdb();
    'outer: for doc in &corpus.docs {
        let h = tdb.open(*doc, corpus.users[0]).expect("open");
        for pos in 0..h.len() {
            if let Some(meta) = h.char_meta(pos) {
                if matches!(meta.provenance, tendax_core::Provenance::CopiedFrom { .. }) {
                    let hops = char_provenance(tdb, *doc, meta.id).expect("provenance");
                    println!("--- character provenance (doc {}, pos {pos}) ---", doc.0);
                    for hop in hops {
                        println!(
                            "  {} char#{} author#{} t={}{}",
                            hop.doc_name,
                            hop.char.0,
                            hop.author.0,
                            hop.created_at,
                            hop.external
                                .map(|e| format!(" [external: {e}]"))
                                .unwrap_or_default()
                        );
                    }
                    break 'outer;
                }
            }
        }
    }

    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    std::fs::write("bench_results/figure1_lineage.json", graph.to_json())
        .expect("write figure1 json");
    std::fs::write("bench_results/figure1_lineage.dot", graph.to_dot()).expect("write figure1 dot");
    println!(
        "\nseries written: bench_results/figure1_lineage.json ({} nodes, {} edges)",
        graph.nodes.len(),
        graph.edges.len()
    );
}
