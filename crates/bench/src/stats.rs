//! Shared latency/throughput observability for the bench harness.
//!
//! Every bench in this crate used to carry its own percentile helper;
//! this module is the one audited implementation. [`LatencyHistogram`]
//! records raw nanosecond samples and reports p50/p99/max in
//! microseconds, [`percentile`] is the underlying nearest-rank helper,
//! and [`json_object`] assembles the one-line JSON summaries the
//! `bench_results/` series and `scripts/bench_compare.py` consume.

use std::collections::BTreeMap;

/// Nearest-rank percentile over an ascending-sorted slice of nanosecond
/// samples, reported in microseconds. `frac` is in `[0, 1]`; `1.0` is
/// the maximum. Panics on an empty slice (a bench that recorded nothing
/// has nothing to report).
pub fn percentile(sorted_ns: &[u64], frac: f64) -> f64 {
    assert!(!sorted_ns.is_empty(), "percentile of zero samples");
    let idx = ((sorted_ns.len() as f64 - 1.0) * frac).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Summary of one latency distribution, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    pub count: u64,
    pub p50_us: f64,
    pub p99_us: f64,
    pub max_us: f64,
}

/// A raw-sample latency recorder: exact percentiles, no bucketing error.
/// Bench workloads record at most a few million samples, so keeping the
/// raw `u64`s is cheaper than being clever.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    samples_ns: Vec<u64>,
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        LatencyHistogram {
            samples_ns: Vec::with_capacity(n),
        }
    }

    /// Record one sample in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.samples_ns.push(ns);
    }

    /// Record an elapsed [`std::time::Duration`].
    pub fn record(&mut self, elapsed: std::time::Duration) {
        self.record_ns(elapsed.as_nanos() as u64);
    }

    pub fn count(&self) -> u64 {
        self.samples_ns.len() as u64
    }

    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.samples_ns.extend_from_slice(&other.samples_ns);
    }

    /// Sort and summarize. Returns `None` when nothing was recorded.
    pub fn summary(&mut self) -> Option<LatencySummary> {
        if self.samples_ns.is_empty() {
            return None;
        }
        self.samples_ns.sort_unstable();
        Some(LatencySummary {
            count: self.samples_ns.len() as u64,
            p50_us: percentile(&self.samples_ns, 0.50),
            p99_us: percentile(&self.samples_ns, 0.99),
            max_us: percentile(&self.samples_ns, 1.0),
        })
    }
}

/// A JSON scalar for the one-line summary format. The bench series are
/// flat objects of numbers/strings/bools, so this tiny enum is all the
/// JSON the harness needs (no serde in the workspace).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    U64(u64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonValue::U64(v) => write!(f, "{v}"),
            // One decimal, like every existing series: enough for
            // latency in µs and throughput in ops/s, and diff-stable.
            JsonValue::F64(v) => write!(f, "{v:.1}"),
            JsonValue::Bool(v) => write!(f, "{v}"),
            JsonValue::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
        }
    }
}

/// Assemble `pairs` (insertion-ordered) into one flat JSON object line.
pub fn json_object(pairs: &[(String, JsonValue)]) -> String {
    let fields: Vec<String> = pairs.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
    format!("{{{}}}", fields.join(","))
}

/// Append one JSON line to the bench-series file at `path`, creating it
/// if needed (the `bench_results/` convention: one run per line, newest
/// last).
pub fn append_json_line(path: &std::path::Path, line: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{line}")
}

/// Per-op-class latency recorder keyed by class label, producing the
/// `<class>_p50_us` / `<class>_p99_us` / `<class>_max_us` /
/// `<class>_count` field family of the `lan_party` series.
#[derive(Debug, Default)]
pub struct ClassRecorder {
    classes: BTreeMap<&'static str, LatencyHistogram>,
}

impl ClassRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, class: &'static str, elapsed: std::time::Duration) {
        self.classes.entry(class).or_default().record(elapsed);
    }

    /// Summaries per class, in class-name order.
    pub fn summaries(&mut self) -> Vec<(&'static str, LatencySummary)> {
        self.classes
            .iter_mut()
            .filter_map(|(k, h)| h.summary().map(|s| (*k, s)))
            .collect()
    }

    /// Flatten into JSON pairs: `<class>_{count,p50_us,p99_us,max_us}`.
    pub fn json_pairs(&mut self) -> Vec<(String, JsonValue)> {
        let mut out = Vec::new();
        for (class, s) in self.summaries() {
            out.push((format!("{class}_count"), JsonValue::U64(s.count)));
            out.push((format!("{class}_p50_us"), JsonValue::F64(s.p50_us)));
            out.push((format!("{class}_p99_us"), JsonValue::F64(s.p99_us)));
            out.push((format!("{class}_max_us"), JsonValue::F64(s.max_us)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        assert_eq!(percentile(&ns, 0.0), 1.0);
        assert_eq!(percentile(&ns, 1.0), 100.0);
        assert_eq!(percentile(&ns, 0.50), 51.0); // nearest-rank round
        assert_eq!(percentile(&ns, 0.99), 99.0);
    }

    #[test]
    fn histogram_summary_and_merge() {
        let mut a = LatencyHistogram::new();
        assert!(a.summary().is_none());
        for ns in [5_000, 1_000, 3_000] {
            a.record_ns(ns);
        }
        let mut b = LatencyHistogram::new();
        b.record_ns(9_000);
        a.merge(&b);
        let s = a.summary().unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.max_us, 9.0);
        // idx = round((4-1) * 0.5) = 2 → the third sample.
        assert_eq!(s.p50_us, 5.0);
    }

    #[test]
    fn json_object_is_flat_and_ordered() {
        let line = json_object(&[
            ("a".into(), JsonValue::U64(1)),
            ("b".into(), JsonValue::F64(2.25)),
            ("c".into(), JsonValue::Bool(true)),
            ("d".into(), JsonValue::Str("x\"y".into())),
        ]);
        assert_eq!(line, "{\"a\":1,\"b\":2.2,\"c\":true,\"d\":\"x\\\"y\"}");
    }

    #[test]
    fn class_recorder_groups_by_class() {
        let mut r = ClassRecorder::new();
        r.record("typing", std::time::Duration::from_micros(10));
        r.record("typing", std::time::Duration::from_micros(20));
        r.record("search", std::time::Duration::from_micros(500));
        let pairs = r.json_pairs();
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert!(keys.contains(&"typing_count"));
        assert!(keys.contains(&"search_p99_us"));
        assert_eq!(pairs.len(), 8);
    }
}
