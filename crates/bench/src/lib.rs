//! # tendax-bench
//!
//! The benchmark harness of the TeNDaX reproduction. One Criterion bench
//! per experiment id in `DESIGN.md` §4 (D1–D6, P1–P2, A1–A2), plus two
//! binaries that regenerate the paper's figures:
//!
//! * `figure1_lineage` — the data-lineage visualization (Figure 1),
//! * `figure2_mining` — the visual-mining document space (Figure 2).
//!
//! [`workload`] holds the deterministic synthetic generators that stand
//! in for the demo's live documents (see the substitution table in
//! `DESIGN.md` §3). [`lanparty`] is the macro-workload engine behind
//! the `lan_party` scoreboard bench (`DESIGN.md` §5.9), and [`stats`]
//! is the shared latency/JSON observability layer every bench reports
//! through.

pub mod lanparty;
pub mod stats;
pub mod workload;

pub use lanparty::{OpClass, OpMix, RunReport, Schedule, WorkloadConfig, WorkloadOp};
pub use stats::{ClassRecorder, JsonValue, LatencyHistogram, LatencySummary};
pub use workload::{add_paste_web, build_corpus, shared_document, text_of_words, Corpus};
