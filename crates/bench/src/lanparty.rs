//! The "LAN party" macro-workload engine (`DESIGN.md` §5.9).
//!
//! Simulates N users editing M documents — Zipf-popular, so a few
//! documents are hot — with a mixed op stream covering everything the
//! demo showed live: typing bursts, copy-paste (lineage), dynamic-folder
//! refreshes, metadata search, mining sweeps, and process routing.
//!
//! The schedule is **generated up front** from a seed: every random
//! draw (actor, document, positions, burst text) happens during
//! generation, never during execution, and [`Schedule::digest`] hashes
//! the full op stream so identical seeds provably produce identical
//! runs. Execution is sequential in schedule order — the same
//! deterministic-schedule methodology as the storage crate's crash
//! simulator — which keeps final document bytes reproducible while
//! still timing the real multi-session stack (commit pipeline, bus
//! fan-out, retry machinery, and optionally the TCP transport).
//!
//! Two drivers share one schedule:
//!
//! * [`run_in_process`] — editor sessions on the in-process [`LanBus`];
//! * [`run_tcp`] — one [`NetClient`] per user against a [`NetServer`]
//!   on loopback. Text ops travel the wire (paste is rendered as an
//!   insert of the copied mirror text — the wire protocol carries only
//!   insert/delete); metadata ops (folders, search, mining, process)
//!   run server-side, as the demo's fat server did.
//!
//! [`LanBus`]: tendax_collab::LanBus

use std::collections::HashMap;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tendax_core::{
    Assignee, DocId, DurabilityLevel, EditorDoc, FolderRule, Options, Platform, SearchEngine,
    SearchQuery, TaskSpec, Tendax, UserId,
};
use tendax_net::{ClientConfig, NetClient, NetConfig, NetServer};

use crate::stats::ClassRecorder;
use crate::workload::text_of_words;

/// The op classes of the mixed stream. Labels key the per-class
/// latency families in the JSON output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// A typing burst: insert a few words at a position.
    Typing,
    /// Copy a slice of one document, paste it into another.
    Paste,
    /// Re-evaluate a dynamic folder's membership.
    FolderRefresh,
    /// A metadata search over the live corpus.
    Search,
    /// A visual-mining sweep (feature extraction + PCA + k-means).
    Mining,
    /// Define a workflow task on the document and route it to its
    /// assignee's inbox; the assignee completes it.
    Process,
}

impl OpClass {
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Typing => "typing",
            OpClass::Paste => "paste",
            OpClass::FolderRefresh => "folder",
            OpClass::Search => "search",
            OpClass::Mining => "mining",
            OpClass::Process => "process",
        }
    }

    fn tag(self) -> u8 {
        match self {
            OpClass::Typing => 1,
            OpClass::Paste => 2,
            OpClass::FolderRefresh => 3,
            OpClass::Search => 4,
            OpClass::Mining => 5,
            OpClass::Process => 6,
        }
    }
}

/// Relative weights of the op classes. The default mix is typing-heavy
/// with occasional expensive sweeps, roughly what a live editing
/// session looks like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    pub typing: u32,
    pub paste: u32,
    pub folder: u32,
    pub search: u32,
    pub mining: u32,
    pub process: u32,
}

impl Default for OpMix {
    fn default() -> Self {
        OpMix {
            typing: 60,
            paste: 12,
            folder: 8,
            search: 8,
            mining: 2,
            process: 10,
        }
    }
}

impl OpMix {
    fn classes(&self) -> [(OpClass, u32); 6] {
        [
            (OpClass::Typing, self.typing),
            (OpClass::Paste, self.paste),
            (OpClass::FolderRefresh, self.folder),
            (OpClass::Search, self.search),
            (OpClass::Mining, self.mining),
            (OpClass::Process, self.process),
        ]
    }
}

/// Workload shape: everything the generator needs.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    pub users: usize,
    pub docs: usize,
    /// Ops in the schedule.
    pub ops: usize,
    /// Words per typing burst.
    pub burst_words: usize,
    /// Zipf skew of document popularity (`s` in 1/k^s); 0 = uniform.
    pub zipf_s: f64,
    pub seed: u64,
    pub mix: OpMix,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            users: 8,
            docs: 12,
            ops: 400,
            burst_words: 3,
            zipf_s: 1.1,
            seed: 42,
            mix: OpMix::default(),
        }
    }
}

/// One scheduled operation. `a`/`b` are class-specific pre-drawn
/// parameters (positions, lengths, source document), reduced modulo the
/// live state at execution time so the schedule itself never depends on
/// document contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadOp {
    pub user: usize,
    pub doc: usize,
    pub class: OpClass,
    pub a: u64,
    pub b: u64,
    /// Pre-generated burst text (typing ops; empty otherwise).
    pub text: String,
}

/// A generated, digestable op stream.
#[derive(Debug, Clone)]
pub struct Schedule {
    pub config: WorkloadConfig,
    pub ops: Vec<WorkloadOp>,
}

/// FNV-1a, the repo's standard cheap content hash.
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Sample an index in `[0, n)` with Zipf weight 1/(k+1)^s via the
/// precomputed cumulative distribution and a binary search.
struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, s: f64) -> ZipfSampler {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    fn sample(&self, rng: &mut SmallRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty distribution");
        let x = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c < x)
    }
}

/// Generate the op schedule for `config`. Pure function of the config
/// (including its seed).
pub fn generate(config: &WorkloadConfig) -> Schedule {
    assert!(config.users > 0 && config.docs > 0, "empty workload");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let zipf = ZipfSampler::new(config.docs, config.zipf_s);
    let classes = config.mix.classes();
    let weight_total: u32 = classes.iter().map(|(_, w)| w).sum();
    assert!(weight_total > 0, "all op-mix weights are zero");

    let mut ops = Vec::with_capacity(config.ops);
    for _ in 0..config.ops {
        let mut pick = rng.gen_range(0..weight_total);
        let class = classes
            .iter()
            .find(|(_, w)| {
                if pick < *w {
                    true
                } else {
                    pick -= w;
                    false
                }
            })
            .expect("weights sum to total")
            .0;
        let user = rng.gen_range(0..config.users);
        let doc = zipf.sample(&mut rng);
        let (a, b, text) = match class {
            OpClass::Typing => (
                rng.gen_range(0..1 << 20),
                0,
                text_of_words(&mut rng, config.burst_words.max(1)),
            ),
            // a = paste position, b packs (source doc, copy start, copy
            // len) as independent draws.
            OpClass::Paste => (
                rng.gen_range(0..1 << 20),
                (zipf.sample(&mut rng) as u64) << 32
                    | rng.gen_range(0..1u64 << 16) << 8
                    | rng.gen_range(3..16u64),
                String::new(),
            ),
            // a = term index for search; assignee draw for process.
            OpClass::Search => (rng.gen_range(0..1 << 16), 0, String::new()),
            OpClass::Process => (rng.gen_range(0..config.users as u64), 0, String::new()),
            OpClass::FolderRefresh | OpClass::Mining => (0, 0, String::new()),
        };
        ops.push(WorkloadOp {
            user,
            doc,
            class,
            a,
            b,
            text,
        });
    }
    Schedule {
        config: config.clone(),
        ops,
    }
}

impl Schedule {
    /// FNV-1a hash over the canonical encoding of every op (and the
    /// shape parameters): the reproducibility receipt. Two runs with
    /// the same digest executed the same op stream.
    pub fn digest(&self) -> u64 {
        let c = &self.config;
        let mut h = FNV_OFFSET;
        for v in [
            c.users as u64,
            c.docs as u64,
            c.ops as u64,
            c.burst_words as u64,
            c.zipf_s.to_bits(),
            c.seed,
        ] {
            h = fnv1a(h, &v.to_le_bytes());
        }
        for op in &self.ops {
            h = fnv1a(h, &[op.class.tag()]);
            h = fnv1a(h, &(op.user as u64).to_le_bytes());
            h = fnv1a(h, &(op.doc as u64).to_le_bytes());
            h = fnv1a(h, &op.a.to_le_bytes());
            h = fnv1a(h, &op.b.to_le_bytes());
            h = fnv1a(h, op.text.as_bytes());
        }
        h
    }
}

/// WAL flush receipts of one run — the experiment A11 counters. Only
/// present for durable fixtures (see [`build_fixture`]); the default
/// in-memory fixture has no WAL.
#[derive(Debug, Clone)]
pub struct WalReceipt {
    /// Shard files the WAL wrote to (1 = single-file layout).
    pub shard_count: usize,
    /// High-water mark of flush leaders concurrently in flight — the
    /// "parallel fsync actually happened" receipt; at most 1 in the
    /// single-file layout.
    pub max_concurrent_flush_leaders: u64,
    /// `sync_data` calls, summed over shards.
    pub fsyncs: u64,
    /// Group-commit batches flushed, summed over shards.
    pub batches: u64,
    /// WAL records covered by those batches.
    pub records: u64,
    /// Total time committers spent waiting for durability — the
    /// fsync-queue wait the sharding exists to shrink.
    pub flush_wait_ms: f64,
    /// `fsyncs` broken out per shard (index = shard number).
    pub per_shard_fsyncs: Vec<u64>,
}

/// What one driver run produced.
#[derive(Debug)]
pub struct RunReport {
    /// `inproc`, `tcp_pooled`, or `tcp_persub`.
    pub mode: &'static str,
    pub schedule_digest: u64,
    /// FNV-1a over every document's final text: the convergence
    /// receipt. Same seed + same mode ⇒ same value.
    pub doc_digest: u64,
    pub ops: u64,
    pub wall: Duration,
    /// Per-op-class latency (labelled by [`OpClass::label`]).
    pub classes: ClassRecorder,
    /// Storage-engine counter deltas over the run.
    pub commits: u64,
    pub txns_begun: u64,
    /// TCP runs only: the server's counters and the process's peak
    /// thread count observed during the run.
    pub net: Option<tendax_net::NetServerStats>,
    pub threads: Option<u64>,
    /// Durable fixtures only: the WAL flush receipts.
    pub wal: Option<WalReceipt>,
}

impl RunReport {
    pub fn throughput_per_s(&self) -> f64 {
        self.ops as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// The fixture both drivers build: same creation order ⇒ same ids.
struct Corpus {
    tendax: Tendax,
    users: Vec<UserId>,
    docs: Vec<DocId>,
}

/// `TENDAX_LANPARTY_DURABILITY=fsync|buffered|none` swaps the bench
/// fixture from in-memory to a file-backed WAL at that durability level
/// (shard count via `TENDAX_WAL_SHARDS`, picked up by
/// `Options::default`), turning a run into a WAL-receipt generator.
fn durable_fixture_level() -> Option<DurabilityLevel> {
    match std::env::var("TENDAX_LANPARTY_DURABILITY")
        .ok()?
        .to_ascii_lowercase()
        .as_str()
    {
        "fsync" => Some(DurabilityLevel::Fsync),
        "buffered" => Some(DurabilityLevel::Buffered),
        "none" => Some(DurabilityLevel::None),
        _ => None,
    }
}

fn build_fixture(config: &WorkloadConfig) -> Corpus {
    let tendax = match durable_fixture_level() {
        Some(durability) => {
            // Each driver gets a fresh log file; the OS temp dir is the
            // same scratch space the micro-benches use.
            static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!("tendax-lanparty-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("bench tmp dir");
            let path = dir.join(format!(
                "fixture-{}.wal",
                SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            ));
            let _ = std::fs::remove_file(&path);
            Tendax::open(
                &path,
                Options {
                    durability,
                    ..Options::default()
                },
            )
            .expect("durable instance")
        }
        None => Tendax::in_memory().expect("in-memory instance"),
    };
    let users: Vec<UserId> = (0..config.users)
        .map(|i| tendax.create_user(&format!("user{i}")).expect("user"))
        .collect();
    let docs: Vec<DocId> = (0..config.docs)
        .map(|d| {
            tendax
                .create_document(&format!("doc{d:04}"), users[d % users.len()])
                .expect("doc")
        })
        .collect();
    Corpus {
        tendax,
        users,
        docs,
    }
}

/// Snapshot the corpus database's WAL counters (`None` for the
/// in-memory fixture, which has no WAL).
fn wal_receipt(corpus: &Corpus) -> Option<WalReceipt> {
    let db = corpus.tendax.textdb().database();
    let shard_count = db.wal_shard_count();
    if shard_count == 0 {
        return None;
    }
    let shards = db.wal_shard_stats();
    Some(WalReceipt {
        shard_count,
        max_concurrent_flush_leaders: db.wal_max_concurrent_flush_leaders(),
        fsyncs: shards.iter().map(|s| s.fsyncs).sum(),
        batches: shards.iter().map(|s| s.batches_flushed).sum(),
        records: shards.iter().map(|s| s.records_flushed).sum(),
        flush_wait_ms: shards.iter().map(|s| s.flush_wait_ns).sum::<u64>() as f64 / 1e6,
        per_shard_fsyncs: shards.iter().map(|s| s.fsyncs).collect(),
    })
}

/// Hash every document's final text (fresh handles, so the database —
/// not any session's view — is the source of truth).
fn doc_digest(corpus: &Corpus) -> u64 {
    let mut h = FNV_OFFSET;
    for &doc in &corpus.docs {
        let handle = corpus
            .tendax
            .textdb()
            .open(doc, corpus.users[0])
            .expect("open for digest");
        h = fnv1a(h, handle.text().as_bytes());
        h = fnv1a(h, b"\x00");
    }
    h
}

/// The search vocabulary: same word list the typing bursts draw from,
/// indexed by the op's pre-drawn `a`.
fn search_term(a: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(a);
    text_of_words(&mut rng, 1)
}

/// Run the metadata portion of an op (shared by both drivers; these
/// services live server-side either way).
struct MetaServices {
    engine: SearchEngine,
    folder_watch: tendax_core::FolderSet,
}

fn meta_services(corpus: &Corpus) -> MetaServices {
    let folder = corpus
        .tendax
        .folders()
        .create_folder(
            "lan-party-hot",
            corpus.users[0],
            FolderRule::ContentContains("database".into()),
        )
        .expect("folder");
    let folder_watch = corpus.tendax.folders().watch(folder).expect("watch");
    let engine = corpus.tendax.search().expect("search engine");
    MetaServices {
        engine,
        folder_watch,
    }
}

/// Execute a metadata op. Returns true if it ran (for op accounting).
fn run_meta_op(corpus: &Corpus, meta: &mut MetaServices, op: &WorkloadOp) {
    match op.class {
        OpClass::FolderRefresh => {
            meta.folder_watch.refresh().expect("folder refresh");
        }
        OpClass::Search => {
            let doc = corpus.docs[op.doc];
            meta.engine.update_document(doc).expect("index update");
            meta.engine
                .search(&SearchQuery::terms(&search_term(op.a)).limit(10))
                .expect("search");
        }
        OpClass::Mining => {
            corpus
                .tendax
                .document_space(4.min(corpus.docs.len()))
                .expect("document space");
        }
        OpClass::Process => {
            let doc = corpus.docs[op.doc];
            let by = corpus.users[op.user];
            let assignee = corpus.users[(op.a as usize) % corpus.users.len()];
            let task = corpus
                .tendax
                .process()
                .define_task(doc, by, TaskSpec::new("review", Assignee::User(assignee)))
                .expect("define task");
            // Route: the assignee finds it in their inbox and completes.
            let inbox = corpus.tendax.process().inbox(assignee).expect("inbox");
            assert!(inbox.iter().any(|t| t.id == task), "task not routed");
            corpus
                .tendax
                .process()
                .complete(task, assignee, "done")
                .expect("complete");
        }
        OpClass::Typing | OpClass::Paste => unreachable!("text op routed to meta"),
    }
}

/// Drive the schedule through in-process editor sessions on the bus.
pub fn run_in_process(schedule: &Schedule) -> RunReport {
    let corpus = build_fixture(&schedule.config);
    let sessions: Vec<_> = (0..schedule.config.users)
        .map(|i| {
            corpus
                .tendax
                .connect(&format!("user{i}"), Platform::Linux)
                .expect("connect")
        })
        .collect();
    let mut meta = meta_services(&corpus);
    let stats0 = corpus.tendax.stats();

    // Editors are opened lazily per (user, doc) and cached — the demo's
    // "everyone has their windows open" steady state.
    let mut editors: HashMap<(usize, usize), EditorDoc> = HashMap::new();
    let mut classes = ClassRecorder::new();
    let start = Instant::now();
    for op in &schedule.ops {
        let t0 = Instant::now();
        match op.class {
            OpClass::Typing => {
                let ed = open_editor(&mut editors, &sessions, &corpus, op.user, op.doc);
                ed.sync();
                let pos = (op.a as usize) % (ed.len() + 1);
                ed.type_text(pos, &op.text).expect("typing burst");
            }
            OpClass::Paste => {
                let (src, start_draw, len_draw) = unpack_paste(op.b);
                let src_idx = src % schedule.config.docs;
                let clip = {
                    // Copy from a fresh read view of the source doc.
                    let hs = corpus
                        .tendax
                        .textdb()
                        .open(corpus.docs[src_idx], corpus.users[op.user])
                        .expect("open src");
                    if hs.len() < 2 {
                        None
                    } else {
                        let start = start_draw % (hs.len() - 1);
                        let len = (len_draw % (hs.len() - start)).max(1);
                        Some(hs.copy(start, len).expect("copy"))
                    }
                };
                if let Some(clip) = clip {
                    let ed = open_editor(&mut editors, &sessions, &corpus, op.user, op.doc);
                    ed.sync();
                    let pos = (op.a as usize) % (ed.len() + 1);
                    ed.paste(pos, &clip).expect("paste");
                }
            }
            _ => run_meta_op(&corpus, &mut meta, op),
        }
        classes.record(op.class.label(), t0.elapsed());
    }
    let wall = start.elapsed();
    // Every session drains its queue so the bus is quiescent before the
    // digest reads the database.
    for ed in editors.values_mut() {
        ed.sync();
    }
    let stats1 = corpus.tendax.stats();
    RunReport {
        mode: "inproc",
        schedule_digest: schedule.digest(),
        doc_digest: doc_digest(&corpus),
        ops: schedule.ops.len() as u64,
        wall,
        classes,
        commits: stats1.commits - stats0.commits,
        txns_begun: stats1.txns_begun - stats0.txns_begun,
        net: None,
        threads: None,
        wal: wal_receipt(&corpus),
    }
}

fn open_editor<'a>(
    editors: &'a mut HashMap<(usize, usize), EditorDoc>,
    sessions: &[tendax_core::EditorSession],
    corpus: &Corpus,
    user: usize,
    doc: usize,
) -> &'a mut EditorDoc {
    editors.entry((user, doc)).or_insert_with(|| {
        sessions[user]
            .open_id(corpus.docs[doc])
            .expect("open editor")
    })
}

fn unpack_paste(b: u64) -> (usize, usize, usize) {
    (
        (b >> 32) as usize,
        ((b >> 8) & 0xFFFF) as usize,
        (b & 0xFF) as usize,
    )
}

/// Current thread count of this process (Linux; 0 if unreadable).
pub fn process_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Drive the schedule over the TCP transport: one [`NetClient`] per
/// user on loopback, mirrors kept in lockstep after every committed
/// edit (so positions resolve deterministically), metadata ops executed
/// server-side.
pub fn run_tcp(schedule: &Schedule, net_config: NetConfig, mode: &'static str) -> RunReport {
    let corpus = build_fixture(&schedule.config);
    let server = NetServer::bind("127.0.0.1:0", corpus.tendax.server().clone(), net_config)
        .expect("bind lan-party server");
    let addr = server.local_addr();
    let clients: Vec<NetClient> = (0..schedule.config.users)
        .map(|i| {
            NetClient::connect_with(addr, &format!("user{i}"), ClientConfig::default())
                .expect("connect client")
        })
        .collect();
    let mut meta = meta_services(&corpus);
    let stats0 = corpus.tendax.stats();

    // (user, doc) -> wire doc id, subscribed lazily; per-doc subscriber
    // list for the post-edit convergence barrier.
    let mut subs: HashMap<(usize, usize), u64> = HashMap::new();
    let mut watchers: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut classes = ClassRecorder::new();
    let mut peak_threads = process_threads();
    let start = Instant::now();
    for op in &schedule.ops {
        let t0 = Instant::now();
        match op.class {
            OpClass::Typing | OpClass::Paste => {
                let doc_id = subscribe(&mut subs, &mut watchers, &clients, op.user, op.doc);
                let client = &clients[op.user];
                let text = match op.class {
                    OpClass::Typing => Some(op.text.clone()),
                    // The wire protocol carries insert/delete only:
                    // paste is rendered as an insert of the copied
                    // mirror slice (lineage is an in-process feature).
                    OpClass::Paste => {
                        let (src, start_draw, len_draw) = unpack_paste(op.b);
                        let src_idx = src % schedule.config.docs;
                        let src_id =
                            subscribe(&mut subs, &mut watchers, &clients, op.user, src_idx);
                        let src_text = client.text(src_id).expect("mirror text");
                        let chars: Vec<char> = src_text.chars().collect();
                        if chars.len() < 2 {
                            None
                        } else {
                            let start = start_draw % (chars.len() - 1);
                            let len = (len_draw % (chars.len() - start)).max(1);
                            Some(chars[start..start + len].iter().collect())
                        }
                    }
                    _ => unreachable!(),
                };
                if let Some(text) = text {
                    let mirror_len = client.text(doc_id).map_or(0, |t| t.chars().count());
                    let pos = (op.a as usize) % (mirror_len + 1);
                    let (_, ts) = client
                        .insert(doc_id, pos, &text)
                        .expect("insert over the wire");
                    // Convergence barrier: every subscribed mirror sees
                    // this commit before the next op — the determinism
                    // contract (and a realistic "everyone's screen
                    // updated" latency measure).
                    for &w in watchers.get(&op.doc).expect("watchers") {
                        assert!(
                            clients[w].wait_synced(doc_id, ts, Duration::from_secs(30)),
                            "mirror of user{w} never converged"
                        );
                    }
                }
            }
            _ => run_meta_op(&corpus, &mut meta, op),
        }
        classes.record(op.class.label(), t0.elapsed());
        peak_threads = peak_threads.max(process_threads());
    }
    let wall = start.elapsed();
    let stats1 = corpus.tendax.stats();
    let net = server.stats();
    drop(clients);
    drop(server);
    RunReport {
        mode,
        schedule_digest: schedule.digest(),
        doc_digest: doc_digest(&corpus),
        ops: schedule.ops.len() as u64,
        wall,
        classes,
        commits: stats1.commits - stats0.commits,
        txns_begun: stats1.txns_begun - stats0.txns_begun,
        net: Some(net),
        threads: Some(peak_threads),
        wal: wal_receipt(&corpus),
    }
}

fn subscribe(
    subs: &mut HashMap<(usize, usize), u64>,
    watchers: &mut HashMap<usize, Vec<usize>>,
    clients: &[NetClient],
    user: usize,
    doc: usize,
) -> u64 {
    if let Some(&id) = subs.get(&(user, doc)) {
        return id;
    }
    let id = clients[user]
        .subscribe(&format!("doc{doc:04}"))
        .expect("subscribe");
    subs.insert((user, doc), id);
    watchers.entry(doc).or_default().push(user);
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WorkloadConfig {
        WorkloadConfig {
            users: 3,
            docs: 4,
            ops: 40,
            seed: 7,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn same_seed_same_schedule_and_digest() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_seed_different_digest() {
        let a = generate(&small());
        let b = generate(&WorkloadConfig { seed: 8, ..small() });
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn zipf_skews_toward_low_indices() {
        let cfg = WorkloadConfig {
            ops: 2_000,
            ..small()
        };
        let s = generate(&cfg);
        let hot = s.ops.iter().filter(|o| o.doc == 0).count();
        let cold = s.ops.iter().filter(|o| o.doc == cfg.docs - 1).count();
        assert!(
            hot > 2 * cold.max(1),
            "doc 0 ({hot}) should dominate doc {} ({cold})",
            cfg.docs - 1
        );
    }

    #[test]
    fn mix_covers_all_classes() {
        let s = generate(&WorkloadConfig {
            ops: 2_000,
            ..small()
        });
        for class in [
            OpClass::Typing,
            OpClass::Paste,
            OpClass::FolderRefresh,
            OpClass::Search,
            OpClass::Mining,
            OpClass::Process,
        ] {
            assert!(
                s.ops.iter().any(|o| o.class == class),
                "{class:?} never generated"
            );
        }
    }

    #[test]
    fn in_process_run_executes_all_ops() {
        let s = generate(&small());
        let r = run_in_process(&s);
        assert_eq!(r.ops, 40);
        assert!(r.commits > 0);
        assert!(r.txns_begun >= r.commits);
        assert_ne!(r.doc_digest, 0);
        assert!(r.throughput_per_s() > 0.0);
    }
}
