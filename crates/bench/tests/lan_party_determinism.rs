//! The lan-party harness's reproducibility contract: the same seed
//! must produce a byte-identical op schedule (provable via the digest)
//! AND byte-identical final documents, in both the in-process and the
//! TCP drivers. Without this, `bench_results/lan_party.json` lines from
//! different machines or different dates would not be comparable.

use tendax_bench::lanparty::{generate, run_in_process, run_tcp, WorkloadConfig};
use tendax_net::{ForwarderMode, NetConfig};

fn cfg(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        users: 3,
        docs: 5,
        ops: 60,
        seed,
        ..WorkloadConfig::default()
    }
}

#[test]
fn same_seed_reproduces_schedule_digest() {
    let a = generate(&cfg(1234));
    let b = generate(&cfg(1234));
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.ops.len(), b.ops.len());
    for (x, y) in a.ops.iter().zip(&b.ops) {
        assert_eq!(x, y);
    }
    // And a different seed diverges (the digest actually discriminates).
    assert_ne!(generate(&cfg(1235)).digest(), a.digest());
}

#[test]
fn in_process_runs_are_byte_identical() {
    let schedule = generate(&cfg(77));
    let r1 = run_in_process(&schedule);
    let r2 = run_in_process(&schedule);
    assert_eq!(r1.schedule_digest, r2.schedule_digest);
    assert_eq!(
        r1.doc_digest, r2.doc_digest,
        "two in-process runs of one schedule must end on identical bytes"
    );
    assert_eq!(r1.commits, r2.commits);
}

#[test]
fn tcp_runs_are_byte_identical_across_forwarder_modes() {
    let schedule = generate(&cfg(78));
    let pooled = run_tcp(
        &schedule,
        NetConfig {
            forwarder: ForwarderMode::Pooled(2),
            ..NetConfig::default()
        },
        "tcp_pooled",
    );
    let persub = run_tcp(
        &schedule,
        NetConfig {
            forwarder: ForwarderMode::PerSubscription,
            ..NetConfig::default()
        },
        "tcp_persub",
    );
    assert_eq!(pooled.schedule_digest, persub.schedule_digest);
    assert_eq!(
        pooled.doc_digest, persub.doc_digest,
        "forwarder strategy must not change the bytes"
    );
    assert_eq!(pooled.commits, persub.commits);
}

#[test]
fn tcp_and_rerun_are_byte_identical() {
    let schedule = generate(&cfg(79));
    let r1 = run_tcp(&schedule, NetConfig::default(), "tcp_pooled");
    let r2 = run_tcp(&schedule, NetConfig::default(), "tcp_pooled");
    assert_eq!(r1.doc_digest, r2.doc_digest);
}
