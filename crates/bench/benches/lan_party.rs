//! Experiment **A10** — the "LAN party at scale" macro-benchmark.
//!
//! One seeded schedule (see `tendax_bench::lanparty`) is driven through
//! three stacks:
//!
//! * `inproc`     — editor sessions on the in-process bus,
//! * `tcp_pooled` — the TCP transport with the pooled event forwarder
//!   (the default since the accept-path burn-down),
//! * `tcp_persub` — the TCP transport with the legacy one-pump-thread-
//!   per-subscription forwarder, kept as the A/B baseline.
//!
//! Each mode reports aggregate throughput, per-op-class p50/p99/max
//! latency, storage retry amplification, and (TCP modes) the server's
//! counters plus the peak process thread count — the number the
//! forwarder-pool burn-down exists to flatten. The schedule digest in
//! every line is the reproducibility receipt: same seed ⇒ same digest
//! ⇒ same op stream.
//!
//! ```text
//! cargo bench -p tendax-bench --bench lan_party
//! ```
//!
//! Pass `--test` for a small smoke run, `--seed N` to pick a schedule,
//! and `--json <path>` to append one JSON line per mode (consumed by
//! `scripts/bench_lanparty.sh` and `scripts/bench_compare.py`). Set
//! `TENDAX_LANPARTY_DURABILITY=fsync` (with `TENDAX_WAL_SHARDS=N`) to
//! run against a file-backed WAL and emit the A11 shard receipts
//! (`wal_shard_count`, per-shard fsyncs, flush wait, peak concurrent
//! flush leaders) in every line.

use std::path::PathBuf;

use tendax_bench::lanparty::{generate, run_in_process, run_tcp, RunReport, WorkloadConfig};
use tendax_bench::stats::{append_json_line, json_object, JsonValue};
use tendax_net::{ForwarderMode, NetConfig};

struct Config {
    workload: WorkloadConfig,
    quick: bool,
    json_path: Option<String>,
}

fn parse_args() -> Config {
    let mut quick = false;
    let mut json_path = None;
    let mut seed = 42;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--test" => quick = true,
            "--json" => json_path = args.next(),
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes a u64")
            }
            _ => {} // --bench, filters, ... accepted and ignored
        }
    }
    let workload = if quick {
        WorkloadConfig {
            users: 4,
            docs: 6,
            ops: 80,
            seed,
            ..WorkloadConfig::default()
        }
    } else {
        WorkloadConfig {
            users: 8,
            docs: 16,
            ops: 1_200,
            seed,
            ..WorkloadConfig::default()
        }
    };
    Config {
        workload,
        quick,
        json_path,
    }
}

fn print_report(r: &mut RunReport) {
    println!(
        "{:<11} {:>7} ops {:>9.0} ops/s  wall {:>7.1}ms  commits {:>6}  txns {:>6}{}",
        r.mode,
        r.ops,
        r.throughput_per_s(),
        r.wall.as_secs_f64() * 1e3,
        r.commits,
        r.txns_begun,
        match r.threads {
            Some(t) => format!("  peak threads {t}"),
            None => String::new(),
        }
    );
    for (class, s) in r.classes.summaries() {
        println!(
            "    {:<8} n={:<6} p50 {:>9.1}µs  p99 {:>9.1}µs  max {:>9.1}µs",
            class, s.count, s.p50_us, s.p99_us, s.max_us
        );
    }
    if let Some(net) = &r.net {
        println!(
            "    net: accepted {} forwarded {} dropped {} slow_disconnects {} forwarder_threads {} pool_spurious_wakeups {}",
            net.accepted,
            net.events_forwarded,
            net.frames_dropped,
            net.slow_disconnects,
            net.forwarder_threads,
            net.pool_spurious_wakeups
        );
    }
    if let Some(w) = &r.wal {
        println!(
            "    wal: shards {} max_leaders {} fsyncs {:?} flush_wait {:.1}ms batches {} records {}",
            w.shard_count,
            w.max_concurrent_flush_leaders,
            w.per_shard_fsyncs,
            w.flush_wait_ms,
            w.batches,
            w.records
        );
    }
}

fn json_line(cfg: &Config, r: &mut RunReport) -> String {
    let w = &cfg.workload;
    let mut pairs: Vec<(String, JsonValue)> = vec![
        ("bench".into(), JsonValue::Str("lan_party".into())),
        ("mode".into(), JsonValue::Str(r.mode.into())),
        ("quick".into(), JsonValue::Bool(cfg.quick)),
        ("seed".into(), JsonValue::U64(w.seed)),
        ("users".into(), JsonValue::U64(w.users as u64)),
        ("docs".into(), JsonValue::U64(w.docs as u64)),
        ("ops".into(), JsonValue::U64(r.ops)),
        (
            "schedule_digest".into(),
            JsonValue::Str(format!("{:016x}", r.schedule_digest)),
        ),
        (
            "doc_digest".into(),
            JsonValue::Str(format!("{:016x}", r.doc_digest)),
        ),
        (
            format!("{}_ops_per_s", r.mode),
            JsonValue::F64(r.throughput_per_s()),
        ),
        ("wall_ms".into(), JsonValue::F64(r.wall.as_secs_f64() * 1e3)),
        ("commits".into(), JsonValue::U64(r.commits)),
        ("txns_begun".into(), JsonValue::U64(r.txns_begun)),
    ];
    for (k, v) in r.classes.json_pairs() {
        pairs.push((k, v));
    }
    if let Some(net) = &r.net {
        pairs.push(("net_accepted".into(), JsonValue::U64(net.accepted)));
        pairs.push((
            "net_events_forwarded".into(),
            JsonValue::U64(net.events_forwarded),
        ));
        pairs.push((
            "net_frames_dropped".into(),
            JsonValue::U64(net.frames_dropped),
        ));
        pairs.push((
            "net_slow_disconnects".into(),
            JsonValue::U64(net.slow_disconnects),
        ));
        pairs.push((
            "net_forwarder_threads".into(),
            JsonValue::U64(net.forwarder_threads),
        ));
        pairs.push((
            "net_pool_spurious_wakeups".into(),
            JsonValue::U64(net.pool_spurious_wakeups),
        ));
    }
    if let Some(t) = r.threads {
        pairs.push(("peak_threads".into(), JsonValue::U64(t)));
    }
    if let Some(w) = &r.wal {
        pairs.push((
            "wal_shard_count".into(),
            JsonValue::U64(w.shard_count as u64),
        ));
        pairs.push((
            "wal_max_leaders".into(),
            JsonValue::U64(w.max_concurrent_flush_leaders),
        ));
        pairs.push(("wal_fsyncs".into(), JsonValue::U64(w.fsyncs)));
        pairs.push(("wal_batches".into(), JsonValue::U64(w.batches)));
        pairs.push(("wal_records".into(), JsonValue::U64(w.records)));
        pairs.push(("wal_flush_wait_ms".into(), JsonValue::F64(w.flush_wait_ms)));
        for (k, &n) in w.per_shard_fsyncs.iter().enumerate() {
            pairs.push((format!("wal_fsyncs_shard{k}"), JsonValue::U64(n)));
        }
    }
    json_object(&pairs)
}

fn main() {
    let cfg = parse_args();
    let w = &cfg.workload;
    println!(
        "lan_party: {} users x {} docs, {} ops, seed {}",
        w.users, w.docs, w.ops, w.seed
    );
    let schedule = generate(w);
    println!("schedule digest {:016x}", schedule.digest());

    let mut reports = vec![
        run_in_process(&schedule),
        run_tcp(
            &schedule,
            NetConfig {
                forwarder: ForwarderMode::Pooled(4),
                ..NetConfig::default()
            },
            "tcp_pooled",
        ),
        run_tcp(
            &schedule,
            NetConfig {
                forwarder: ForwarderMode::PerSubscription,
                ..NetConfig::default()
            },
            "tcp_persub",
        ),
    ];

    for r in &mut reports {
        print_report(r);
    }

    // The two TCP modes execute the same schedule against the same
    // fixture: they must land on identical bytes.
    assert_eq!(
        reports[1].doc_digest, reports[2].doc_digest,
        "pooled and per-subscription runs diverged"
    );

    if let Some(path) = &cfg.json_path {
        let path = PathBuf::from(path);
        for r in &mut reports {
            let line = json_line(&cfg, r);
            append_json_line(&path, &line).expect("append json line");
        }
        println!("appended {} lines to {}", reports.len(), path.display());
    }
}
