//! Version-history depth vs RAM residency: the tiered cold storage
//! benchmark.
//!
//! TeNDaX keeps every version of every character tuple, so a long-lived
//! document's history grows without bound. This bench drives one table
//! through deep update histories twice — once with the cold tier off
//! (everything stays in RAM) and once with it on (vacuum demotes history
//! into bloom-filtered runs) — and reports, per depth: the RAM-resident
//! version count and estimated bytes on each side, plus read rates at
//! the head (RAM-served) and at the oldest snapshot (cold-run-served).
//! Not a criterion bench: each measurement wants a fixed warm corpus, so
//! this is a plain `main` that prints a table. Run with:
//!
//! ```text
//! cargo bench -p tendax-bench --bench version_history
//! ```
//!
//! Pass `--test` for a quick smoke run and `--json <path>` to append one
//! JSON summary line (throughput keys end in `_per_s` for
//! `scripts/bench_compare.py`).

use std::io::Write as _;
use std::time::Instant;

use tendax_storage::{
    ColdOptions, DataType, Database, Options, Predicate, Row, RowId, TableDef, TableId, Ts, Value,
};

const TEXT_WIDTH: usize = 64;

struct Config {
    rows: u64,
    depths: Vec<u64>,
    budget: usize,
    quick: bool,
    json_path: Option<String>,
}

fn parse_args() -> Config {
    let mut quick = false;
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--test" => quick = true,
            "--json" => json_path = args.next(),
            _ => {} // --bench, filters, ... accepted and ignored
        }
    }
    Config {
        rows: if quick { 64 } else { 512 },
        depths: if quick {
            vec![8, 32]
        } else {
            vec![8, 32, 128, 512]
        },
        budget: if quick { 256 } else { 2048 },
        quick,
        json_path,
    }
}

fn table_def() -> TableDef {
    TableDef::new("chars")
        .column("doc", DataType::Id)
        .column("text", DataType::Text)
        .index("chars_by_doc", &["doc"])
}

struct Corpus {
    db: Database,
    t: TableId,
    rids: Vec<RowId>,
    /// Commit ts of the first full round — the oldest history snapshot.
    oldest: Ts,
    build_secs: f64,
}

/// Build a corpus of `rows` rows carried through `depth` update rounds.
/// With `cold` set, vacuum runs whenever RAM exceeds the budget — the
/// maintenance thread's cold arm, driven synchronously for stable
/// numbers.
fn build(cfg: &Config, depth: u64, cold: Option<ColdOptions>, path: &std::path::Path) -> Corpus {
    let opts = Options {
        cold_storage: cold,
        ..Options::default()
    };
    let db = Database::open(path, opts).expect("open");
    let t = db.create_table(table_def()).expect("create table");
    let payload = "x".repeat(TEXT_WIDTH);
    let start = Instant::now();
    let mut rids = Vec::with_capacity(cfg.rows as usize);
    {
        let mut txn = db.begin();
        for i in 0..cfg.rows {
            rids.push(
                txn.insert(
                    t,
                    Row::new(vec![Value::Id(i % 8), Value::Text(payload.clone())]),
                )
                .expect("insert"),
            );
        }
        txn.commit().expect("commit");
    }
    let mut oldest = 0;
    for round in 0..depth {
        let mut txn = db.begin();
        for (i, &rid) in rids.iter().enumerate() {
            txn.update(
                t,
                rid,
                Row::new(vec![
                    Value::Id(i as u64 % 8),
                    Value::Text(format!("{payload}-r{round}")),
                ]),
            )
            .expect("update");
        }
        let ts = txn.commit().expect("commit");
        if round == 0 {
            oldest = ts;
        }
        if db.cold_storage_enabled() && db.ram_version_count() > cfg.budget {
            db.vacuum();
            // What the maintenance thread's compaction arm would do.
            db.cold_compact_if_needed().expect("compact");
        }
    }
    Corpus {
        db,
        t,
        rids,
        oldest,
        build_secs: start.elapsed().as_secs_f64(),
    }
}

/// Point-get rate (gets/sec) over every row at snapshot `ts` (None =
/// head).
fn get_rate(c: &Corpus, iters: u32, ts: Option<Ts>) -> f64 {
    let txn = match ts {
        Some(ts) => c.db.begin_at(ts).expect("begin_at"),
        None => c.db.begin(),
    };
    // Warmup.
    for &rid in &c.rids {
        assert!(txn.get(c.t, rid).expect("get").is_some());
    }
    let start = Instant::now();
    for _ in 0..iters {
        for &rid in &c.rids {
            assert!(txn.get(c.t, rid).expect("get").is_some());
        }
    }
    (iters as u64 * c.rids.len() as u64) as f64 / start.elapsed().as_secs_f64()
}

/// Estimated heap bytes of the RAM-resident versions of table `t`.
fn ram_bytes(c: &Corpus) -> u64 {
    let txn = c.db.begin();
    txn.scan(c.t, &Predicate::True)
        .expect("scan")
        .iter()
        .map(|(_, r)| r.approx_bytes() as u64)
        .sum::<u64>()
        * c.db.ram_version_count() as u64
        / c.rids.len().max(1) as u64
}

fn main() {
    let cfg = parse_args();
    let iters: u32 = if cfg.quick { 2 } else { 10 };
    let dir = std::env::temp_dir().join(format!("tendax-vh-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");

    println!(
        "version_history: rows={} budget={} depths={:?} (quick={})",
        cfg.rows, cfg.budget, cfg.depths, cfg.quick
    );
    println!(
        "{:>6}  {:>12} {:>12}  {:>12} {:>12}  {:>10} {:>10} {:>10}",
        "depth", "ram-hot", "ram-cold", "bytes-hot", "bytes-cold", "head/s", "hist/s", "demoted"
    );

    let mut head_rate = 0.0;
    let mut hist_rate = 0.0;
    let mut hot_hist_rate = 0.0;
    let mut demoted = 0u64;
    let (mut ram_hot_last, mut ram_cold_last) = (0usize, 0usize);
    for &depth in &cfg.depths {
        let hot = build(&cfg, depth, None, &dir.join(format!("hot-{depth}.wal")));
        let cold = build(
            &cfg,
            depth,
            Some(ColdOptions {
                memtable_version_budget: cfg.budget,
                ..ColdOptions::default()
            }),
            &dir.join(format!("cold-{depth}.wal")),
        );
        let stats = cold.db.stats();
        let (ram_hot, ram_cold) = (hot.db.ram_version_count(), cold.db.ram_version_count());
        let (bytes_hot, bytes_cold) = (ram_bytes(&hot), ram_bytes(&cold));
        head_rate = get_rate(&cold, iters, None);
        hist_rate = get_rate(&cold, iters, Some(cold.oldest));
        hot_hist_rate = get_rate(&hot, iters, Some(hot.oldest));
        demoted = stats.cold_versions_demoted;
        ram_hot_last = ram_hot;
        ram_cold_last = ram_cold;
        println!(
            "{:>6}  {:>12} {:>12}  {:>12} {:>12}  {:>10.0} {:>10.0} {:>10}",
            depth, ram_hot, ram_cold, bytes_hot, bytes_cold, head_rate, hist_rate, demoted
        );
        let _ = hot.build_secs;
    }

    let _ = std::fs::remove_dir_all(&dir);

    if let Some(path) = cfg.json_path {
        let depth_max = cfg.depths.last().copied().unwrap_or(0);
        let line = format!(
            "{{\"rows\":{},\"depth_max\":{},\"budget\":{},\"quick\":{},\
             \"ram_versions_hot\":{},\"ram_versions_cold\":{},\
             \"cold_versions_demoted\":{},\
             \"head_get_per_s\":{:.1},\"cold_hist_get_per_s\":{:.1},\
             \"hot_hist_get_per_s\":{:.1}}}",
            cfg.rows,
            depth_max,
            cfg.budget,
            cfg.quick,
            ram_hot_last,
            ram_cold_last,
            demoted,
            head_rate,
            hist_rate,
            hot_hist_rate,
        );
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open json output");
        writeln!(f, "{line}").expect("write json");
        println!("json appended to {path}");
    }
}
