//! Experiment **P1** — "very fast transactions for all editing tasks"
//! (§2 of the paper, citing Hodel & Dittrich's DKE 2004 measurements).
//!
//! Measures the latency of single editing transactions against document
//! size: typing one character, deleting one character, and pasting spans
//! of increasing length. The paper's claim is that editing latency stays
//! interactive (sub-millisecond to low-millisecond) regardless of
//! document size; the *shape* to reproduce is a flat-ish curve in
//! document size (position lookup is logarithmic, row writes are O(1)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tendax_core::{Platform, Tendax};

fn editor_with_doc(len: usize) -> (Tendax, tendax_core::EditorSession, tendax_core::EditorDoc) {
    let tx = Tendax::in_memory().expect("instance");
    tx.create_user("u").expect("user");
    let u = tx.textdb().user_by_name("u").expect("u");
    tx.create_document("d", u).expect("doc");
    let s = tx.connect("u", Platform::Linux).expect("session");
    let mut d = s.open("d").expect("open");
    // Build in chunks to keep setup fast.
    let chunk = "abcdefghij".repeat(100); // 1000 chars
    let mut remaining = len;
    while remaining > 0 {
        let n = remaining.min(1000);
        d.type_text(d.len(), &chunk[..n]).expect("setup typing");
        remaining -= n;
    }
    (tx, s, d)
}

fn bench_insert_char(c: &mut Criterion) {
    let mut group = c.benchmark_group("p1_insert_char_vs_doc_size");
    group.sample_size(20);
    for &size in &[1_000usize, 10_000, 50_000] {
        let (_tx, _s, mut doc) = editor_with_doc(size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            let mut pos = size / 2;
            b.iter(|| {
                doc.type_text(pos, "x").expect("typed char");
                pos += 1;
            });
        });
    }
    group.finish();
}

fn bench_delete_char(c: &mut Criterion) {
    let mut group = c.benchmark_group("p1_delete_char_vs_doc_size");
    group.sample_size(20);
    for &size in &[1_000usize, 10_000, 50_000] {
        let (_tx, _s, mut doc) = editor_with_doc(size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            // Delete + refill pair so the document size stays stable
            // across however many iterations Criterion runs.
            b.iter(|| {
                doc.delete(doc.len() / 2, 1).expect("deleted char");
                doc.type_text(doc.len() / 2, "x").expect("refill");
            });
        });
    }
    group.finish();
}

fn bench_paste_span(c: &mut Criterion) {
    let mut group = c.benchmark_group("p1_paste_vs_span_length");
    group.sample_size(15);
    let (_tx, _s, mut doc) = editor_with_doc(10_000);
    for &span in &[10usize, 100, 1000] {
        let clip = doc.copy(0, span).expect("copy");
        group.bench_with_input(BenchmarkId::from_parameter(span), &span, |b, _| {
            b.iter(|| {
                doc.paste(doc.len() / 2, &clip).expect("pasted");
            });
        });
    }
    group.finish();
}

fn bench_open_document(c: &mut Criterion) {
    let mut group = c.benchmark_group("p1_open_vs_doc_size");
    group.sample_size(10);
    for &size in &[1_000usize, 10_000] {
        let (tx, _s, doc) = editor_with_doc(size);
        let id = doc.doc();
        let u = tx.textdb().user_by_name("u").expect("u");
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| tx.textdb().open(id, u).expect("open"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_insert_char,
    bench_delete_char,
    bench_paste_span,
    bench_open_document
);
criterion_main!(benches);
