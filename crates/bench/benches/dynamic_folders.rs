//! Experiment **D3** — dynamic folders ("its content is fluent and may
//! change within seconds").
//!
//! Measures folder evaluation latency against corpus size and rule
//! complexity, and the incremental refresh path after churn (the
//! "changes within seconds" behaviour).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tendax_bench::build_corpus;
use tendax_core::FolderRule;

fn bench_evaluate_vs_corpus(c: &mut Criterion) {
    let mut group = c.benchmark_group("d3_folder_eval_vs_corpus_size");
    group.sample_size(10);
    for &n_docs in &[10usize, 50, 200] {
        let corpus = build_corpus(5, n_docs, 30, 42);
        let folders = corpus.tendax.folders().clone();
        let rule = FolderRule::ReadBy {
            user: corpus.users[1].0,
            since: 0,
        };
        group.bench_with_input(BenchmarkId::from_parameter(n_docs), &n_docs, |b, _| {
            b.iter(|| folders.evaluate_rule(&rule).expect("evaluated"));
        });
    }
    group.finish();
}

fn bench_rule_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("d3_folder_rule_complexity");
    group.sample_size(10);
    let corpus = build_corpus(5, 50, 30, 42);
    let folders = corpus.tendax.folders().clone();
    let user = corpus.users[0].0;

    let cheap = FolderRule::CreatedBy { user };
    let medium = FolderRule::CreatedBy { user }
        .and(FolderRule::StateIs("draft".into()))
        .and(FolderRule::MinSize(10));
    let expensive = FolderRule::ContentContains("database".into());

    for (name, rule) in [
        ("metadata_only", &cheap),
        ("conjunction", &medium),
        ("content_scan", &expensive),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| folders.evaluate_rule(rule).expect("evaluated"));
        });
    }
    group.finish();
}

fn bench_refresh_after_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("d3_folder_refresh_latency");
    group.sample_size(10);
    let corpus = build_corpus(4, 40, 20, 7);
    let tendax = corpus.tendax.clone();
    let folders = tendax.folders().clone();
    let watcher_user = corpus.users[2];
    let f = folders
        .create_folder(
            "recently-read",
            watcher_user,
            FolderRule::ReadBy {
                user: watcher_user.0,
                since: 0,
            },
        )
        .expect("folder");
    let mut set = folders.watch(f).expect("watch");
    let mut i = 0;
    group.bench_function("refresh_after_one_read_event", |b| {
        b.iter(|| {
            // Churn: the watcher reads one more document.
            let doc = corpus.docs[i % corpus.docs.len()];
            let _ = tendax.textdb().open(doc, watcher_user).expect("read");
            i += 1;
            set.refresh().expect("refreshed")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_evaluate_vs_corpus,
    bench_rule_complexity,
    bench_refresh_after_churn
);
criterion_main!(benches);
