//! Ablation **A3** — tombstone purging (text-level VACUUM).
//!
//! Tombstones keep undo/lineage alive but make every document open and
//! every position-index rebuild proportional to *all characters ever
//! typed*, not the visible text. This ablation quantifies the cost of
//! tombstone load on document open and what `purge_tombstones` buys
//! back, plus the purge operation's own throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tendax_core::{DocId, Tendax, UserId};

/// A document with `live` visible chars and `dead` tombstones.
fn churned_doc(live: usize, dead: usize) -> (Tendax, DocId, UserId) {
    let tx = Tendax::in_memory().expect("instance");
    let u = tx.create_user("u").expect("user");
    let doc = tx.create_document("d", u).expect("doc");
    let mut h = tx.textdb().open(doc, u).expect("open");
    h.insert_text(0, &"x".repeat(live)).expect("live text");
    // Churn: insert then delete in chunks to accumulate tombstones.
    let chunk = 100;
    let mut remaining = dead;
    while remaining > 0 {
        let n = remaining.min(chunk);
        h.insert_text(live / 2, &"y".repeat(n))
            .expect("churn insert");
        h.delete_range(live / 2, n).expect("churn delete");
        remaining -= n;
    }
    (tx, doc, u)
}

fn bench_open_with_tombstones(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_open_vs_tombstone_load");
    group.sample_size(10);
    const LIVE: usize = 2_000;
    for &dead in &[0usize, 2_000, 20_000] {
        let (tx, doc, u) = churned_doc(LIVE, dead);
        group.bench_with_input(BenchmarkId::new("unpurged", dead), &dead, |b, _| {
            b.iter(|| tx.textdb().open(doc, u).expect("open"));
        });
        if dead > 0 {
            tx.textdb()
                .purge_tombstones(doc, tx.textdb().now())
                .expect("purge");
            group.bench_with_input(BenchmarkId::new("purged", dead), &dead, |b, _| {
                b.iter(|| tx.textdb().open(doc, u).expect("open"));
            });
        }
    }
    group.finish();
}

fn bench_purge_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_purge_throughput");
    group.sample_size(10);
    for &dead in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(dead), &dead, |b, &dead| {
            b.iter_batched(
                || churned_doc(500, dead),
                |(tx, doc, _)| {
                    let stats = tx
                        .textdb()
                        .purge_tombstones(doc, tx.textdb().now())
                        .expect("purge");
                    assert_eq!(stats.purged_chars, dead);
                    stats
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_open_with_tombstones, bench_purge_throughput);
criterion_main!(benches);
