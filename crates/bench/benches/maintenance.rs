//! Experiment **A6** — sustained ingest under background maintenance.
//!
//! A fixed working set of rows is updated round-robin for N commits.
//! Without maintenance the WAL grows linearly with the commit count and
//! reopen replays all of it. With the background thread (auto-checkpoint
//! + auto-vacuum) the WAL and reopen time should stay flat even at 10×
//! the commits — and because the checkpoint's swap phase runs off the
//! commit lock, commit latency should barely notice the checkpoints
//! happening underneath.
//!
//! Reported per run: commit-latency p50/p99/max, final WAL size, reopen
//! time, and how many background checkpoints/vacuums fired. Not a
//! criterion bench (each run wants a fresh on-disk database and
//! wall-clock control), so this is a plain `main`:
//!
//! ```text
//! cargo bench -p tendax-bench --bench maintenance
//! ```
//!
//! Pass `--test` for a quick smoke run and `--json <path>` to append one
//! JSON summary line (consumed by `scripts/bench_maintenance.sh`).

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use tendax_bench::stats::LatencyHistogram;
use tendax_storage::{
    DataType, Database, MaintenanceOptions, Options, Predicate, Row, TableDef, Value,
};

const TEXT_WIDTH: usize = 64;
const WORKING_SET: u64 = 1_000;

struct Config {
    commits: u64,
    quick: bool,
    json_path: Option<String>,
}

fn parse_args() -> Config {
    let mut quick = false;
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--test" => quick = true,
            "--json" => json_path = args.next(),
            _ => {} // --bench, filters, ... accepted and ignored
        }
    }
    Config {
        commits: if quick { 1_000 } else { 20_000 },
        quick,
        json_path,
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tendax-bench-maint-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

fn maintenance_budgets(quick: bool) -> MaintenanceOptions {
    MaintenanceOptions {
        interval: Duration::from_millis(5),
        vacuum_pruneable: 5_000,
        checkpoint_wal_bytes: if quick { 256 << 10 } else { 1 << 20 },
        checkpoint_wal_records: u64::MAX, // byte budget drives it
        ..MaintenanceOptions::default()
    }
}

struct RunResult {
    label: &'static str,
    commits: u64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    wal_bytes: u64,
    reopen_ms: f64,
    checkpoints: u64,
    vacuums: u64,
}

/// Seed the working set, run `commits` round-robin updates timing each
/// commit, then drop the database and time a cold reopen.
fn run(label: &'static str, maintenance: Option<MaintenanceOptions>, commits: u64) -> RunResult {
    let path = tmp(&format!("{label}.wal"));
    let opts = Options {
        maintenance,
        ..Options::default()
    };
    let payload = "x".repeat(TEXT_WIDTH);
    let (checkpoints, vacuums);
    {
        let db = Database::open(&path, opts).expect("open");
        let t = db
            .create_table(
                TableDef::new("chars")
                    .column("seq", DataType::Int)
                    .column("text", DataType::Text),
            )
            .expect("create table");
        let mut rids = Vec::with_capacity(WORKING_SET as usize);
        let mut txn = db.begin();
        for _ in 0..WORKING_SET {
            rids.push(
                txn.insert(
                    t,
                    Row::new(vec![Value::Int(0), Value::Text(payload.clone())]),
                )
                .expect("seed"),
            );
        }
        txn.commit().expect("seed commit");

        let mut lat = LatencyHistogram::with_capacity(commits as usize);
        for i in 0..commits {
            let rid = rids[(i % WORKING_SET) as usize];
            let start = Instant::now();
            let mut txn = db.begin();
            txn.set(
                t,
                rid,
                &[
                    ("seq", Value::Int(i as i64)),
                    ("text", Value::Text(payload.clone())),
                ],
            )
            .expect("update");
            txn.commit().expect("commit");
            lat.record(start.elapsed());
        }
        let stats = db.stats();
        checkpoints = stats.maintenance_checkpoints;
        vacuums = stats.maintenance_vacuums;
        let summary = lat.summary().expect("commits recorded");
        let wal_bytes = std::fs::metadata(&path).expect("wal meta").len();
        // Reopen timed below needs the db (and its maintenance thread)
        // gone first.
        drop(db);
        let start = Instant::now();
        let db = Database::open(&path, Options::default()).expect("reopen");
        let reopen_ms = start.elapsed().as_secs_f64() * 1e3;
        let t = db.table_id("chars").expect("table survives");
        assert_eq!(
            db.begin().count(t, &Predicate::True).expect("count") as u64,
            WORKING_SET,
            "working set lost across reopen"
        );
        return RunResult {
            label,
            commits,
            p50_us: summary.p50_us,
            p99_us: summary.p99_us,
            max_us: summary.max_us,
            wal_bytes,
            reopen_ms,
            checkpoints,
            vacuums,
        };
    }
}

fn main() {
    let cfg = parse_args();
    let budgets = maintenance_budgets(cfg.quick);

    let runs = [
        run("baseline_off", None, cfg.commits),
        run("maint_1x", Some(budgets.clone()), cfg.commits),
        run("maint_10x", Some(budgets), cfg.commits * 10),
    ];

    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9} {:>12} {:>9} {:>6} {:>5}",
        "run", "commits", "p50 µs", "p99 µs", "max µs", "wal bytes", "reopen", "ckpts", "vacs"
    );
    for r in &runs {
        println!(
            "{:<14} {:>9} {:>9.1} {:>9.1} {:>9.1} {:>12} {:>7.1}ms {:>6} {:>5}",
            r.label,
            r.commits,
            r.p50_us,
            r.p99_us,
            r.max_us,
            r.wal_bytes,
            r.reopen_ms,
            r.checkpoints,
            r.vacuums
        );
    }

    if let Some(path) = cfg.json_path {
        let mut fields: Vec<String> = vec![
            format!("\"commits\":{}", cfg.commits),
            format!("\"working_set\":{WORKING_SET}"),
            format!("\"quick\":{}", cfg.quick),
        ];
        for r in &runs {
            fields.push(format!("\"{}_p50_us\":{:.1}", r.label, r.p50_us));
            fields.push(format!("\"{}_p99_us\":{:.1}", r.label, r.p99_us));
            fields.push(format!("\"{}_max_us\":{:.1}", r.label, r.max_us));
            fields.push(format!("\"{}_wal_bytes\":{}", r.label, r.wal_bytes));
            fields.push(format!("\"{}_reopen_ms\":{:.2}", r.label, r.reopen_ms));
            fields.push(format!("\"{}_checkpoints\":{}", r.label, r.checkpoints));
            fields.push(format!("\"{}_vacuums\":{}", r.label, r.vacuums));
        }
        let line = format!("{{{}}}\n", fields.join(","));
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open json output");
        f.write_all(line.as_bytes()).expect("write json");
        println!("appended summary to {path}");
    }
}
