//! Experiment **D2** — business process definitions and flow ("tasks …
//! can be created, changed and routed dynamically, i.e. at run-time").
//!
//! Measures task definition, completion, re-routing, and inbox query
//! latency as the number of tasks in a document grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tendax_core::{Assignee, TaskSpec, Tendax};
use tendax_process::ProcessEngine;

fn engine_with_tasks(n_tasks: usize) -> (Tendax, ProcessEngine, tendax_core::UserId) {
    let tx = Tendax::in_memory().expect("instance");
    let alice = tx.create_user("alice").expect("alice");
    let bob = tx.create_user("bob").expect("bob");
    let doc = tx.create_document("d", alice).expect("doc");
    let engine = tx.process().clone();
    for i in 0..n_tasks {
        engine
            .define_task(
                doc,
                alice,
                TaskSpec::new(format!("task{i}"), Assignee::User(bob)),
            )
            .expect("task");
    }
    (tx, engine, bob)
}

fn bench_define_task(c: &mut Criterion) {
    let mut group = c.benchmark_group("d2_define_task");
    group.sample_size(20);
    let tx = Tendax::in_memory().expect("instance");
    let alice = tx.create_user("alice").expect("alice");
    let bob = tx.create_user("bob").expect("bob");
    let doc = tx.create_document("d", alice).expect("doc");
    let engine = tx.process().clone();
    let mut i = 0;
    group.bench_function("define", |b| {
        b.iter(|| {
            i += 1;
            engine
                .define_task(
                    doc,
                    alice,
                    TaskSpec::new(format!("t{i}"), Assignee::User(bob)),
                )
                .expect("defined")
        });
    });
    group.finish();
}

fn bench_inbox_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("d2_inbox_vs_task_count");
    group.sample_size(15);
    for &n in &[10usize, 100, 500] {
        let (_tx, engine, bob) = engine_with_tasks(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let inbox = engine.inbox(bob).expect("inbox");
                assert_eq!(inbox.len(), n);
                inbox
            });
        });
    }
    group.finish();
}

fn bench_complete_and_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("d2_workflow_transitions");
    group.sample_size(15);
    group.bench_function("complete_task", |b| {
        let tx = Tendax::in_memory().expect("instance");
        let alice = tx.create_user("alice").expect("alice");
        let bob = tx.create_user("bob").expect("bob");
        let doc = tx.create_document("d", alice).expect("doc");
        let engine = tx.process().clone();
        b.iter_batched(
            || {
                engine
                    .define_task(doc, alice, TaskSpec::new("t", Assignee::User(bob)))
                    .expect("task")
            },
            |task| engine.complete(task, bob, "done").expect("completed"),
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("reroute_chain_of_10", |b| {
        let tx = Tendax::in_memory().expect("instance");
        let alice = tx.create_user("alice").expect("alice");
        let bob = tx.create_user("bob").expect("bob");
        let doc = tx.create_document("d", alice).expect("doc");
        let engine = tx.process().clone();
        // A chain t0 <- t1 <- … <- t9; re-route the tail repeatedly.
        let mut prev = None;
        let mut tasks = Vec::new();
        for i in 0..10 {
            let mut spec = TaskSpec::new(format!("t{i}"), Assignee::User(bob));
            if let Some(p) = prev {
                spec = spec.after(p);
            }
            let t = engine.define_task(doc, alice, spec).expect("task");
            tasks.push(t);
            prev = Some(t);
        }
        let tail = *tasks.last().expect("tail");
        let mid = tasks[4];
        b.iter(|| {
            // Cycle detection walks the chain: this measures routing cost.
            engine
                .set_predecessor(tail, alice, Some(mid))
                .expect("reroute");
            engine
                .set_predecessor(tail, alice, Some(tasks[8]))
                .expect("reroute back");
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_define_task,
    bench_inbox_query,
    bench_complete_and_route
);
criterion_main!(benches);
