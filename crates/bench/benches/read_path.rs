//! Read-path throughput: full scans, filtered scans, point gets and
//! index lookups over wide rows, plus readers racing concurrent writers.
//!
//! This is the workload shape behind every live TeNDaX metadata feature
//! (dynamic folders, lineage, mining, search): scan- and index-read-heavy
//! over per-character tuples. Not a criterion bench: each measurement
//! wants a warm database of fixed size and wall-clock long enough to be
//! stable, so this is a plain `main` that prints a table. Run with:
//!
//! ```text
//! cargo bench -p tendax-bench --bench read_path
//! ```
//!
//! Pass `--test` (as criterion benches accept) for a quick smoke run, and
//! `--json <path>` to append one JSON summary line (consumed by
//! `scripts/bench_read.sh`).
//!
//! The `scan/deepclone` row deliberately deep-copies every returned row
//! into an owned `Row`, emulating the pre-zero-copy read path; comparing
//! it with `scan/full` A/Bs row sharing within a single binary.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use tendax_storage::{DataType, Database, Predicate, Row, TableDef, TableId, Value};

const TEXT_WIDTH: usize = 64;

struct Config {
    rows: u64,
    docs: u64,
    quick: bool,
    json_path: Option<String>,
}

fn parse_args() -> Config {
    let mut quick = false;
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--test" => quick = true,
            "--json" => json_path = args.next(),
            _ => {} // --bench, filters, ... accepted and ignored
        }
    }
    let rows = if quick { 5_000 } else { 100_000 };
    Config {
        rows,
        docs: 50,
        quick,
        json_path,
    }
}

/// Build the corpus: `rows` wide rows (64-byte text column, chars-table
/// shape) spread over `docs` documents, committed in batches.
fn setup(cfg: &Config) -> (Database, TableId) {
    let db = Database::open_in_memory();
    let t = db
        .create_table(
            TableDef::new("wide")
                .column("doc", DataType::Id)
                .column("seq", DataType::Int)
                .column("text", DataType::Text)
                .column("author", DataType::Id)
                .column("ts", DataType::Timestamp)
                .index("wide_by_doc", &["doc"]),
        )
        .expect("create table");
    let payload = "x".repeat(TEXT_WIDTH);
    let mut i = 0u64;
    while i < cfg.rows {
        let mut txn = db.begin();
        for _ in 0..1_000.min(cfg.rows - i) {
            txn.insert(
                t,
                Row::new(vec![
                    Value::Id(i % cfg.docs),
                    Value::Int(i as i64),
                    Value::Text(payload.clone()),
                    Value::Id(i % 7),
                    Value::Timestamp(i as i64),
                ]),
            )
            .expect("insert");
            i += 1;
        }
        txn.commit().expect("commit");
    }
    (db, t)
}

/// Time `f` over `iters` iterations; returns (rows/sec, checksum).
fn measure(iters: u32, rows_per_iter: u64, mut f: impl FnMut() -> u64) -> (f64, u64) {
    // One warmup iteration.
    let mut check = f();
    let start = Instant::now();
    for _ in 0..iters {
        check = check.wrapping_add(f());
    }
    let secs = start.elapsed().as_secs_f64();
    ((iters as u64 * rows_per_iter) as f64 / secs, check)
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:8.2} M/s", r / 1e6)
    } else {
        format!("{:8.1} k/s", r / 1e3)
    }
}

fn main() {
    let cfg = parse_args();
    let iters: u32 = if cfg.quick { 1 } else { 20 };
    let (db, t) = setup(&cfg);
    let mut results: Vec<(&str, f64)> = Vec::new();

    // Cold scan: fresh transaction per iteration, full table, no filter.
    let (rate, check) = measure(iters, cfg.rows, || {
        let txn = db.begin();
        let rows = txn.scan(t, &Predicate::True).expect("scan");
        let mut sum = 0u64;
        for (_, r) in &rows {
            sum += r
                .get(2)
                .and_then(|v| v.as_text())
                .map_or(0, |s| s.len() as u64);
        }
        assert_eq!(rows.len() as u64, cfg.rows);
        sum
    });
    println!("scan/full        {} (checksum {check})", fmt_rate(rate));
    results.push(("scan_full", rate));

    // Deep-clone scan: same scan, but every returned row is copied into
    // an owned Row — the cost model of the pre-zero-copy read path.
    let (rate, check) = measure(iters, cfg.rows, || {
        let txn = db.begin();
        let rows = txn.scan(t, &Predicate::True).expect("scan");
        let mut sum = 0u64;
        for (_, r) in &rows {
            let owned: Row = Row::clone(r);
            sum += owned
                .get(2)
                .and_then(|v| v.as_text())
                .map_or(0, |s| s.len() as u64);
        }
        sum
    });
    println!("scan/deepclone   {} (checksum {check})", fmt_rate(rate));
    results.push(("scan_deepclone", rate));

    // Hot scan: one transaction reused across iterations (warm handles).
    {
        let txn = db.begin();
        let (rate, _) = measure(iters, cfg.rows, || {
            let rows = txn.scan(t, &Predicate::True).expect("scan");
            rows.len() as u64
        });
        println!("scan/hot         {}", fmt_rate(rate));
        results.push(("scan_hot", rate));
    }

    // Filtered scan: predicate keeps ~1/7 of rows; pushdown means the
    // other 6/7 are skipped without materialization.
    let (rate, _) = measure(iters, cfg.rows, || {
        let txn = db.begin();
        let rows = txn
            .scan(t, &Predicate::Eq("author".into(), Value::Id(3)))
            .expect("scan");
        rows.len() as u64
    });
    println!("scan/filtered    {} (scanned rows/s)", fmt_rate(rate));
    results.push(("scan_filtered", rate));

    // Point gets: the ops.rs character-chain hot loop — many gets against
    // the same table inside one transaction.
    {
        let gets: u64 = if cfg.quick { 5_000 } else { 200_000 };
        let txn = db.begin();
        let all = txn.scan(t, &Predicate::True).expect("scan");
        let ids: Vec<_> = all.iter().map(|(rid, _)| *rid).collect();
        let (rate, _) = measure(iters, gets, || {
            let mut hits = 0u64;
            for i in 0..gets {
                let rid = ids[(i.wrapping_mul(2654435761) % ids.len() as u64) as usize];
                if txn.get(t, rid).expect("get").is_some() {
                    hits += 1;
                }
            }
            hits
        });
        println!("get/hot          {}", fmt_rate(rate));
        results.push(("point_get_hot", rate));
    }

    // Index lookups: per-document prefix reads (dynamic-folder shape).
    {
        let per_doc = cfg.rows / cfg.docs;
        let txn = db.begin();
        let (rate, _) = measure(iters, cfg.rows, || {
            let mut n = 0u64;
            for d in 0..cfg.docs {
                n += txn
                    .index_lookup(t, "wide_by_doc", &[Value::Id(d)])
                    .expect("lookup")
                    .len() as u64;
            }
            assert_eq!(n, per_doc * cfg.docs);
            n
        });
        println!("index/lookup     {} (rows via index/s)", fmt_rate(rate));
        results.push(("index_lookup", rate));
    }

    // Concurrent: R readers full-scanning while W writers commit updates.
    // Reports aggregate reader throughput; every scan must observe a
    // consistent prefix (row count never shrinks below the seeded corpus).
    let threads_cases: &[(u64, u64)] = if cfg.quick {
        &[(2, 1)]
    } else {
        &[(4, 1), (8, 2)]
    };
    for &(readers, writers) in threads_cases {
        let stop = Arc::new(AtomicBool::new(false));
        let scanned = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for w in 0..writers {
            let db = db.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let mut txn = db.begin();
                    txn.insert(
                        t,
                        Row::new(vec![
                            Value::Id(1_000 + w),
                            Value::Int(i as i64),
                            Value::Text("y".repeat(TEXT_WIDTH)),
                            Value::Id(w),
                            Value::Timestamp(i as i64),
                        ]),
                    )
                    .expect("insert");
                    txn.commit().expect("commit");
                    i += 1;
                }
            }));
        }
        let start = Instant::now();
        let mut readers_h = Vec::new();
        let rounds: u64 = if cfg.quick { 2 } else { 10 };
        for _ in 0..readers {
            let db = db.clone();
            let scanned = scanned.clone();
            let base = cfg.rows;
            readers_h.push(std::thread::spawn(move || {
                for _ in 0..rounds {
                    let txn = db.begin();
                    let rows = txn.scan(t, &Predicate::True).expect("scan");
                    assert!(rows.len() as u64 >= base, "scan saw a torn prefix");
                    scanned.fetch_add(rows.len() as u64, Ordering::Relaxed);
                }
            }));
        }
        for h in readers_h {
            h.join().expect("reader");
        }
        let secs = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().expect("writer");
        }
        let rate = scanned.load(Ordering::Relaxed) as f64 / secs;
        println!(
            "concurrent/r{readers}w{writers}  {} (reader rows/s)",
            fmt_rate(rate)
        );
        results.push(match (readers, writers) {
            (2, 1) => ("concurrent_r2w1", rate),
            (4, 1) => ("concurrent_r4w1", rate),
            _ => ("concurrent_r8w2", rate),
        });
    }

    let stats = db.stats();
    println!(
        "stats: commits={} last_commit_ts={}",
        stats.commits, stats.last_commit_ts
    );

    if let Some(path) = cfg.json_path {
        let mut fields: Vec<String> = vec![
            format!("\"rows\":{}", cfg.rows),
            format!("\"text_width\":{TEXT_WIDTH}"),
            format!("\"quick\":{}", cfg.quick),
        ];
        for (k, v) in &results {
            fields.push(format!("\"{k}\":{v:.1}"));
        }
        let line = format!("{{{}}}\n", fields.join(","));
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open json output");
        f.write_all(line.as_bytes()).expect("write json");
        println!("appended summary to {path}");
    }
}
