//! Experiment **D5** — visual mining (Figure 2's backing computation).
//!
//! Measures the document-space pipeline (feature collection → PCA →
//! k-means → layout) against corpus size, and the text-mining term
//! extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tendax_bench::{add_paste_web, build_corpus};
use tendax_core::{top_terms, DocumentSpace};

fn bench_space_vs_corpus(c: &mut Criterion) {
    let mut group = c.benchmark_group("d5_document_space_vs_corpus");
    group.sample_size(10);
    for &n_docs in &[10usize, 50, 150] {
        let corpus = build_corpus(5, n_docs, 40, 42);
        add_paste_web(&corpus, n_docs, 8, 43);
        let tdb = corpus.tendax.textdb().clone();
        group.bench_with_input(BenchmarkId::from_parameter(n_docs), &n_docs, |b, _| {
            b.iter(|| DocumentSpace::build(&tdb, 3).expect("space"));
        });
    }
    group.finish();
}

fn bench_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("d5_render_ascii");
    group.sample_size(20);
    let corpus = build_corpus(5, 60, 40, 42);
    let space = corpus.tendax.document_space(4).expect("space");
    group.bench_function("render_64x20", |b| {
        b.iter(|| space.render_ascii(64, 20));
    });
    group.finish();
}

fn bench_text_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("d5_text_mining_top_terms");
    group.sample_size(10);
    for &n_docs in &[10usize, 50] {
        let corpus = build_corpus(4, n_docs, 50, 7);
        let tdb = corpus.tendax.textdb().clone();
        let probe = corpus.docs[0];
        group.bench_with_input(BenchmarkId::from_parameter(n_docs), &n_docs, |b, _| {
            b.iter(|| top_terms(&tdb, probe, 5).expect("terms"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_space_vs_corpus,
    bench_render,
    bench_text_mining
);
criterion_main!(benches);
