//! Experiment **D6** — metadata-based search and ranking.
//!
//! Measures index construction, content queries, metadata-filtered
//! queries, and each ranking option against corpus size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tendax_bench::{add_paste_web, build_corpus};
use tendax_core::{RankBy, SearchEngine, SearchFilter, SearchQuery};

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("d6_index_build_vs_corpus");
    group.sample_size(10);
    for &n_docs in &[10usize, 50, 200] {
        let corpus = build_corpus(5, n_docs, 40, 42);
        let tdb = corpus.tendax.textdb().clone();
        group.bench_with_input(BenchmarkId::from_parameter(n_docs), &n_docs, |b, _| {
            b.iter(|| SearchEngine::build(&tdb).expect("index"));
        });
    }
    group.finish();
}

fn bench_query_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("d6_query_modes");
    group.sample_size(15);
    let corpus = build_corpus(5, 100, 40, 42);
    add_paste_web(&corpus, 100, 8, 43);
    let engine = corpus.tendax.search().expect("engine");
    let user = corpus.users[0];

    group.bench_function("content_single_term", |b| {
        b.iter(|| {
            engine
                .search(&SearchQuery::terms("database"))
                .expect("hits")
        });
    });
    group.bench_function("content_two_terms_and", |b| {
        b.iter(|| {
            engine
                .search(&SearchQuery::terms("database transaction"))
                .expect("hits")
        });
    });
    group.bench_function("metadata_filter_author", |b| {
        b.iter(|| {
            engine
                .search(&SearchQuery::terms("database").filter(SearchFilter::Author(user)))
                .expect("hits")
        });
    });
    for (name, rank) in [
        ("rank_relevance", RankBy::Relevance),
        ("rank_newest", RankBy::Newest),
        ("rank_most_cited", RankBy::MostCited),
        ("rank_most_read", RankBy::MostRead),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                engine
                    .search(&SearchQuery::terms("document").rank_by(rank))
                    .expect("hits")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_build, bench_query_modes);
criterion_main!(benches);
