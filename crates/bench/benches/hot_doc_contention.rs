//! Experiment **A9** — hot-document commit throughput under disjoint
//! concurrent edits.
//!
//! N writers hammer ONE document at pairwise-adjacent but disjoint
//! positions: the seed text alternates filler and landmark characters
//! (`aAbBcCdD` for 8 writers), writer `2k` types immediately *before*
//! landmark `k` and writer `2k+1` immediately *after* it. Every
//! concurrent pair therefore writes the same landmark character row but
//! disjoint link fields (`prev` vs `next`) — the adjacent-neighborhood
//! shape that row-granularity first-committer-wins validation aborts
//! even though the operations commute. With commutative
//! chain-neighborhood validation these commits merge instead, so
//! retries (and their O(doc) refresh rebuilds) disappear.
//!
//! Each writer is a *pinned-base* handle (`DocHandle::pin_base`): its
//! edits are validated against the base version it last synced, the way
//! a real replica's are — an editor generates an op against the state
//! it sees, not against a server-side snapshot it has no way to hold.
//! Paired writers alternate strictly (a turn token per pair), so every
//! op commits against a base that predates the partner's last commit.
//! Commit validation, not scheduler interleaving, therefore decides
//! every op, which makes the contention deterministic on any core
//! count: under first-committer-wins each paired writer's commit
//! invalidates the other's base and forces a retry (plus the O(doc)
//! refresh a real editor pays to re-anchor); under commutative
//! validation both merge and the retry path is never taken.
//!
//! The hot region sits in the middle of a large document (the paper's
//! scenario: many collaborators inside one real-sized text), so every
//! aborted commit pays what a real editor pays: the retry itself plus
//! an O(document) refresh to recompute positions — exactly the
//! throughput burn this experiment measures.
//!
//! Reported: successful commits/s across all writers, total retries,
//! and the engine's conflict/merge counter deltas. Not a criterion
//! bench (thread orchestration, fresh database per run):
//!
//! ```text
//! cargo bench -p tendax-bench --bench hot_doc_contention
//! ```
//!
//! Pass `--test` for a quick smoke run and `--json <path>` to append one
//! JSON summary line (consumed by `scripts/bench_hotdoc.sh`).

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::Instant;

use tendax_storage::{Database, DurabilityLevel, Options};
use tendax_text::TextDb;

const WRITERS: usize = 8;

struct Config {
    ops_per_writer: u64,
    filler: usize,
    quick: bool,
    json_path: Option<String>,
}

fn parse_args() -> Config {
    let mut quick = false;
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--test" => quick = true,
            "--json" => json_path = args.next(),
            _ => {} // --bench, filters, ... accepted and ignored
        }
    }
    Config {
        ops_per_writer: if quick { 150 } else { 1_000 },
        filler: if quick { 2_000 } else { 10_000 },
        quick,
        json_path,
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tendax-bench-hotdoc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

fn main() {
    let cfg = parse_args();
    let pairs = WRITERS / 2;

    let path = tmp("hotdoc.wal");
    let opts = Options {
        durability: DurabilityLevel::None,
        ..Options::default()
    };
    let db = Database::open(&path, opts).expect("open");
    let tdb = TextDb::init(db.clone()).expect("init textdb");

    let users: Vec<_> = (0..WRITERS)
        .map(|k| tdb.create_user(&format!("w{k}")).expect("user"))
        .collect();
    let doc = tdb.create_document("hot", users[0]).expect("doc");

    // The hot region alternates filler and landmark chars: "aAbBcCdD"
    // for 4 pairs. Writer 2k edits just before landmark k, writer 2k+1
    // just after it; filler chars keep the pairs' own typed runs from
    // touching a *neighboring* pair's landmark row at bootstrap. The
    // region is embedded mid-document between large filler slabs so a
    // post-conflict refresh costs what it costs on a real document.
    let hot: String = (0..pairs)
        .flat_map(|k| {
            [
                (b'a' + k as u8) as char, // filler
                (b'A' + k as u8) as char, // landmark k
            ]
        })
        .collect();
    let seed = format!(
        "{}{}{}",
        "z".repeat(cfg.filler),
        hot,
        "z".repeat(cfg.filler)
    );
    {
        let mut h = tdb.open(doc, users[0]).expect("open seed");
        h.insert_text(0, &seed).expect("seed text");
    }

    // Each writer gets its own handle and the CharId of its landmark:
    // positions are recomputed from the landmark after every refresh, so
    // a writer never needs to know what the others typed.
    let mut handles = Vec::new();
    for (k, &user) in users.iter().enumerate() {
        let mut h = tdb.open(doc, user).expect("open writer");
        h.pin_base(true);
        let landmark_pos = cfg.filler + (k / 2) * 2 + 1;
        let landmark = h.char_at(landmark_pos).expect("landmark id");
        handles.push((h, landmark, k % 2 == 1)); // (handle, anchor, after?)
    }

    // One turn token per pair: writers 2k and 2k+1 alternate strictly,
    // so each op's base version predates the partner's newest commit.
    let turns: Vec<Arc<(Mutex<usize>, Condvar)>> = (0..pairs)
        .map(|_| Arc::new((Mutex::new(0), Condvar::new())))
        .collect();

    let before = db.stats();
    let retries = Arc::new(AtomicU64::new(0));
    let start = Arc::new(Barrier::new(WRITERS + 1));
    let threads: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(k, (mut h, landmark, after))| {
            let retries = retries.clone();
            let start = start.clone();
            let turn = turns[k / 2].clone();
            let role = k % 2;
            let ops = cfg.ops_per_writer;
            let text = char::from_digit(k as u32, 10).unwrap().to_string();
            std::thread::spawn(move || {
                start.wait();
                for _ in 0..ops {
                    let (lock, cv) = &*turn;
                    let mut t = lock.lock().unwrap();
                    while *t % 2 != role {
                        t = cv.wait(t).unwrap();
                    }
                    loop {
                        let caret = h.caret_after(landmark).expect("landmark lost");
                        let pos = if after { caret } else { caret - 1 };
                        match h.insert_text(pos, &text) {
                            Ok(_) => break,
                            Err(e) if e.is_retryable() => {
                                retries.fetch_add(1, Ordering::Relaxed);
                                h.refresh().expect("refresh");
                            }
                            Err(e) => panic!("writer {k}: insert failed: {e}"),
                        }
                    }
                    *t += 1;
                    cv.notify_one();
                }
            })
        })
        .collect();
    start.wait();
    let t0 = Instant::now();
    for t in threads {
        t.join().unwrap();
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let after = db.stats();
    let total_commits = WRITERS as u64 * cfg.ops_per_writer;
    let commits_per_s = total_commits as f64 / elapsed;
    let total_retries = retries.load(Ordering::Relaxed);
    let conflicts = after.conflicts - before.conflicts;
    let merged = after.commits_merged - before.commits_merged;
    let merge_fields = after.merge_fields_applied - before.merge_fields_applied;
    let true_overlap = after.write_conflicts_true_overlap - before.write_conflicts_true_overlap;

    // Convergence sanity: a fresh open must see every writer's chars.
    let fresh = tdb.open(doc, users[0]).expect("reopen");
    let text = fresh.text();
    assert_eq!(
        text.len(),
        seed.len() + total_commits as usize,
        "document lost or duplicated characters"
    );
    for k in 0..WRITERS {
        let c = char::from_digit(k as u32, 10).unwrap();
        let got = text.chars().filter(|&x| x == c).count() as u64;
        assert_eq!(got, cfg.ops_per_writer, "writer {k} chars missing");
    }

    println!(
        "{:>8} writers  {:>8} ops/writer  {:>12.0} commits/s  {:>8} retries",
        WRITERS, cfg.ops_per_writer, commits_per_s, total_retries
    );
    println!(
        "conflicts {conflicts}  merged {merged}  merge_fields {merge_fields}  true_overlap {true_overlap}"
    );

    if let Some(path) = cfg.json_path {
        let fields: Vec<String> = vec![
            format!("\"writers\":{WRITERS}"),
            format!("\"ops_per_writer\":{}", cfg.ops_per_writer),
            format!("\"doc_seed_len\":{}", seed.len()),
            format!("\"quick\":{}", cfg.quick),
            format!(
                "\"cores\":{}",
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            ),
            format!("\"commits_per_s\":{commits_per_s:.0}"),
            format!("\"retries\":{total_retries}"),
            format!("\"conflicts\":{conflicts}"),
            format!("\"commits_merged\":{merged}"),
            format!("\"merge_fields_applied\":{merge_fields}"),
            format!("\"conflicts_true_overlap\":{true_overlap}"),
        ];
        let line = format!("{{{}}}\n", fields.join(","));
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open json output");
        f.write_all(line.as_bytes()).expect("write json");
        println!("appended summary to {path}");
    }
}
