//! Experiment **N1** — TCP transport throughput over loopback.
//!
//! Measures the `tendax-net` stack end to end on a real socket pair:
//! handshake, length-prefixed framing, the multiplexing server, and the
//! client mirror. Three shapes:
//!
//! * **ping** — serial `Ping`/`Pong` round trips: protocol + scheduling
//!   floor, no database work;
//! * **edit** — serial 16-character inserts, each waiting for its
//!   `EditOk`: the full commit path plus the wire;
//! * **fanout** — one editor, 8 subscribers, a burst of edits: committed
//!   events broadcast through per-connection bounded queues, measured as
//!   events delivered per second across all subscribers once every
//!   mirror has converged on the final commit.
//!
//! Not a criterion bench (real sockets, background threads, convergence
//! barriers), so a plain `main`:
//!
//! ```text
//! cargo bench -p tendax-bench --bench transport_echo
//! ```
//!
//! Pass `--test` for a quick smoke run and `--json <path>` to append one
//! JSON summary line (consumed by `scripts/bench_transport.sh`).

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use tendax_collab::CollabServer;
use tendax_net::{NetClient, NetConfig, NetServer};
use tendax_text::TextDb;

const FANOUT_SUBSCRIBERS: usize = 8;

struct Config {
    pings: u64,
    edits: u64,
    fanout_edits: u64,
    quick: bool,
    json_path: Option<String>,
}

fn parse_args() -> Config {
    let mut quick = false;
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--test" => quick = true,
            "--json" => json_path = args.next(),
            _ => {} // --bench, filters, ... accepted and ignored
        }
    }
    Config {
        pings: if quick { 200 } else { 2_000 },
        edits: if quick { 50 } else { 500 },
        fanout_edits: if quick { 50 } else { 400 },
        quick,
        json_path,
    }
}

fn serve(users: &[String], doc: &str) -> (NetServer, CollabServer) {
    let tdb = TextDb::in_memory();
    let mut creator = None;
    for u in users {
        let id = tdb.create_user(u).unwrap();
        creator.get_or_insert(id);
    }
    tdb.create_document(doc, creator.expect("at least one user"))
        .unwrap();
    let collab = CollabServer::new(tdb);
    let server = NetServer::bind("127.0.0.1:0", collab.clone(), NetConfig::default()).unwrap();
    (server, collab)
}

fn main() {
    let cfg = parse_args();
    let users: Vec<String> = (0..=FANOUT_SUBSCRIBERS)
        .map(|i| format!("user{i}"))
        .collect();
    let (server, _collab) = serve(&users, "bench");
    let addr = server.local_addr();

    // --- ping: protocol round-trip floor. ----------------------------
    let c = NetClient::connect(addr, "user0").unwrap();
    let start = Instant::now();
    for _ in 0..cfg.pings {
        c.ping().unwrap();
    }
    let ping_rtt_per_s = cfg.pings as f64 / start.elapsed().as_secs_f64();
    println!(
        "ping:   {:>10.0} round-trips/s ({} pings)",
        ping_rtt_per_s, cfg.pings
    );

    // --- edit: commit path + wire. -----------------------------------
    let doc = c.subscribe("bench").unwrap();
    let start = Instant::now();
    let mut last_ts = 0;
    for _ in 0..cfg.edits {
        let (_, ts) = c.insert(doc, 0, "sixteen chars !!").unwrap();
        last_ts = ts;
    }
    let edit_rtt_per_s = cfg.edits as f64 / start.elapsed().as_secs_f64();
    assert!(c.wait_synced(doc, last_ts, Duration::from_secs(60)));
    println!(
        "edit:   {:>10.0} round-trips/s ({} edits)",
        edit_rtt_per_s, cfg.edits
    );

    // --- fanout: broadcast through the bounded queues. ---------------
    let subs: Vec<NetClient> = (1..=FANOUT_SUBSCRIBERS)
        .map(|i| {
            let s = NetClient::connect(addr, &format!("user{i}")).unwrap();
            s.subscribe("bench").unwrap();
            s
        })
        .collect();
    let baseline: Vec<u64> = subs.iter().map(|s| s.events_seen()).collect();
    let start = Instant::now();
    let mut last_ts = 0;
    for _ in 0..cfg.fanout_edits {
        let (_, ts) = c.insert(doc, 0, "sixteen chars !!").unwrap();
        last_ts = ts;
    }
    for s in &subs {
        assert!(s.wait_synced(doc, last_ts, Duration::from_secs(60)));
    }
    let elapsed = start.elapsed().as_secs_f64();
    let delivered: u64 = subs
        .iter()
        .zip(&baseline)
        .map(|(s, b)| s.events_seen() - b)
        .sum();
    let fanout_events_per_s = delivered as f64 / elapsed;
    println!(
        "fanout: {:>10.0} events/s ({} edits x {} subscribers, {} delivered)",
        fanout_events_per_s, cfg.fanout_edits, FANOUT_SUBSCRIBERS, delivered
    );
    let stats = server.stats();
    println!("server stats: {stats:?}");

    if let Some(path) = &cfg.json_path {
        let line = format!(
            concat!(
                "{{\"quick\":{},\"pings\":{},\"edits\":{},",
                "\"fanout_edits\":{},\"fanout_subscribers\":{},",
                "\"ping_rtt_per_s\":{:.0},\"edit_rtt_per_s\":{:.0},",
                "\"fanout_events_per_s\":{:.0},",
                "\"frames_dropped\":{},\"slow_disconnects\":{}}}"
            ),
            cfg.quick,
            cfg.pings,
            cfg.edits,
            cfg.fanout_edits,
            FANOUT_SUBSCRIBERS,
            ping_rtt_per_s,
            edit_rtt_per_s,
            fanout_events_per_s,
            stats.frames_dropped,
            stats.slow_disconnects,
        );
        let path = PathBuf::from(path);
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("open {}: {e}", path.display()));
        writeln!(f, "{line}").unwrap();
    }
}
