//! Experiment **D4** — data lineage (Figure 1's backing queries).
//!
//! Measures lineage-graph construction against paste-web size, transitive
//! ancestor queries, and character-level provenance chain resolution
//! against chain depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tendax_bench::{add_paste_web, build_corpus};
use tendax_core::{char_provenance, LineageGraph, Platform, Tendax};

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("d4_lineage_build_vs_pastes");
    group.sample_size(10);
    for &n_pastes in &[10usize, 50, 200] {
        let corpus = build_corpus(4, 20, 30, 42);
        add_paste_web(&corpus, n_pastes, 7, 43);
        let tdb = corpus.tendax.textdb().clone();
        group.bench_with_input(BenchmarkId::from_parameter(n_pastes), &n_pastes, |b, _| {
            b.iter(|| LineageGraph::build(&tdb).expect("graph"));
        });
    }
    group.finish();
}

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("d4_lineage_reachability");
    group.sample_size(15);
    let corpus = build_corpus(4, 30, 30, 42);
    add_paste_web(&corpus, 150, 9, 43);
    let g = corpus.tendax.lineage().expect("graph");
    let probe = corpus.docs[0];
    group.bench_function("ancestors", |b| {
        b.iter(|| g.ancestors(probe));
    });
    group.bench_function("descendants", |b| {
        b.iter(|| g.descendants(probe));
    });
    group.finish();
}

/// Build an explicit paste chain of `depth` documents, then resolve the
/// provenance of the final character.
fn chain_of(depth: usize) -> (Tendax, tendax_core::DocId, tendax_core::CharId) {
    let tx = Tendax::in_memory().expect("instance");
    let u = tx.create_user("u").expect("user");
    let s = tx.connect("u", Platform::Linux).expect("session");
    let first = tx.create_document("d0", u).expect("doc");
    let mut prev = s.open_id(first).expect("open");
    prev.type_text(0, "genesis text").expect("seed");
    let mut last_doc = first;
    for i in 1..depth {
        let doc = tx.create_document(&format!("d{i}"), u).expect("doc");
        let clip = prev.copy(0, 7).expect("copy");
        let mut cur = s.open_id(doc).expect("open");
        cur.paste(0, &clip).expect("paste");
        prev = cur;
        last_doc = doc;
    }
    let id = prev.handle().char_at(0).expect("char");
    (tx, last_doc, id)
}

fn bench_char_provenance_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("d4_char_provenance_vs_depth");
    group.sample_size(15);
    for &depth in &[2usize, 8, 32] {
        let (tx, doc, id) = chain_of(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                let hops = char_provenance(tx.textdb(), doc, id).expect("hops");
                assert_eq!(hops.len(), depth.min(64));
                hops
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_graph_build,
    bench_reachability,
    bench_char_provenance_depth
);
criterion_main!(benches);
