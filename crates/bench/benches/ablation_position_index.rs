//! Ablation **A1** — the order-statistics position index.
//!
//! The chain cache maps visible positions to character ids in O(log n).
//! The ablation compares it against the naive alternative (a linear walk
//! over the chain, which is what a system without the cache would do on
//! every keystroke) across document sizes. The expected shape: the treap
//! stays flat while the linear walk grows linearly, with the crossover
//! far below interactive document sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tendax_text::chain::Chain;
use tendax_text::CharId;

fn chain_of(n: usize) -> Chain {
    Chain::build((1..=n as u64).map(|i| (CharId(i), i % 7 != 0))).expect("unique ids")
}

fn bench_position_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_position_to_id");
    group.sample_size(30);
    for &n in &[1_000usize, 10_000, 100_000] {
        let chain = chain_of(n);
        let probe = chain.visible_len() / 2;
        group.bench_with_input(BenchmarkId::new("treap", n), &n, |b, _| {
            b.iter(|| chain.id_at_visible(probe).expect("hit"));
        });
        // The ablated variant: linear scan over the chain order.
        let order: Vec<(CharId, bool)> = chain
            .iter_total()
            .into_iter()
            .map(|id| (id, chain.is_visible(id).expect("known")))
            .collect();
        group.bench_with_input(BenchmarkId::new("linear_scan", n), &n, |b, _| {
            b.iter(|| {
                let mut seen = 0usize;
                for (id, vis) in &order {
                    if *vis {
                        if seen == probe {
                            return *id;
                        }
                        seen += 1;
                    }
                }
                unreachable!("probe within bounds")
            });
        });
    }
    group.finish();
}

fn bench_rank_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_id_to_position");
    group.sample_size(30);
    for &n in &[1_000usize, 10_000, 100_000] {
        let chain = chain_of(n);
        let probe = CharId((n / 2) as u64 | 1);
        group.bench_with_input(BenchmarkId::new("treap", n), &n, |b, _| {
            b.iter(|| chain.visible_rank(probe));
        });
    }
    group.finish();
}

fn bench_insert_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_insert_maintenance");
    group.sample_size(20);
    for &n in &[1_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("treap_insert", n), &n, |b, &n| {
            let mut chain = chain_of(n);
            let mut next = n as u64 + 1;
            let anchor = chain
                .id_at_visible(chain.visible_len() / 2)
                .expect("anchor");
            b.iter(|| {
                chain
                    .insert_after(Some(anchor), CharId(next), true)
                    .expect("fresh id");
                next += 1;
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_position_lookup,
    bench_rank_lookup,
    bench_insert_maintenance
);
criterion_main!(benches);
