//! Group-commit throughput: concurrent committers at `Fsync`, group
//! commit versus flush-per-commit.
//!
//! Not a criterion bench: each measurement needs its own database, its
//! own thread pool, and wall-clock long enough to amortize thread
//! startup, so this is a plain `main` that prints a table. Run with:
//!
//! ```text
//! cargo bench -p tendax-bench --bench commit_throughput
//! ```
//!
//! Pass `--test` (as criterion benches accept) for a quick smoke run.

use std::path::PathBuf;
use std::time::Instant;

use tendax_storage::{DataType, Database, DurabilityLevel, Options, Row, TableDef, Value};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tendax-commit-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

struct Outcome {
    ops_per_sec: f64,
    mean_batch: f64,
    fsyncs_saved: u64,
}

/// `threads` committers, each committing `ops` single-row inserts with
/// disjoint write-sets; returns aggregate throughput and batch shape.
fn run(name: &str, group_commit: bool, threads: u64, ops: i64) -> Outcome {
    let path = tmp(name);
    let db = Database::open(
        &path,
        Options {
            durability: DurabilityLevel::Fsync,
            group_commit,
            ..Options::default()
        },
    )
    .expect("open");
    let t = db
        .create_table(
            TableDef::new("t")
                .column("writer", DataType::Id)
                .column("seq", DataType::Int),
        )
        .expect("table");

    let start = Instant::now();
    let mut handles = Vec::new();
    for w in 0..threads {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..ops {
                let mut txn = db.begin();
                txn.insert(t, Row::new(vec![Value::Id(w), Value::Int(i)]))
                    .expect("insert");
                txn.commit().expect("commit");
            }
        }));
    }
    for h in handles {
        h.join().expect("writer");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = db.stats();
    let commits = (threads * ops as u64) as f64;
    Outcome {
        ops_per_sec: commits / elapsed,
        mean_batch: if stats.wal_batches_flushed == 0 {
            0.0
        } else {
            stats.wal_records_flushed as f64 / stats.wal_batches_flushed as f64
        },
        fsyncs_saved: stats.wal_fsyncs_saved,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let ops: i64 = if quick { 5 } else { 200 };

    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>10}",
        "config", "commits/s", "mean batch", "fsyncs saved", "speedup"
    );
    for &threads in &[1u64, 4, 8] {
        let base = run(&format!("base-{threads}.wal"), false, threads, ops);
        let group = run(&format!("group-{threads}.wal"), true, threads, ops);
        println!(
            "{:<28} {:>12.0} {:>12.2} {:>12} {:>10}",
            format!("fsync/commit    x{threads}"),
            base.ops_per_sec,
            base.mean_batch,
            base.fsyncs_saved,
            "1.00x"
        );
        println!(
            "{:<28} {:>12.0} {:>12.2} {:>12} {:>9.2}x",
            format!("group commit    x{threads}"),
            group.ops_per_sec,
            group.mean_batch,
            group.fsyncs_saved,
            group.ops_per_sec / base.ops_per_sec
        );
    }
}
