//! Experiment **D1** — collaborative editing ("we will concurrently work
//! with multiple users on the same document").
//!
//! Measures multi-user editing throughput on a single shared document as
//! the number of concurrent editors grows, plus the cost of synchronizing
//! a remote editor via the effect bus versus a full document reload. The
//! shape to reproduce: disjoint-position edits scale with editors (rare
//! conflicts), and effect-based sync is far cheaper than reopening.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tendax_bench::shared_document;

fn bench_concurrent_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("d1_concurrent_editors_throughput");
    group.sample_size(10);
    const OPS_PER_EDITOR: usize = 25;
    for &n_editors in &[1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((n_editors * OPS_PER_EDITOR) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(n_editors),
            &n_editors,
            |b, &n| {
                b.iter(|| {
                    let (tendax, sessions, _doc) = shared_document(n);
                    let mut handles = Vec::new();
                    for (i, session) in sessions.into_iter().enumerate() {
                        handles.push(std::thread::spawn(move || {
                            let mut doc = session.open("shared").expect("open");
                            for k in 0..OPS_PER_EDITOR {
                                doc.sync();
                                let pos = (i * 37 + k * 11) % (doc.len() + 1);
                                doc.type_text(pos, "w").expect("typed");
                            }
                        }));
                    }
                    for h in handles {
                        h.join().expect("editor thread");
                    }
                    tendax.stats().commits
                });
            },
        );
    }
    group.finish();
}

fn bench_sync_vs_reload(c: &mut Criterion) {
    let mut group = c.benchmark_group("d1_remote_sync_cost");
    group.sample_size(10);
    // One editor types; measure how a second editor catches up.
    let (tendax, sessions, doc_id) = shared_document(2);
    let mut writer = sessions[0].open("shared").expect("open writer");
    writer
        .type_text(0, &"seed text ".repeat(200))
        .expect("seed");

    group.bench_function("effect_bus_sync_100_events", |b| {
        b.iter(|| {
            let mut reader = sessions[1].open("shared").expect("open reader");
            for i in 0..100 {
                writer.type_text(i % writer.len(), "x").expect("w");
            }
            let applied = reader.sync();
            assert!(applied >= 100);
        });
    });

    group.bench_function("full_reload_after_100_events", |b| {
        let u = tendax.textdb().user_by_name("user1").expect("u");
        b.iter(|| {
            for i in 0..100 {
                writer.type_text(i % writer.len(), "x").expect("w");
            }
            tendax.textdb().open(doc_id, u).expect("reopen")
        });
    });
    group.finish();
}

fn bench_same_position_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("d1_same_position_contention");
    group.sample_size(10);
    // Everyone hammers position 0: worst-case conflict rate, exercising
    // the retry path.
    for &n_editors in &[2usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(n_editors),
            &n_editors,
            |b, &n| {
                b.iter(|| {
                    let (tendax, sessions, _doc) = shared_document(n);
                    let mut handles = Vec::new();
                    for session in sessions {
                        handles.push(std::thread::spawn(move || {
                            let mut doc = session.open("shared").expect("open");
                            for _ in 0..10 {
                                doc.type_text(0, "c").expect("typed under contention");
                            }
                        }));
                    }
                    for h in handles {
                        h.join().expect("editor thread");
                    }
                    tendax.stats().conflicts
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_concurrent_throughput,
    bench_sync_vs_reload,
    bench_same_position_contention
);
criterion_main!(benches);
