//! Experiment **P2** — local and global undo/redo.
//!
//! Measures undo latency against the size of the undone operation and
//! against oplog depth (undo must locate the newest not-undone entry),
//! for both local (per-user) and global scope.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tendax_core::{Platform, Tendax};

fn doc_with_history(
    ops: usize,
    op_size: usize,
) -> (Tendax, tendax_core::EditorSession, tendax_core::EditorDoc) {
    let tx = Tendax::in_memory().expect("instance");
    tx.create_user("u").expect("user");
    let u = tx.textdb().user_by_name("u").expect("u");
    tx.create_document("d", u).expect("doc");
    let s = tx.connect("u", Platform::Linux).expect("session");
    let mut d = s.open("d").expect("open");
    let text = "y".repeat(op_size);
    for i in 0..ops {
        d.type_text((i * 3) % (d.len() + 1), &text).expect("op");
    }
    (tx, s, d)
}

fn bench_undo_vs_op_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_undo_vs_op_size");
    group.sample_size(15);
    for &op_size in &[1usize, 10, 100] {
        let (_tx, _s, mut doc) = doc_with_history(200, op_size);
        group.bench_with_input(BenchmarkId::from_parameter(op_size), &op_size, |b, _| {
            b.iter(|| {
                doc.undo().expect("undo");
                doc.redo().expect("redo");
            });
        });
    }
    group.finish();
}

fn bench_undo_vs_oplog_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_undo_vs_oplog_depth");
    group.sample_size(15);
    for &ops in &[10usize, 100, 1000] {
        let (_tx, _s, mut doc) = doc_with_history(ops, 2);
        group.bench_with_input(BenchmarkId::from_parameter(ops), &ops, |b, _| {
            b.iter(|| {
                doc.undo().expect("undo");
                doc.redo().expect("redo");
            });
        });
    }
    group.finish();
}

fn bench_local_vs_global(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_local_vs_global_undo");
    group.sample_size(15);
    let (_tx, _s, mut doc) = doc_with_history(200, 5);
    group.bench_function("local_undo_redo", |b| {
        b.iter(|| {
            doc.undo().expect("undo");
            doc.redo().expect("redo");
        });
    });
    group.bench_function("global_undo_redo", |b| {
        b.iter(|| {
            doc.global_undo().expect("undo");
            doc.global_redo().expect("redo");
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_undo_vs_op_size,
    bench_undo_vs_oplog_depth,
    bench_local_vs_global
);
criterion_main!(benches);
