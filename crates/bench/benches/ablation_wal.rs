//! Ablation **A2** — write-ahead-log durability levels.
//!
//! Measures editing-transaction commit latency under the three
//! durability policies: no WAL (in-memory), buffered writes, and fsync
//! per commit. The expected shape: None ≈ Buffered ≪ Fsync, quantifying
//! what the paper's "everything … is stored persistently" costs at
//! keystroke granularity.

use std::path::PathBuf;

use criterion::{criterion_group, criterion_main, Criterion};
use tendax_core::{DurabilityLevel, Options, Platform, Tendax};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tendax-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

fn editor(tx: &Tendax) -> (tendax_core::EditorSession, tendax_core::EditorDoc) {
    tx.create_user("u").expect("user");
    let u = tx.textdb().user_by_name("u").expect("u");
    tx.create_document("d", u).expect("doc");
    let s = tx.connect("u", Platform::Linux).expect("session");
    let mut d = s.open("d").expect("open");
    d.type_text(0, &"seed ".repeat(100)).expect("seed");
    (s, d)
}

fn bench_commit_by_durability(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_commit_latency_by_durability");
    group.sample_size(20);

    // In-memory (DurabilityLevel::None).
    {
        let tx = Tendax::in_memory().expect("instance");
        let (_s, mut doc) = editor(&tx);
        group.bench_function("none_in_memory", |b| {
            b.iter(|| doc.type_text(doc.len() / 2, "x").expect("typed"));
        });
    }

    // Buffered WAL.
    {
        let tx = Tendax::open(
            tmp("buffered.wal"),
            Options {
                durability: DurabilityLevel::Buffered,
                ..Options::default()
            },
        )
        .expect("instance");
        let (_s, mut doc) = editor(&tx);
        group.bench_function("buffered_wal", |b| {
            b.iter(|| doc.type_text(doc.len() / 2, "x").expect("typed"));
        });
    }

    // Fsync-per-commit WAL.
    {
        let tx = Tendax::open(
            tmp("fsync.wal"),
            Options {
                durability: DurabilityLevel::Fsync,
                ..Options::default()
            },
        )
        .expect("instance");
        let (_s, mut doc) = editor(&tx);
        group.sample_size(10);
        group.bench_function("fsync_wal", |b| {
            b.iter(|| doc.type_text(doc.len() / 2, "x").expect("typed"));
        });
    }
    group.finish();
}

fn bench_recovery_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_recovery_vs_log_size");
    group.sample_size(10);
    for &ops in &[100usize, 1000] {
        let path = tmp(&format!("recover-{ops}.wal"));
        {
            let tx = Tendax::open(&path, Options::default()).expect("instance");
            let (_s, mut doc) = editor(&tx);
            for i in 0..ops {
                doc.type_text(i % doc.len(), "r").expect("typed");
            }
        }
        group.bench_function(format!("replay_{ops}_ops"), |b| {
            b.iter(|| Tendax::open(&path, Options::default()).expect("reopened"));
        });
    }
    group.finish();
}

fn bench_checkpoint_effect(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_checkpoint_compaction");
    group.sample_size(10);
    let path = tmp("ckpt.wal");
    {
        let tx = Tendax::open(&path, Options::default()).expect("instance");
        let (_s, mut doc) = editor(&tx);
        for i in 0..1000 {
            doc.type_text(i % doc.len(), "c").expect("typed");
        }
        tx.textdb().database().checkpoint().expect("checkpoint");
    }
    group.bench_function("replay_after_checkpoint_1000_ops", |b| {
        b.iter(|| Tendax::open(&path, Options::default()).expect("reopened"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_commit_by_durability,
    bench_recovery_time,
    bench_checkpoint_effect
);
criterion_main!(benches);
